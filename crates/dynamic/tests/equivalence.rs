//! The dynamic subsystem's headline guarantees, property-tested:
//!
//! 1. After any random interleaving of inserts, removes and reweights —
//!    applied in arbitrary batch sizes — the repaired index is bit-identical
//!    to a from-scratch [`SimilarityIndex::build`] on the final graph, and
//!    any `(ε, μ)` query answers bit-identically (labels *and* roles, in
//!    original vertex ids) to a query on that fresh index.
//! 2. The dynamic query is SCAN-equivalent (Lemma 4) to full anySCAN driver
//!    runs on the final graph across exact-preserving kernel configurations
//!    (sketch mode off/assist × hub bitmaps on/off).
//! 3. Crash-mid-batch recovery: a fault-injected panic during a log save
//!    loses nothing — load + replay + re-feeding the tail of the source
//!    trace converges to the same bits as an uninterrupted run.

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate, UpdateLog};
use anyscan_graph::{CsrGraph, GraphBuilder, VertexId};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{ScanParams, SketchMode};
use anyscan_telemetry::Telemetry;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..32)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..90))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Raw op material: endpoint seeds, op selector and weight. Endpoints are
/// reduced mod |V| (bumping collisions) so every update is structurally
/// valid; sequence numbers are assigned 1..
fn arb_ops() -> impl Strategy<Value = Vec<(u32, u32, u8, f64)>> {
    proptest::collection::vec((0u32..64, 0u32..64, 0u8..3, 0.1f64..2.0), 1..50)
}

fn materialize(n: usize, raw: &[(u32, u32, u8, f64)]) -> Vec<EdgeUpdate> {
    raw.iter()
        .enumerate()
        .map(|(i, &(a, b, kind, w))| {
            let u = a % n as u32;
            let mut v = b % n as u32;
            if v == u {
                v = (u + 1) % n as u32;
            }
            let op = match kind {
                0 => EdgeOp::Insert(w),
                1 => EdgeOp::Remove,
                _ => EdgeOp::Reweight(w),
            };
            EdgeUpdate {
                seq: (i + 1) as u64,
                u,
                v,
                op,
            }
        })
        .collect()
}

/// Applies `updates` in chunks of `batch` and returns the engine.
fn run_dynamic(g: &CsrGraph, updates: &[EdgeUpdate], batch: usize, threads: usize) -> DynamicIndex {
    let mut d = DynamicIndex::new(g, threads).expect("fresh engine");
    for chunk in updates.chunks(batch.max(1)) {
        d.apply_batch(chunk, &Telemetry::disabled())
            .expect("valid batch");
    }
    d
}

fn assert_index_bits_eq(a: &SimilarityIndex, b: &SimilarityIndex) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.mu_max(), b.mu_max());
    for v in 0..a.num_vertices() as VertexId {
        let (ia, sa) = a.neighbor_order(v);
        let (ib, sb) = b.neighbor_order(v);
        assert_eq!(ia, ib, "neighbor order of {v}");
        let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(sa), bits(sb), "σ bits of {v}");
    }
    for mu in 1..=a.mu_max().max(b.mu_max()) {
        let (va, ta) = a.core_order(mu);
        let (vb, tb) = b.core_order(mu);
        assert_eq!(va, vb, "core order at mu={mu}");
        let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ta), bits(tb), "thresholds at mu={mu}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole acceptance: after every batch the index equals a fresh
    /// build, and any (ε, μ) query is bit-identical to the fresh index's.
    #[test]
    fn interleaved_updates_equal_fresh_build(
        g in arb_graph(),
        raw in arb_ops(),
        batch in 1usize..9,
        threads in 1usize..4,
        eps in 0.1f64..0.95,
        mu in 1usize..7,
    ) {
        let updates = materialize(g.num_vertices(), &raw);
        let d = run_dynamic(&g, &updates, batch, threads);
        let final_csr = d.to_csr().expect("snapshot");
        let fresh = SimilarityIndex::build(&final_csr, threads);
        assert_index_bits_eq(d.index(), &fresh);

        let params = ScanParams::new(eps, mu);
        let ours = d.query(params);
        let theirs = fresh.query(&final_csr, params);
        prop_assert_eq!(&ours.labels, &theirs.labels);
        prop_assert_eq!(&ours.roles, &theirs.roles);
    }

    /// Batch-size invariance: one update at a time, mid-size batches and a
    /// single mega-batch all land on identical bits.
    #[test]
    fn batch_split_is_irrelevant(
        g in arb_graph(),
        raw in arb_ops(),
        threads in 1usize..3,
    ) {
        let updates = materialize(g.num_vertices(), &raw);
        let one = run_dynamic(&g, &updates, 1, threads);
        let some = run_dynamic(&g, &updates, 5, threads);
        let all = run_dynamic(&g, &updates, updates.len(), threads);
        assert_index_bits_eq(one.index(), some.index());
        assert_index_bits_eq(one.index(), all.index());
    }

    /// Satellite: dynamic queries are SCAN-equivalent to full driver runs
    /// on the final graph across exact-preserving configurations.
    #[test]
    fn dynamic_query_matches_driver_across_modes(
        g in arb_graph(),
        raw in arb_ops(),
        eps in 0.15f64..0.9,
        mu in 1usize..6,
    ) {
        let updates = materialize(g.num_vertices(), &raw);
        let d = run_dynamic(&g, &updates, 7, 2);
        let final_csr = d.to_csr().expect("snapshot");
        let params = ScanParams::new(eps, mu);
        let ours = d.query(params);

        for (sketch, hubs) in [
            (SketchMode::Off, false),
            (SketchMode::Off, true),
            (SketchMode::Assist, true),
        ] {
            let config = AnyScanConfig::new(params)
                .with_auto_block_size(final_csr.num_vertices())
                .with_sketch(sketch)
                .with_hub_bitmaps(hubs);
            let driver = AnyScan::new(&final_csr, config).run();
            if let Err(e) = check_scan_equivalent(&final_csr, params, &driver, &ours) {
                prop_assert!(
                    false,
                    "divergence from driver (sketch={sketch:?}, hubs={hubs}, \
                     eps={eps}, mu={mu}): {e}"
                );
            }
        }
    }
}

/// Crash mid-batch: the log save for batch 2 panics (injected), the writer
/// dies, and recovery — load, replay, re-feed the tail of the source trace —
/// converges to the bits of an uninterrupted run.
#[test]
fn crash_mid_batch_resume_converges() {
    let dir = std::env::temp_dir().join(format!("asul-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.asul");

    let mut b = GraphBuilder::new(12);
    for (u, v, w) in [
        (0, 1, 0.9),
        (1, 2, 0.8),
        (2, 3, 0.7),
        (3, 4, 0.9),
        (5, 6, 0.6),
    ] {
        b.add_edge(u, v, w);
    }
    let base = b.build();
    let trace = materialize(
        12,
        &[
            (0, 7, 0, 0.5),
            (1, 2, 2, 1.5),
            (2, 3, 1, 0.0),
            (4, 8, 0, 0.9),
            (5, 6, 1, 0.0),
            (7, 9, 0, 0.4),
            (0, 1, 2, 0.3),
            (8, 9, 0, 0.8),
            (10, 11, 0, 0.7),
        ],
    );

    // Uninterrupted reference run.
    let clean = run_dynamic(&base, &trace, 3, 2);

    // Writer loop: apply a batch, append to the log, save. The second save
    // panics (crash between durability points): each save hits the
    // `dynamic::log_write` site twice (inject_io + inject_write), so hit 3
    // is save #2's entry point.
    anyscan_faults::configure("dynamic::log_write", anyscan_faults::FaultAction::Panic, 3);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut engine = DynamicIndex::new(&base, 2).unwrap();
        let mut log = UpdateLog::new(&base);
        for chunk in trace.chunks(3) {
            engine.apply_batch(chunk, &Telemetry::disabled()).unwrap();
            log.append_batch(chunk).unwrap();
            log.save(&path).unwrap();
        }
    }));
    anyscan_faults::clear();
    assert!(crashed.is_err(), "the injected panic must fire");

    // Recovery: the durable log holds exactly batch 1; replay it, then feed
    // the tail of the source trace past the recovered watermark.
    let recovered = UpdateLog::load(&path).unwrap();
    assert_eq!(
        recovered.applied_seq(),
        3,
        "only the first batch was durable"
    );
    let mut engine = recovered
        .replay(&base, 2, 3, &Telemetry::disabled())
        .unwrap();
    let mut log = recovered.clone();
    let tail: Vec<EdgeUpdate> = trace
        .iter()
        .filter(|u| u.seq > recovered.applied_seq())
        .copied()
        .collect();
    for chunk in tail.chunks(3) {
        engine.apply_batch(chunk, &Telemetry::disabled()).unwrap();
        log.append_batch(chunk).unwrap();
        log.save(&path).unwrap();
    }

    assert_index_bits_eq(engine.index(), clean.index());
    assert_eq!(engine.applied_seq(), clean.applied_seq());
    assert_eq!(
        UpdateLog::load(&path).unwrap().applied_seq(),
        trace.last().unwrap().seq
    );

    let _ = std::fs::remove_dir_all(&dir);
}
