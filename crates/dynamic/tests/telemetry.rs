//! Satellite: the dynamic counters (`dyn_updates_applied`,
//! `dyn_sigma_reevals`, `dyn_index_repairs`) land in the trace and stay in
//! partition with the existing σ accounting — every σ the subsystem
//! evaluates is a merge-join kernel call, so
//! `Σ sigma_path_* == sigma_evals + index_sigma_evals` must keep holding
//! with the dynamic path in the mix.

use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate};
use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_scan_common::ScanParams;
use anyscan_telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dynamic_counters_partition_sigma_accounting() {
    let mut rng = StdRng::seed_from_u64(4242);
    let g = erdos_renyi(&mut rng, 90, 500, WeightModel::uniform_default());

    let telemetry = Telemetry::enabled();
    let mut d = DynamicIndex::new_traced(&g, 2, &telemetry).unwrap();
    let batch = vec![
        EdgeUpdate {
            seq: 1,
            u: 0,
            v: 50,
            op: EdgeOp::Insert(0.8),
        },
        EdgeUpdate {
            seq: 2,
            u: 1,
            v: 2,
            op: EdgeOp::Remove,
        },
        EdgeUpdate {
            seq: 3,
            u: 10,
            v: 11,
            op: EdgeOp::Insert(1.4),
        },
        EdgeUpdate {
            seq: 4,
            u: 0,
            v: 50,
            op: EdgeOp::Reweight(0.9),
        },
    ];
    let stats = d.apply_batch(&batch, &telemetry).unwrap();
    let _ = d.query_traced(ScanParams::new(0.5, 3), &telemetry);

    let report = telemetry
        .report()
        .expect("enabled telemetry yields a report");
    let c = |x: Counter| report.counter(x);

    // The new counters reflect exactly what the batch did.
    assert_eq!(c(Counter::DynUpdatesApplied), stats.applied);
    assert_eq!(c(Counter::DynSigmaReevals), stats.sigma_reevals);
    assert_eq!(c(Counter::DynIndexRepairs), stats.orders_repaired);
    assert!(
        stats.sigma_reevals > 0,
        "effective batch must re-evaluate σ"
    );
    assert!(
        stats.orders_repaired > 0,
        "effective batch must repair orders"
    );

    // Partition: kernel-path counters still account for every σ — the
    // index build's edges plus every dynamic re-evaluation (counted in both
    // sigma_evals and sigma_path_merge), with nothing double- or
    // un-attributed.
    let paths = c(Counter::SigmaPathMerge)
        + c(Counter::SigmaPathProbe)
        + c(Counter::SigmaPathBitmap)
        + c(Counter::SigmaPathBatched)
        + c(Counter::SigmaPathSketch);
    assert_eq!(paths, c(Counter::SigmaEvals) + c(Counter::IndexSigmaEvals));
    assert_eq!(c(Counter::SigmaEvals), c(Counter::DynSigmaReevals));
    assert_eq!(c(Counter::SigmaPathMerge), c(Counter::DynSigmaReevals));

    // The repair span was recorded alongside the batch span.
    for span in [
        "dyn_apply_batch",
        "dyn_sigma_reevals",
        "dyn_build_patches",
        "index_repair",
    ] {
        assert!(report.span_total(span).is_some(), "span {span} missing");
    }
}
