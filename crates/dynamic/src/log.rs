//! The ASUL mutation log: a checkpointable record of every applied update.
//!
//! An [`UpdateLog`] binds a fingerprint of the *base* graph to the full
//! sequence of mutations applied since, plus a watermark (`applied_seq`)
//! recording how far the owner had durably applied them. The owner appends
//! each accepted batch and saves — atomically, via the same
//! temp-file/fsync/rename discipline the checkpoint subsystem uses — so the
//! on-disk file is always internally consistent: a crash mid-save leaves the
//! previous good log in place. Recovery is [`UpdateLog::load`] followed by
//! [`UpdateLog::replay`], which rebuilds a [`DynamicIndex`] on the base
//! graph and re-applies the logged prefix; the driver then feeds whatever
//! tail of its source trace lies beyond the recovered watermark
//! ([`UpdateLog::entries_after`] is the mirror-side helper).
//!
//! Fault sites: `dynamic::log_write` covers serialization + the atomic
//! rename (io-error, short-write and panic actions), `dynamic::log_read`
//! covers the load path. Both are exercised in CI's `dynamic-smoke` job.
//!
//! ## ASUL v2 layout (all integers little-endian)
//!
//! | section   | contents                                                  |
//! |-----------|-----------------------------------------------------------|
//! | header    | magic `ASUL`, version u32                                 |
//! | base      | n u64, arcs u64, edges u64, FNV-1a hash u64               |
//! | watermark | `applied_seq` u64                                         |
//! | term      | replication term u64 (v2+; v1 logs load as term 0)        |
//! | entries   | count u64, then per entry: seq u64, u u32, v u32, op u8, w f64 |
//! | trailer   | FNV-1a checksum of everything above (u64)                 |

use std::path::Path;

use anyscan_graph::io::framing::{self, Buf, BufMut, Bytes, BytesMut, Fnv64};
use anyscan_graph::CsrGraph;
use anyscan_telemetry::Telemetry;

use crate::engine::DynamicIndex;
use crate::graph::DynGraph;
use crate::update::{DynError, EdgeOp, EdgeUpdate};

/// File magic of the update-log format.
pub const LOG_MAGIC: &[u8; 4] = b"ASUL";
/// Current format version. v2 added the replication term; v1 logs still
/// load (with term 0).
pub const LOG_VERSION: u32 = 2;

/// Identity of the graph a log's mutations start from — same FNV-1a
/// construction as the checkpoint subsystem's graph fingerprint, so a log
/// can never silently replay onto the wrong base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStamp {
    /// Number of vertices.
    pub n: u64,
    /// Number of stored arcs (including self-loops).
    pub arcs: u64,
    /// Number of undirected edges.
    pub edges: u64,
    /// FNV-1a over every vertex id, neighbor id and weight bit pattern.
    pub hash: u64,
}

impl GraphStamp {
    /// Stamp of a CSR graph.
    pub fn of(g: &CsrGraph) -> GraphStamp {
        let mut h = Fnv64::new();
        for v in g.vertices() {
            h.update_u32(v);
            for (q, w) in g.neighbors(v) {
                h.update_u32(q);
                h.update_u64(w.to_bits());
            }
        }
        GraphStamp {
            n: g.num_vertices() as u64,
            arcs: g.num_arcs() as u64,
            edges: g.num_edges(),
            hash: h.finish(),
        }
    }

    /// Stamp of the dynamic mirror — identical to [`GraphStamp::of`] on the
    /// CSR snapshot of the same graph (rows and iteration order coincide).
    pub fn of_dyn(g: &DynGraph) -> GraphStamp {
        let mut h = Fnv64::new();
        for v in 0..g.num_vertices() {
            h.update_u32(v as u32);
            for &(q, w) in g.row(v as u32) {
                h.update_u32(q);
                h.update_u64(w.to_bits());
            }
        }
        GraphStamp {
            n: g.num_vertices() as u64,
            arcs: g.num_arcs() as u64,
            edges: g.num_edges(),
            hash: h.finish(),
        }
    }
}

/// A base-graph fingerprint, a watermark and the ordered mutations between
/// them. See the module docs for the recovery contract.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateLog {
    base: GraphStamp,
    applied_seq: u64,
    term: u64,
    entries: Vec<EdgeUpdate>,
}

impl UpdateLog {
    /// Empty log anchored to `base`.
    pub fn new(base: &CsrGraph) -> UpdateLog {
        UpdateLog {
            base: GraphStamp::of(base),
            applied_seq: 0,
            term: 0,
            entries: Vec::new(),
        }
    }

    /// Empty log anchored to `base` with its watermark pre-set to
    /// `applied_seq` — for an owner that starts mid-stream, e.g. a primary
    /// keeping an in-memory shipping log anchored at the watermark its
    /// engine was recovered to. Such a log can only back-fill entries
    /// appended after the anchor.
    pub fn new_at(base: &CsrGraph, applied_seq: u64) -> UpdateLog {
        UpdateLog {
            base: GraphStamp::of(base),
            applied_seq,
            term: 0,
            entries: Vec::new(),
        }
    }

    /// Fingerprint of the graph the log starts from.
    pub fn base(&self) -> GraphStamp {
        self.base
    }

    /// Watermark: sequence number of the last durably applied update.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Replication term the owner last committed under (0 for a log that
    /// never served in a replicated deployment, and for loaded v1 logs).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Records a term change (promotion, or a replica adopting its
    /// primary's term). Terms are monotonic: lowering is a no-op.
    pub fn set_term(&mut self, term: u64) {
        self.term = self.term.max(term);
    }

    /// Every logged update, in sequence order.
    pub fn entries(&self) -> &[EdgeUpdate] {
        &self.entries
    }

    /// First free sequence number for a producer assigning its own.
    pub fn next_seq(&self) -> u64 {
        self.applied_seq + 1
    }

    /// The suffix of entries with `seq > after` — what a driver still has to
    /// feed when resuming a source trace against a recovered log.
    pub fn entries_after(&self, after: u64) -> &[EdgeUpdate] {
        let start = self.entries.partition_point(|e| e.seq <= after);
        &self.entries[start..]
    }

    /// Records one applied batch and advances the watermark. The batch must
    /// be strictly ascending and start above the current watermark (the
    /// engine enforces the same rule, so an accepted batch always appends
    /// cleanly).
    pub fn append_batch(&mut self, updates: &[EdgeUpdate]) -> Result<(), DynError> {
        let mut floor = self.applied_seq;
        for up in updates {
            if up.seq <= floor {
                return Err(DynError::Sequence { seq: up.seq, floor });
            }
            floor = up.seq;
        }
        self.entries.extend_from_slice(updates);
        self.applied_seq = floor;
        Ok(())
    }

    /// Serializes to the ASUL v2 byte layout (with checksum trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + self.entries.len() * 25);
        framing::put_header(&mut buf, LOG_MAGIC, LOG_VERSION);
        buf.put_u64_le(self.base.n);
        buf.put_u64_le(self.base.arcs);
        buf.put_u64_le(self.base.edges);
        buf.put_u64_le(self.base.hash);
        buf.put_u64_le(self.applied_seq);
        buf.put_u64_le(self.term);
        buf.put_u64_le(self.entries.len() as u64);
        for e in &self.entries {
            buf.put_u64_le(e.seq);
            buf.put_u32_le(e.u);
            buf.put_u32_le(e.v);
            buf.put_u8(e.op.code());
            buf.put_f64_le(e.op.weight());
        }
        framing::put_checksum_trailer(&mut buf);
        buf.to_vec()
    }

    /// Inverse of [`UpdateLog::to_bytes`], with structural validation:
    /// checksum, strictly ascending sequence numbers, watermark equal to the
    /// last entry (0 for an empty log), decodable ops.
    pub fn from_bytes(raw: Vec<u8>) -> Result<UpdateLog, DynError> {
        let corrupt = |e: anyscan_graph::GraphError| DynError::Corrupt(e.to_string());
        let mut buf: Bytes = framing::strip_checksum_trailer(raw).map_err(corrupt)?;
        let version =
            framing::get_header_versioned(&mut buf, LOG_MAGIC, 1..=LOG_VERSION).map_err(corrupt)?;
        framing::need(&buf, 48).map_err(corrupt)?;
        let base = GraphStamp {
            n: buf.get_u64_le(),
            arcs: buf.get_u64_le(),
            edges: buf.get_u64_le(),
            hash: buf.get_u64_le(),
        };
        let applied_seq = buf.get_u64_le();
        let term = if version >= 2 {
            framing::need(&buf, 16).map_err(corrupt)?;
            buf.get_u64_le()
        } else {
            0
        };
        let count = buf.get_u64_le();
        let Ok(count) = usize::try_from(count) else {
            return Err(DynError::Corrupt(format!("entry count {count} overflows")));
        };
        let Some(bytes) = count.checked_mul(25) else {
            return Err(DynError::Corrupt(format!("entry count {count} overflows")));
        };
        framing::need(&buf, bytes).map_err(corrupt)?;
        let mut entries = Vec::with_capacity(count);
        let mut floor = 0u64;
        for i in 0..count {
            let seq = buf.get_u64_le();
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            let code = buf.get_u8();
            let w = buf.get_f64_le();
            if seq <= floor {
                return Err(DynError::Corrupt(format!(
                    "entry {i}: sequence {seq} not above predecessor {floor}"
                )));
            }
            floor = seq;
            let Some(op) = EdgeOp::from_wire(code, w) else {
                return Err(DynError::Corrupt(format!(
                    "entry {i}: unknown op code {code}"
                )));
            };
            entries.push(EdgeUpdate { seq, u, v, op });
        }
        if buf.remaining() > 0 {
            return Err(DynError::Corrupt(format!(
                "{} trailing bytes",
                buf.remaining()
            )));
        }
        if floor != applied_seq {
            return Err(DynError::Corrupt(format!(
                "watermark {applied_seq} disagrees with last entry sequence {floor}"
            )));
        }
        Ok(UpdateLog {
            base,
            applied_seq,
            term,
            entries,
        })
    }

    /// Atomically persists the log: write to `<path>.tmp`, fsync, rename,
    /// then fsync the parent directory where the platform allows it. A crash
    /// at any point leaves either the old log or the new one, never a
    /// mixture. Fault site: `dynamic::log_write`.
    pub fn save(&self, path: &Path) -> Result<(), DynError> {
        anyscan_faults::inject_io("dynamic::log_write")?;
        let mut bytes = self.to_bytes();
        anyscan_faults::inject_write("dynamic::log_write", &mut bytes)?;

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(DynError::Io(e));
        }
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and validates a log. Fault site: `dynamic::log_read`.
    pub fn load(path: &Path) -> Result<UpdateLog, DynError> {
        anyscan_faults::inject_io("dynamic::log_read")?;
        let raw = std::fs::read(path)?;
        UpdateLog::from_bytes(raw)
    }

    /// Recovery: rebuilds a [`DynamicIndex`] on `base` and re-applies every
    /// logged entry in batches of `batch` (0 = one batch), leaving the
    /// engine at the log's watermark. Replay is deterministic, so the
    /// recovered engine is bit-identical to the one that wrote the log.
    /// Fails if `base` does not match the log's fingerprint.
    pub fn replay(
        &self,
        base: &CsrGraph,
        threads: usize,
        batch: usize,
        telemetry: &Telemetry,
    ) -> Result<DynamicIndex, DynError> {
        let actual = GraphStamp::of(base);
        if actual != self.base {
            return Err(DynError::Incompatible(format!(
                "log taken against |V|={} arcs={} hash={:#018x}, \
                 given |V|={} arcs={} hash={:#018x}",
                self.base.n, self.base.arcs, self.base.hash, actual.n, actual.arcs, actual.hash
            )));
        }
        let mut engine = DynamicIndex::new_traced(base, threads, telemetry)?;
        let chunk = if batch == 0 {
            self.entries.len().max(1)
        } else {
            batch
        };
        for slice in self.entries.chunks(chunk) {
            engine.apply_batch(slice, telemetry)?;
        }
        // Watermark == last entry sequence by construction (append_batch
        // and from_bytes both enforce it), so the engine lands exactly on it.
        debug_assert_eq!(engine.applied_seq(), self.applied_seq);
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::EdgeOp;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_log(g: &CsrGraph) -> UpdateLog {
        let mut log = UpdateLog::new(g);
        log.append_batch(&[
            EdgeUpdate {
                seq: 1,
                u: 0,
                v: 9,
                op: EdgeOp::Insert(1.25),
            },
            EdgeUpdate {
                seq: 2,
                u: 1,
                v: 2,
                op: EdgeOp::Remove,
            },
            EdgeUpdate {
                seq: 5,
                u: 0,
                v: 9,
                op: EdgeOp::Reweight(2.5),
            },
        ])
        .unwrap();
        log
    }

    #[test]
    fn bytes_roundtrip_and_corruption_detection() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = erdos_renyi(&mut rng, 20, 60, WeightModel::uniform_default());
        let log = sample_log(&g);
        let bytes = log.to_bytes();
        assert_eq!(UpdateLog::from_bytes(bytes.clone()).unwrap(), log);

        // Flip one payload byte: checksum must catch it.
        let mut bad = bytes.clone();
        bad[20] ^= 0x40;
        assert!(matches!(
            UpdateLog::from_bytes(bad),
            Err(DynError::Corrupt(_))
        ));
        // Truncation.
        assert!(UpdateLog::from_bytes(bytes[..bytes.len() - 9].to_vec()).is_err());
    }

    #[test]
    fn term_roundtrips_and_is_monotonic() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = erdos_renyi(&mut rng, 10, 20, WeightModel::uniform_default());
        let mut log = sample_log(&g);
        assert_eq!(log.term(), 0);
        log.set_term(3);
        log.set_term(1); // lowering is a no-op: terms only move forward
        assert_eq!(log.term(), 3);
        let back = UpdateLog::from_bytes(log.to_bytes()).unwrap();
        assert_eq!(back.term(), 3);
        assert_eq!(back, log);
    }

    #[test]
    fn v1_log_without_term_still_loads() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = erdos_renyi(&mut rng, 10, 20, WeightModel::uniform_default());
        let log = sample_log(&g);
        // Hand-assemble the v1 layout: identical to v2 minus the term field.
        let mut buf = BytesMut::new();
        framing::put_header(&mut buf, LOG_MAGIC, 1);
        buf.put_u64_le(log.base.n);
        buf.put_u64_le(log.base.arcs);
        buf.put_u64_le(log.base.edges);
        buf.put_u64_le(log.base.hash);
        buf.put_u64_le(log.applied_seq);
        buf.put_u64_le(log.entries.len() as u64);
        for e in &log.entries {
            buf.put_u64_le(e.seq);
            buf.put_u32_le(e.u);
            buf.put_u32_le(e.v);
            buf.put_u8(e.op.code());
            buf.put_f64_le(e.op.weight());
        }
        framing::put_checksum_trailer(&mut buf);
        let loaded = UpdateLog::from_bytes(buf.to_vec()).unwrap();
        assert_eq!(loaded.term(), 0);
        assert_eq!(loaded.entries(), log.entries());
        assert_eq!(loaded.applied_seq(), log.applied_seq());
    }

    #[test]
    fn watermark_must_match_last_entry() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = erdos_renyi(&mut rng, 10, 20, WeightModel::uniform_default());
        let mut log = sample_log(&g);
        log.applied_seq = 9; // desync on purpose
        assert!(matches!(
            UpdateLog::from_bytes(log.to_bytes()),
            Err(DynError::Corrupt(_))
        ));
    }

    #[test]
    fn append_rejects_sequence_regressions() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = erdos_renyi(&mut rng, 10, 20, WeightModel::uniform_default());
        let mut log = sample_log(&g);
        let err = log
            .append_batch(&[EdgeUpdate {
                seq: 5,
                u: 3,
                v: 4,
                op: EdgeOp::Remove,
            }])
            .unwrap_err();
        assert!(matches!(err, DynError::Sequence { seq: 5, floor: 5 }));
        assert_eq!(log.entries().len(), 3, "rejected batch must not append");
        assert_eq!(log.entries_after(2).len(), 1);
        assert_eq!(log.next_seq(), 6);
    }

    #[test]
    fn save_load_replay_with_fault_sites() {
        let dir = std::env::temp_dir().join(format!("asul-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.asul");

        let mut rng = StdRng::seed_from_u64(24);
        let g = erdos_renyi(&mut rng, 40, 160, WeightModel::uniform_default());
        let log = sample_log(&g);
        log.save(&path).unwrap();
        let loaded = UpdateLog::load(&path).unwrap();
        assert_eq!(loaded, log);

        // Replay lands on the watermark and matches a direct apply.
        let replayed = loaded.replay(&g, 2, 2, &Telemetry::disabled()).unwrap();
        assert_eq!(replayed.applied_seq(), 5);
        let mut direct = DynamicIndex::new(&g, 2).unwrap();
        direct
            .apply_batch(log.entries(), &Telemetry::disabled())
            .unwrap();
        assert_eq!(replayed.index(), direct.index());

        // Wrong base graph is refused.
        let mut rng2 = StdRng::seed_from_u64(99);
        let other = erdos_renyi(&mut rng2, 40, 160, WeightModel::uniform_default());
        assert!(matches!(
            loaded.replay(&other, 1, 0, &Telemetry::disabled()),
            Err(DynError::Incompatible(_))
        ));

        // Injected faults surface as typed I/O errors and leave the last
        // good file intact (short write corrupts the payload -> Corrupt on
        // load of a *fresh* path only; the atomic save of the good file
        // above is untouched by a failed save here).
        anyscan_faults::configure(
            "dynamic::log_write",
            anyscan_faults::FaultAction::IoError,
            1,
        );
        assert!(matches!(log.save(&path), Err(DynError::Io(_))));
        anyscan_faults::configure("dynamic::log_read", anyscan_faults::FaultAction::IoError, 1);
        assert!(matches!(UpdateLog::load(&path), Err(DynError::Io(_))));
        anyscan_faults::clear();
        assert_eq!(
            UpdateLog::load(&path).unwrap(),
            log,
            "good file survives failed save"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
