//! A mutable adjacency mirror whose σ is bit-identical to the CSR kernels.
//!
//! [`DynGraph`] keeps each vertex's *closed* neighborhood as an
//! ascending-id-sorted row — exactly the slice layout [`CsrGraph`] exposes —
//! plus the per-vertex squared norms, recomputed after each mutation by the
//! same ascending-id summation `CsrGraph::from_parts` uses. Because sorted
//! rows and norms coincide bitwise with the CSR snapshot of the same graph,
//! [`DynGraph::sigma`] (the textbook merge-join) reproduces
//! `anyscan_scan_common::kernel::sigma_raw` bit for bit, and every kernel the
//! index build uses is documented (and property-tested) bit-identical to
//! `sigma_raw`. That chain is what lets the incremental repair produce an
//! index indistinguishable from a from-scratch build.
//!
//! Mutation primitives here are unchecked by design — validation (range,
//! self-loop, weight domain) happens once per batch in the engine — and they
//! deliberately do *not* refresh norms: the engine refreshes each touched
//! vertex once per batch instead of once per update.

use anyscan_graph::{CsrGraph, EdgeId, VertexId};

/// Mutable graph state for the dynamic update engine: sorted closed rows
/// (self-loop included at its sorted position) plus squared norms.
#[derive(Debug, Clone)]
pub struct DynGraph {
    rows: Vec<Vec<(VertexId, f64)>>,
    norm_sq: Vec<f64>,
    num_edges: u64,
    num_arcs: usize,
}

impl DynGraph {
    /// Mirrors a CSR graph. The rows copy the CSR arc slices verbatim, so
    /// every downstream σ starts bit-identical.
    pub fn from_csr(g: &CsrGraph) -> DynGraph {
        let rows: Vec<Vec<(VertexId, f64)>> =
            g.vertices().map(|v| g.neighbors(v).collect()).collect();
        let norm_sq = g.vertices().map(|v| g.norm_sq(v)).collect();
        DynGraph {
            rows,
            norm_sq,
            num_edges: g.num_edges(),
            num_arcs: g.num_arcs(),
        }
    }

    /// Number of vertices (fixed for the life of the graph).
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Number of undirected edges, excluding the implicit self-loops.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of stored arcs (both directions plus one self-loop per vertex).
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Closed degree of `v` (plain degree + 1 for the self-loop).
    pub fn degree(&self, v: VertexId) -> usize {
        self.rows[v as usize].len()
    }

    /// The sorted closed row of `v`: `(neighbor, weight)` ascending by id,
    /// including `(v, SELF_LOOP_WEIGHT)`.
    pub fn row(&self, v: VertexId) -> &[(VertexId, f64)] {
        &self.rows[v as usize]
    }

    /// Squared weighted norm of `v`'s closed neighborhood.
    pub fn norm_sq(&self, v: VertexId) -> f64 {
        self.norm_sq[v as usize]
    }

    /// Weight of edge `{u, v}`, or `None` when absent. `u != v` assumed.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let row = &self.rows[u as usize];
        row.binary_search_by_key(&v, |e| e.0).ok().map(|i| row[i].1)
    }

    /// Inserts `{u, v}` with weight `w`, or overwrites the weight when the
    /// edge already exists. Returns the previous weight (`None` when the
    /// edge is new). Norms are *not* refreshed — see [`DynGraph::refresh_norm`].
    pub fn set_edge(&mut self, u: VertexId, v: VertexId, w: f64) -> Option<f64> {
        debug_assert_ne!(u, v, "self-loops are implicit");
        let old = self.half_set(u, v, w);
        let mirrored = self.half_set(v, u, w);
        debug_assert_eq!(old.map(f64::to_bits), mirrored.map(f64::to_bits));
        if old.is_none() {
            self.num_edges += 1;
            self.num_arcs += 2;
        }
        old
    }

    /// Deletes `{u, v}` if present, returning its weight. Norms are *not*
    /// refreshed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Option<f64> {
        debug_assert_ne!(u, v, "self-loops are implicit");
        let old = self.half_remove(u, v)?;
        let mirrored = self.half_remove(v, u);
        debug_assert_eq!(Some(old.to_bits()), mirrored.map(f64::to_bits));
        self.num_edges -= 1;
        self.num_arcs -= 2;
        Some(old)
    }

    /// Recomputes `v`'s squared norm by the same ascending-id summation
    /// `CsrGraph::from_parts` performs, so the value is bit-identical to
    /// what a CSR snapshot of this graph would report.
    pub fn refresh_norm(&mut self, v: VertexId) {
        let mut l = 0.0f64;
        for &(_, w) in &self.rows[v as usize] {
            l += w * w;
        }
        self.norm_sq[v as usize] = l;
    }

    /// Structural similarity of adjacent-or-not pair `(u, v)`: the exact
    /// merge-join `sigma_raw` performs, over rows and norms that coincide
    /// bitwise with the CSR form — hence a bit-identical result.
    pub fn sigma(&self, u: VertexId, v: VertexId) -> f64 {
        let ru = &self.rows[u as usize];
        let rv = &self.rows[v as usize];
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        while i < ru.len() && j < rv.len() {
            let (a, b) = (ru[i].0, rv[j].0);
            if a == b {
                num += ru[i].1 * rv[j].1;
                i += 1;
                j += 1;
            } else if a < b {
                i += 1;
            } else {
                j += 1;
            }
        }
        num / (self.norm_sq[u as usize] * self.norm_sq[v as usize]).sqrt()
    }

    /// Snapshots the current state as a [`CsrGraph`] (invariant-checked).
    /// The arc arrays are the concatenated rows, so the snapshot is
    /// bit-identical to what `GraphBuilder` would produce for this edge set.
    pub fn to_csr(&self) -> Result<CsrGraph, String> {
        let mut offsets: Vec<EdgeId> = Vec::with_capacity(self.rows.len() + 1);
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(self.num_arcs);
        let mut weights: Vec<f64> = Vec::with_capacity(self.num_arcs);
        offsets.push(0);
        for row in &self.rows {
            for &(q, w) in row {
                neighbors.push(q);
                weights.push(w);
            }
            offsets.push(neighbors.len());
        }
        CsrGraph::from_sorted_rows(offsets, neighbors, weights, self.num_edges)
    }

    fn half_set(&mut self, a: VertexId, b: VertexId, w: f64) -> Option<f64> {
        let row = &mut self.rows[a as usize];
        match row.binary_search_by_key(&b, |e| e.0) {
            Ok(i) => Some(std::mem::replace(&mut row[i].1, w)),
            Err(i) => {
                row.insert(i, (b, w));
                None
            }
        }
    }

    fn half_remove(&mut self, a: VertexId, b: VertexId) -> Option<f64> {
        let row = &mut self.rows[a as usize];
        match row.binary_search_by_key(&b, |e| e.0) {
            Ok(i) => Some(row.remove(i).1),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::kernel::sigma_raw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_csr_bit_eq(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.neighbor_ids(v), b.neighbor_ids(v));
            let wa: Vec<u64> = a.neighbor_weights(v).iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u64> = b.neighbor_weights(v).iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb);
            assert_eq!(a.norm_sq(v).to_bits(), b.norm_sq(v).to_bits());
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi(&mut rng, 60, 300, WeightModel::uniform_default());
        let d = DynGraph::from_csr(&g);
        assert_csr_bit_eq(&d.to_csr().unwrap(), &g);
    }

    #[test]
    fn sigma_matches_sigma_raw_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi(&mut rng, 50, 260, WeightModel::uniform_default());
        let d = DynGraph::from_csr(&g);
        for (u, v, _) in g.edges() {
            assert_eq!(
                d.sigma(u, v).to_bits(),
                sigma_raw(&g, u, v).to_bits(),
                "σ({u},{v})"
            );
        }
    }

    #[test]
    fn mutations_match_rebuilt_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 1.5);
        let g = b.build();
        let mut d = DynGraph::from_csr(&g);

        assert_eq!(d.set_edge(3, 4, 0.5), None); // insert
        assert_eq!(d.set_edge(1, 2, 4.0), Some(2.0)); // overwrite
        assert_eq!(d.remove_edge(0, 1), Some(1.0)); // delete
        assert_eq!(d.remove_edge(0, 4), None); // absent
        for v in [0, 1, 2, 3, 4] {
            d.refresh_norm(v);
        }
        assert_eq!(d.num_edges(), 3);

        let mut b2 = GraphBuilder::new(5);
        b2.add_edge(1, 2, 4.0);
        b2.add_edge(2, 3, 1.5);
        b2.add_edge(3, 4, 0.5);
        assert_csr_bit_eq(&d.to_csr().unwrap(), &b2.build());
    }
}
