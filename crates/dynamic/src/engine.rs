//! The dynamic update engine: batched mutations in, repaired index out.
//!
//! [`DynamicIndex`] owns a [`DynGraph`] and the [`SimilarityIndex`] built
//! over it, and keeps them consistent under streamed edge mutations. A batch
//! flows through five steps:
//!
//! 1. **Validate** — sequence monotonicity and per-update structure; any
//!    violation rejects the batch atomically (typed [`DynError`], state
//!    untouched).
//! 2. **Mutate** — apply the ops to the sorted rows, recording the set of
//!    *touched* vertices (endpoints of effective changes) and refreshing
//!    each touched norm once.
//! 3. **Re-evaluate σ** — σ(x, y) depends only on the closed neighborhoods
//!    and norms of x and y, so the affected edges are exactly those with an
//!    endpoint in the touched set. They are recomputed on the worker pool
//!    (`parallel_map_adaptive`), each counted in `dyn_sigma_reevals` *and*
//!    `sigma_evals`/`sigma_path_merge` so the kernel-path partition stays
//!    exact.
//! 4. **Patch** — rebuild the neighbor order of every vertex whose order can
//!    have changed (touched vertices and their current neighbors), reusing
//!    stored σ for unaffected pairs, also in parallel.
//! 5. **Repair** — splice the patches into the index in place
//!    ([`SimilarityIndex::apply_patches`]); untouched slices are copied,
//!    touched slices merge-repaired, never re-sorted.
//!
//! After any batch the index is bit-identical to a from-scratch
//! [`SimilarityIndex::build`] on the mutated graph (property-tested in this
//! crate's `tests/`), so `query(eps, mu)` for *any* parameters answers as if
//! the index had been rebuilt.

use std::collections::{BTreeSet, HashMap};

use anyscan_graph::{CsrGraph, VertexId};
use anyscan_index::{NeighborOrderPatch, SimilarityIndex};
use anyscan_parallel::parallel_map_adaptive;
use anyscan_scan_common::{Clustering, ScanParams, SketchMode};
use anyscan_telemetry::{Counter, Recorder, Telemetry};

use crate::graph::DynGraph;
use crate::update::{BatchStats, DynError, EdgeOp, EdgeUpdate};

/// Unordered-pair key for the recomputed-σ lookup.
#[inline]
fn pair_key(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    (a.min(b), a.max(b))
}

/// A similarity index kept consistent with a mutating graph through
/// incremental σ re-evaluation and in-place repair.
#[derive(Debug)]
pub struct DynamicIndex {
    graph: DynGraph,
    index: SimilarityIndex,
    threads: usize,
    applied_seq: u64,
}

impl DynamicIndex {
    /// Builds a fresh index over `g` and wraps it for dynamic updates.
    pub fn new(g: &CsrGraph, threads: usize) -> Result<DynamicIndex, DynError> {
        DynamicIndex::new_traced(g, threads, &Telemetry::disabled())
    }

    /// [`DynamicIndex::new`] with the build recorded on `telemetry`.
    pub fn new_traced(
        g: &CsrGraph,
        threads: usize,
        telemetry: &Telemetry,
    ) -> Result<DynamicIndex, DynError> {
        let index = SimilarityIndex::build_traced(g, threads, telemetry);
        DynamicIndex::from_parts(g, index, threads)
    }

    /// Adopts an existing index (e.g. loaded from an ASIX file) for dynamic
    /// updates. Rejects indexes that cannot be repaired exactly: a
    /// fingerprint mismatch with `g`, a reordered index (dynamic mode runs
    /// in original vertex ids), or approximate sketch mode (estimated σ has
    /// no exact repair).
    pub fn from_parts(
        g: &CsrGraph,
        index: SimilarityIndex,
        threads: usize,
    ) -> Result<DynamicIndex, DynError> {
        index.check_graph(g).map_err(DynError::Incompatible)?;
        if index.reorder() != anyscan_graph::ReorderMode::None {
            return Err(DynError::Incompatible(format!(
                "index was built on a {:?}-reordered graph; dynamic updates require original ids",
                index.reorder()
            )));
        }
        if index.sketch_mode() == SketchMode::Approx {
            return Err(DynError::Incompatible(
                "approximate-σ index cannot be repaired exactly; rebuild with sketch mode \
                 off or assist"
                    .into(),
            ));
        }
        Ok(DynamicIndex {
            graph: DynGraph::from_csr(g),
            index,
            threads,
            applied_seq: 0,
        })
    }

    /// The mutable graph state.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The repaired similarity index.
    pub fn index(&self) -> &SimilarityIndex {
        &self.index
    }

    /// Worker-pool width used for σ re-evaluation and patch construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Watermark: sequence number of the last applied update (0 initially).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Sets the watermark without applying anything. Used by log replay to
    /// adopt a checkpoint's watermark; new batches must start above it.
    pub fn set_applied_seq(&mut self, seq: u64) {
        self.applied_seq = seq;
    }

    /// Snapshots the current graph as an invariant-checked [`CsrGraph`]
    /// (e.g. for an epoch swap in the daemon).
    pub fn to_csr(&self) -> Result<CsrGraph, DynError> {
        self.graph.to_csr().map_err(DynError::Incompatible)
    }

    /// Clusters the current graph at `params` straight from the index.
    pub fn query(&self, params: ScanParams) -> Clustering {
        self.index.query_offline(params)
    }

    /// [`DynamicIndex::query`] with telemetry.
    pub fn query_traced(&self, params: ScanParams, telemetry: &Telemetry) -> Clustering {
        self.index.query_offline_traced(params, telemetry)
    }

    /// Applies one batch of mutations: validates atomically, mutates the
    /// graph, re-evaluates the affected σ on the worker pool and repairs the
    /// index in place. See the module docs for the full pipeline.
    pub fn apply_batch(
        &mut self,
        updates: &[EdgeUpdate],
        telemetry: &Telemetry,
    ) -> Result<BatchStats, DynError> {
        let _span = telemetry.span("dyn_apply_batch");

        // 1. Validate everything before touching anything.
        let mut floor = self.applied_seq;
        for up in updates {
            if up.seq <= floor {
                return Err(DynError::Sequence { seq: up.seq, floor });
            }
            floor = up.seq;
            up.validate(self.graph.num_vertices())?;
        }

        // 2. Mutate, tracking endpoints of effective changes.
        let mut touched: BTreeSet<VertexId> = BTreeSet::new();
        let (mut applied, mut skipped) = (0u64, 0u64);
        for up in updates {
            let changed = match up.op {
                EdgeOp::Insert(w) => {
                    self.graph.set_edge(up.u, up.v, w);
                    true
                }
                EdgeOp::Remove => self.graph.remove_edge(up.u, up.v).is_some(),
                EdgeOp::Reweight(w) => {
                    if self.graph.edge_weight(up.u, up.v).is_some() {
                        self.graph.set_edge(up.u, up.v, w);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed {
                applied += 1;
                touched.insert(up.u);
                touched.insert(up.v);
            } else {
                skipped += 1;
            }
        }
        telemetry.add(Counter::DynUpdatesApplied, applied);
        if let Some(last) = updates.last() {
            self.applied_seq = last.seq;
        }

        let mut stats = BatchStats {
            applied,
            skipped,
            sigma_reevals: 0,
            orders_repaired: 0,
            last_seq: self.applied_seq,
        };
        if touched.is_empty() {
            return Ok(stats);
        }
        for &t in &touched {
            self.graph.refresh_norm(t);
        }

        // 3. Affected σ: every edge with an endpoint whose closed
        // neighborhood or norm changed. Affected orders: those endpoints
        // plus their current neighbors (a removed edge's former partner is
        // itself touched, so it is covered).
        let mut orders: BTreeSet<VertexId> = BTreeSet::new();
        let mut pair_set: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
        for &t in &touched {
            orders.insert(t);
            for &(q, _) in self.graph.row(t) {
                if q != t {
                    orders.insert(q);
                    pair_set.insert(pair_key(t, q));
                }
            }
        }
        let pairs: Vec<(VertexId, VertexId)> = pair_set.into_iter().collect();
        let graph = &self.graph;
        let sigmas: Vec<f64> = {
            let _s = telemetry.span("dyn_sigma_reevals");
            parallel_map_adaptive(self.threads, pairs.len(), |i| {
                let (a, b) = pairs[i];
                graph.sigma(a, b)
            })
        };
        stats.sigma_reevals = pairs.len() as u64;
        // Dynamic re-evals are merge-join σ kernels: count them in the
        // global σ accounting *and* its kernel-path partition, plus the
        // dynamic-subsystem counter, so `sigma_path_*` keeps partitioning
        // `sigma_evals` (+ `index_sigma_evals`) exactly.
        telemetry.add(Counter::SigmaEvals, stats.sigma_reevals);
        telemetry.add(Counter::SigmaPathMerge, stats.sigma_reevals);
        telemetry.add(Counter::DynSigmaReevals, stats.sigma_reevals);
        let fresh: HashMap<(VertexId, VertexId), f64> = pairs.iter().copied().zip(sigmas).collect();

        // 4. Rebuild affected neighbor orders, reusing stored σ for pairs
        // no update could have changed.
        let order_list: Vec<VertexId> = orders.into_iter().collect();
        let index = &self.index;
        let patches: Vec<NeighborOrderPatch> = {
            let _s = telemetry.span("dyn_build_patches");
            parallel_map_adaptive(self.threads, order_list.len(), |i| {
                let a = order_list[i];
                let (old_ids, old_sigs) = index.neighbor_order(a);
                let mut order: Vec<(VertexId, f64)> = graph
                    .row(a)
                    .iter()
                    .map(|&(q, _)| {
                        let s = if q == a {
                            1.0
                        } else if let Some(&s) = fresh.get(&pair_key(a, q)) {
                            s
                        } else {
                            // Neither endpoint touched: the stored σ is
                            // still exact (and the edge predates the batch).
                            let pos = old_ids
                                .iter()
                                .position(|&x| x == q)
                                .expect("unchanged edge must be in the old order");
                            old_sigs[pos]
                        };
                        (q, s)
                    })
                    .collect();
                // The comparator SimilarityIndex::build sorts with.
                order.sort_unstable_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
                NeighborOrderPatch { vertex: a, order }
            })
        };
        stats.orders_repaired = patches.len() as u64;

        // 5. Splice into the index in place.
        self.index
            .apply_patches(&patches, self.graph.num_edges(), telemetry)
            .map_err(DynError::Incompatible)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn upd(seq: u64, u: VertexId, v: VertexId, op: EdgeOp) -> EdgeUpdate {
        EdgeUpdate { seq, u, v, op }
    }

    #[test]
    fn batch_repairs_to_fresh_build() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(&mut rng, 70, 350, WeightModel::uniform_default());
        let mut d = DynamicIndex::new(&g, 2).unwrap();
        let (u, v, w) = g.edges().nth(5).unwrap();
        let batch = vec![
            upd(1, u, v, EdgeOp::Reweight(w * 2.0)),
            upd(2, 0, 69, EdgeOp::Insert(0.75)),
            upd(7, u, v, EdgeOp::Remove),
        ];
        let stats = d.apply_batch(&batch, &Telemetry::disabled()).unwrap();
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.last_seq, 7);
        assert!(stats.sigma_reevals > 0);
        assert_eq!(d.applied_seq(), 7);

        let snapshot = d.to_csr().unwrap();
        let fresh = SimilarityIndex::build(&snapshot, 2);
        assert_eq!(d.index(), &fresh);
    }

    #[test]
    fn noop_batch_skips_repair() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let mut d = DynamicIndex::new(&g, 1).unwrap();
        let before = d.index().clone();
        let stats = d
            .apply_batch(
                &[
                    upd(1, 2, 3, EdgeOp::Remove),        // absent edge
                    upd(2, 0, 3, EdgeOp::Reweight(2.0)), // absent edge
                ],
                &Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.sigma_reevals, 0);
        assert_eq!(d.applied_seq(), 2);
        assert_eq!(d.index(), &before);
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let mut d = DynamicIndex::new(&g, 1).unwrap();
        let before = d.index().clone();
        let cases: Vec<Vec<EdgeUpdate>> = vec![
            vec![
                upd(1, 0, 2, EdgeOp::Insert(1.0)),
                upd(1, 1, 2, EdgeOp::Insert(1.0)),
            ],
            vec![
                upd(2, 0, 2, EdgeOp::Insert(1.0)),
                upd(1, 1, 2, EdgeOp::Insert(1.0)),
            ],
            vec![upd(1, 0, 0, EdgeOp::Remove)],
            vec![upd(1, 0, 7, EdgeOp::Remove)],
            vec![upd(1, 0, 2, EdgeOp::Insert(-1.0))],
        ];
        for batch in cases {
            let err = d.apply_batch(&batch, &Telemetry::disabled()).unwrap_err();
            assert!(
                matches!(
                    err,
                    DynError::Sequence { .. }
                        | DynError::SelfLoop { .. }
                        | DynError::Vertex { .. }
                        | DynError::Weight { .. }
                ),
                "unexpected error {err}"
            );
            assert_eq!(d.applied_seq(), 0, "watermark must not advance on reject");
            assert_eq!(d.index(), &before, "index must be untouched on reject");
        }
        // Sequence numbers below an advanced watermark are rejected too.
        d.apply_batch(&[upd(5, 0, 2, EdgeOp::Insert(1.0))], &Telemetry::disabled())
            .unwrap();
        let err = d
            .apply_batch(&[upd(5, 1, 2, EdgeOp::Insert(1.0))], &Telemetry::disabled())
            .unwrap_err();
        assert!(matches!(err, DynError::Sequence { seq: 5, floor: 5 }));
    }

    #[test]
    fn from_parts_rejects_incompatible_indexes() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = erdos_renyi(&mut rng, 30, 90, WeightModel::uniform_default());
        let other = erdos_renyi(&mut rng, 31, 90, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 1);
        assert!(matches!(
            DynamicIndex::from_parts(&other, idx, 1),
            Err(DynError::Incompatible(_))
        ));

        let opts = anyscan_index::IndexBuildOptions {
            sketch: SketchMode::Approx,
            ..Default::default()
        };
        let approx = SimilarityIndex::build_with_options(&g, 1, opts, &Telemetry::disabled());
        assert!(matches!(
            DynamicIndex::from_parts(&g, approx, 1),
            Err(DynError::Incompatible(_))
        ));
    }
}
