//! Dynamic update subsystem: streamed edge mutations with incremental σ
//! re-evaluation and in-place similarity-index repair.
//!
//! The offline pipeline answers "cluster this graph"; this crate answers
//! "keep answering while the graph changes". It follows the incremental
//! trail of the anySCAN paper's interactive setting — pSCAN/GS\*-Index-style
//! indexes make (ε, μ) queries cheap, and "Dynamic Structural Clustering
//! Unleashed" shows σ locality makes *maintaining* such an index cheap too:
//! an edge update to `{u, v}` changes σ only on edges incident to `u` or
//! `v`, so a batch of updates needs `O(Σ deg)` σ re-evaluations and a
//! handful of order repairs, not a rebuild.
//!
//! The pieces, bottom-up:
//!
//! * [`EdgeUpdate`] / [`EdgeOp`] ([`update`]) — sequenced, typed mutations
//!   with atomic batch validation.
//! * [`DynGraph`] ([`graph`]) — a mutable sorted-row mirror of [`CsrGraph`]
//!   whose σ is bit-identical to the CSR kernels.
//! * [`DynamicIndex`] ([`engine`]) — applies batches: mutate, re-evaluate
//!   affected σ on the worker pool, repair the index in place via
//!   [`SimilarityIndex::apply_patches`]. After every batch the index is
//!   bit-identical to a from-scratch build on the mutated graph, so any
//!   `(ε, μ)` query answers correctly with no rebuild.
//! * [`UpdateLog`] ([`log`]) — ASUL-framed, checksummed, atomically saved
//!   mutation log; crash recovery is load + [`UpdateLog::replay`].
//!
//! The serve daemon builds its `ApplyUpdates` opcode on [`DynamicIndex`]
//! (epoch-swapped behind its read path), the CLI's `mutate`/`replay`
//! commands and the loadgen `update:` mix generate and drive traffic, and
//! `bench_pr8` measures the repair-vs-rebuild crossover.
//!
//! [`CsrGraph`]: anyscan_graph::CsrGraph
//! [`SimilarityIndex::apply_patches`]: anyscan_index::SimilarityIndex::apply_patches

pub mod engine;
pub mod graph;
pub mod log;
pub mod update;

pub use engine::DynamicIndex;
pub use graph::DynGraph;
pub use log::{GraphStamp, UpdateLog, LOG_MAGIC, LOG_VERSION};
pub use update::{BatchStats, DynError, EdgeOp, EdgeUpdate};
