//! Mutation vocabulary: typed edge updates, batch statistics and the
//! subsystem's error type.
//!
//! An [`EdgeUpdate`] is one sequenced mutation of an undirected edge. Batches
//! are validated *atomically* before anything is applied: a structurally
//! invalid update (self-loop, out-of-range endpoint, non-finite or
//! non-positive weight, sequence regression) rejects the whole batch with a
//! typed [`DynError`] and leaves graph and index untouched. Semantically the
//! operations are relaxed so random traffic is cheap to generate:
//!
//! * [`EdgeOp::Insert`] is an upsert — it creates the edge or overwrites the
//!   existing weight.
//! * [`EdgeOp::Remove`] deletes the edge if present and is a recorded no-op
//!   (`skipped`) otherwise.
//! * [`EdgeOp::Reweight`] sets the weight only if the edge exists and is a
//!   recorded no-op otherwise.

use anyscan_graph::VertexId;

/// What to do to the edge `{u, v}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeOp {
    /// Insert the edge with this weight, or overwrite the weight if the edge
    /// already exists.
    Insert(f64),
    /// Delete the edge; skipped (not an error) when the edge is absent.
    Remove,
    /// Set the weight of an *existing* edge; skipped when the edge is absent.
    Reweight(f64),
}

impl EdgeOp {
    /// Wire / log encoding of the operation kind.
    pub fn code(self) -> u8 {
        match self {
            EdgeOp::Insert(_) => 0,
            EdgeOp::Remove => 1,
            EdgeOp::Reweight(_) => 2,
        }
    }

    /// Weight payload for the wire / log encoding (0 for removals).
    pub fn weight(self) -> f64 {
        match self {
            EdgeOp::Insert(w) | EdgeOp::Reweight(w) => w,
            EdgeOp::Remove => 0.0,
        }
    }

    /// Inverse of [`code`](EdgeOp::code) / [`weight`](EdgeOp::weight).
    pub fn from_wire(code: u8, w: f64) -> Option<EdgeOp> {
        match code {
            0 => Some(EdgeOp::Insert(w)),
            1 => Some(EdgeOp::Remove),
            2 => Some(EdgeOp::Reweight(w)),
            _ => None,
        }
    }
}

/// One sequenced edge mutation. Sequence numbers are assigned by the producer
/// (the daemon, the replay driver, or a generator) and must be strictly
/// increasing across the life of a [`DynamicIndex`](crate::DynamicIndex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeUpdate {
    /// Strictly increasing mutation sequence number (never 0).
    pub seq: u64,
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint (`u != v`; the pair is unordered).
    pub v: VertexId,
    /// The mutation.
    pub op: EdgeOp,
}

impl EdgeUpdate {
    /// Structural validation against a graph with `n` vertices. Does not
    /// check sequence ordering (that needs batch context).
    pub fn validate(&self, n: usize) -> Result<(), DynError> {
        if self.u == self.v {
            return Err(DynError::SelfLoop {
                seq: self.seq,
                v: self.u,
            });
        }
        for end in [self.u, self.v] {
            if end as usize >= n {
                return Err(DynError::Vertex {
                    seq: self.seq,
                    v: end,
                    n,
                });
            }
        }
        if let EdgeOp::Insert(w) | EdgeOp::Reweight(w) = self.op {
            if !w.is_finite() || w <= 0.0 {
                return Err(DynError::Weight { seq: self.seq, w });
            }
        }
        Ok(())
    }
}

/// What one applied batch did, for telemetry and admission accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Updates that changed the graph.
    pub applied: u64,
    /// Relaxed no-ops (remove of an absent edge, reweight of an absent edge).
    pub skipped: u64,
    /// σ re-evaluations the batch triggered (edges incident to a touched
    /// neighborhood).
    pub sigma_reevals: u64,
    /// Neighbor orders repaired in place in the similarity index.
    pub orders_repaired: u64,
    /// Sequence number of the last update in the batch (the new watermark).
    pub last_seq: u64,
}

/// Typed failure of the dynamic update subsystem. Batch-validation variants
/// guarantee the engine state was not modified.
#[derive(Debug)]
pub enum DynError {
    /// An endpoint is outside `0..n`.
    Vertex {
        /// Sequence number of the offending update.
        seq: u64,
        /// The out-of-range endpoint.
        v: VertexId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// Both endpoints are the same vertex (self-loops are implicit and
    /// immutable).
    SelfLoop {
        /// Sequence number of the offending update.
        seq: u64,
        /// The repeated endpoint.
        v: VertexId,
    },
    /// Insert/reweight weight is not finite or not positive.
    Weight {
        /// Sequence number of the offending update.
        seq: u64,
        /// The rejected weight.
        w: f64,
    },
    /// A sequence number is not strictly greater than the watermark / its
    /// predecessor in the batch.
    Sequence {
        /// The offending sequence number.
        seq: u64,
        /// The value it had to exceed.
        floor: u64,
    },
    /// The graph/index pair cannot be updated dynamically (fingerprint
    /// mismatch, reordered index, approximate sketch mode).
    Incompatible(String),
    /// A mutation log failed structural decoding (bad magic, checksum,
    /// truncation, inconsistent watermark).
    Corrupt(String),
    /// Filesystem failure while persisting or loading a mutation log.
    Io(std::io::Error),
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynError::Vertex { seq, v, n } => {
                write!(f, "update {seq}: vertex {v} out of range (|V| = {n})")
            }
            DynError::SelfLoop { seq, v } => {
                write!(
                    f,
                    "update {seq}: self-loop on {v} (self-similarity is fixed at 1)"
                )
            }
            DynError::Weight { seq, w } => {
                write!(f, "update {seq}: weight {w} must be finite and > 0")
            }
            DynError::Sequence { seq, floor } => {
                write!(f, "update {seq}: sequence must exceed {floor}")
            }
            DynError::Incompatible(msg) => write!(f, "incompatible graph/index: {msg}"),
            DynError::Corrupt(msg) => write!(f, "corrupt update log: {msg}"),
            DynError::Io(e) => write!(f, "update log I/O: {e}"),
        }
    }
}

impl std::error::Error for DynError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DynError {
    fn from(e: std::io::Error) -> Self {
        DynError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_wire_roundtrip() {
        for op in [EdgeOp::Insert(2.5), EdgeOp::Remove, EdgeOp::Reweight(0.25)] {
            assert_eq!(EdgeOp::from_wire(op.code(), op.weight()), Some(op));
        }
        assert_eq!(EdgeOp::from_wire(3, 1.0), None);
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let ok = EdgeUpdate {
            seq: 1,
            u: 0,
            v: 1,
            op: EdgeOp::Insert(1.0),
        };
        assert!(ok.validate(2).is_ok());
        let cases = [
            EdgeUpdate {
                seq: 2,
                u: 3,
                v: 1,
                op: EdgeOp::Remove,
            },
            EdgeUpdate {
                seq: 3,
                u: 0,
                v: 0,
                op: EdgeOp::Remove,
            },
            EdgeUpdate {
                seq: 4,
                u: 0,
                v: 1,
                op: EdgeOp::Insert(0.0),
            },
            EdgeUpdate {
                seq: 5,
                u: 0,
                v: 1,
                op: EdgeOp::Reweight(f64::NAN),
            },
            EdgeUpdate {
                seq: 6,
                u: 0,
                v: 1,
                op: EdgeOp::Insert(f64::INFINITY),
            },
        ];
        for c in cases {
            assert!(c.validate(2).is_err(), "{c:?} should be rejected");
        }
    }
}
