//! Flag parsing for the CLI (hand-rolled; the workspace keeps its
//! dependency budget minimal).

use std::collections::HashMap;

/// Parsed `--key value` options (plus boolean switches).
#[derive(Debug, Default)]
pub struct Options {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Options {
    /// Parses a `--key value | --switch` token stream.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        const SWITCHES: &[&str] = &["unweighted", "no-opt", "quiet", "dynamic", "promote"];
        let mut out = Options::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {tok:?}"));
            };
            if SWITCHES.contains(&key) {
                out.switches.push(key.to_string());
                i += 1;
                continue;
            }
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            out.values.insert(key.to_string(), value);
            i += 2;
        }
        Ok(out)
    }

    /// A required typed option.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .values
            .get(key)
            .ok_or_else(|| format!("missing --{key}"))?;
        raw.parse()
            .map_err(|_| format!("bad value for --{key}: {raw:?}"))
    }

    /// An optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for --{key}: {raw:?}")),
        }
    }

    /// Raw string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Comma-separated list of typed values.
    pub fn get_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| format!("bad list item {t:?} in --{key}"))
                })
                .collect::<Result<Vec<T>, String>>()
                .map(Some),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

pub fn print_usage() {
    eprintln!(
        "anyscan — structural graph clustering (SCAN family / anySCAN)

commands:
  stats        --input FILE | --dataset ID [--scale F] [--seed N]
  generate     --kind lfr|er|sbm|rmat --n N [--avg-degree D] [--mixing M]
               [--communities K] [--edge-factor F] [--seed N] [--unweighted]
               --out FILE[.bin|.txt]
  cluster      --input FILE | --dataset ID  --eps E --mu M
               [--algo anyscan|scan|scan-b|pscan|scan++] [--threads T]
               [--block B] [--reorder none|degree|bfs] [--labels-out FILE]
               [--trace-json FILE] [--no-opt]
               [--sketch off|assist|approx] [--sketch-rows R] [--sketch-bits B]
               [--hub-cap N] [--hub-min-degree D] [--probe-ratio R]
               [--deadline-ms MS] [--max-blocks N]
               [--checkpoint FILE.asck] [--checkpoint-every N]
  resume       --checkpoint FILE.asck  --input FILE | --dataset ID
               [--threads T] [--labels-out FILE] [--trace-json FILE]
               [--deadline-ms MS] [--max-blocks N] [--checkpoint-every N]
  explore      --input FILE | --dataset ID  [--eps a,b,c] [--mu a,b,c]
               [--threads T] [--reorder none|degree|bfs]
  hierarchy    --input FILE | --dataset ID  [--mu M] [--eps a,b,c]
               [--threads T] [--top N] [--reorder none|degree|bfs]
  interactive  --input FILE | --dataset ID  --eps E --mu M
               [--checkpoint-ms MS] [--threads T] [--trace-json FILE]
               [--reorder none|degree|bfs]
               [--sketch off|assist|approx] [--sketch-rows R] [--sketch-bits B]
               [--index FILE.asix]   (answer from a prebuilt index instantly)
               [--deadline-ms MS] [--max-blocks N] [--checkpoint FILE.asck]
  index build  --input FILE | --dataset ID  --out FILE.asix
               [--threads T] [--trace-json FILE] [--reorder none|degree|bfs]
               [--sketch off|assist|approx] [--sketch-rows R] [--sketch-bits B]
  index query  --input FILE | --dataset ID  --index FILE.asix
               --eps a,b,c --mu a,b,c [--labels-out FILE] [--trace-json FILE]
               [--sketch approx]   (answer from the .asix file alone, no graph)
  serve        --input FILE | --dataset ID  --index FILE.asix
               [--listen HOST:PORT | --socket PATH] [--threads T]
               [--max-inflight N] [--queue-depth N] [--cache-entries N]
               [--conn-timeout-ms MS] [--dynamic [--update-log FILE.asul]]
               [--replica-of HOST:PORT|unix:PATH] [--promote]
               [--trace-json FILE]
  probe        --connect LIST | --socket PATH   (health of each endpoint)
  promote      --connect HOST:PORT | --socket PATH   (make it the primary)
  mutate       --input FILE | --dataset ID  --trace-out FILE.asul
               [--updates N] [--batch B] [--update-seed S] [--threads T]
               [--out FILE[.bin|.txt]] [--trace-json FILE]
  replay       --input FILE | --dataset ID  --trace FILE.asul
               [--batch B] [--threads T] [--eps E --mu M]
               [--labels-out FILE] [--trace-json FILE]

dataset ids: GR01..GR05, LFR01..LFR05, LFR11..LFR15 (Table I/II analogues)

--trace-json writes the run's structured telemetry (spans, counters, pool
utilization, anytime snapshots; schema checked by anyscan-trace-check)

serve answers concurrent (eps, mu) queries, per-vertex membership lookups
and deadline-bounded anytime runs over a length-framed socket protocol
(DESIGN.md §12); drive it with anyscan-loadgen. Overflow beyond
--max-inflight + --queue-depth is shed with a typed `overloaded` error

serve --dynamic also accepts streamed edge mutations (insert / remove /
reweight batches): the daemon re-evaluates only the σ values touched by a
batch, repairs the index in place, and swaps the new snapshot in under
concurrent readers — answers stay bit-identical to a from-scratch index on
the mutated graph (DESIGN.md §13). --update-log makes mutations durable
(ASUL format; replayed on restart). `mutate` generates and applies a random
update trace; `replay` re-applies a trace against its base graph. Dynamic
mode requires an index built with --reorder none and --sketch off|assist

serve --replica-of makes a dynamic daemon a read-only replica: it
subscribes to the primary's committed ASUL stream, serves reads at its
applied epoch, and answers writes with a typed `not primary` + leader hint.
`promote` (the command, or --promote on a restart) turns a replica into a
writable primary, fencing the old one via a monotonic term carried in every
replicated frame (DESIGN.md §14). `probe` prints each endpoint's health:
role, term, epoch, durable watermark and admission pressure.
--conn-timeout-ms closes connections that stall past the deadline with a
typed `timeout` error (counted in serve stats)

execution control: Ctrl-C, --deadline-ms, and --max-blocks all stop a run
cleanly at the next block boundary with the best-so-far clustering;
--checkpoint-every N writes a crash-safe .asck checkpoint every N blocks,
and `resume` continues a run from one (same clustering as uninterrupted)

--reorder relabels vertices for cache locality (degree-descending or BFS)
before clustering; all output stays in original vertex ids. `resume` and
`index query` re-apply the mode recorded in the .asck / .asix file
automatically, so the flag is only given at `cluster` / `index build` time

--sketch builds b-bit MinHash signatures of every closed neighborhood:
`assist` keeps the clustering bit-identical (sketches only order and route
work among the exact kernels); `approx` lets the estimate decide, with
--sketch-rows R (default 128) and --sketch-bits 1|2|4|8|16 (default 8) as
the error knob. --hub-cap / --hub-min-degree tune the hub-bitmap layer;
--probe-ratio moves the merge-vs-hash-probe crossover (both exact)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tokens: &[&str]) -> Options {
        Options::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_values_and_switches() {
        let o = opts(&["--eps", "0.5", "--unweighted", "--mu", "5"]);
        assert_eq!(o.require::<f64>("eps").unwrap(), 0.5);
        assert_eq!(o.require::<usize>("mu").unwrap(), 5);
        assert!(o.switch("unweighted"));
        assert!(!o.switch("no-opt"));
    }

    #[test]
    fn defaults_and_lists() {
        let o = opts(&["--eps", "0.1,0.2,0.3"]);
        assert_eq!(o.get_or::<usize>("mu", 5).unwrap(), 5);
        assert_eq!(o.get_list::<f64>("eps").unwrap(), Some(vec![0.1, 0.2, 0.3]));
        assert_eq!(o.get_list::<f64>("nope").unwrap(), None);
    }

    #[test]
    fn error_paths() {
        assert!(Options::parse(&["eps".to_string()]).is_err());
        assert!(Options::parse(&["--eps".to_string()]).is_err());
        let o = opts(&["--mu", "abc"]);
        assert!(o.require::<usize>("mu").is_err());
        assert!(o.require::<usize>("absent").is_err());
    }
}
