//! Ctrl-C and SIGTERM as cooperative cancel sources.
//!
//! The handler only flips a static atomic — the driver notices it at the
//! next block boundary (via [`anyscan::RunControl::with_interrupt_flag`])
//! and stops cleanly with the Lemma-1 best-so-far snapshot; the serve
//! daemon notices it in its accept loop and drains (connections finish,
//! the update log and trace flush). SIGTERM gets the same treatment as
//! SIGINT because that is what orchestrators and CI send on teardown — a
//! supervised daemon must drain on it, not die mid-write. No dependency:
//! the raw libc `signal` symbol is declared directly; an atomic store is
//! async-signal-safe.

use std::sync::atomic::AtomicBool;

pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// The interrupt flag to attach to a [`anyscan::RunControl`].
pub fn flag() -> &'static AtomicBool {
    &INTERRUPTED
}

#[cfg(unix)]
pub fn install() {
    use std::sync::atomic::Ordering;

    extern "C" fn handle(_sig: i32) {
        INTERRUPTED.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, handle as extern "C" fn(i32) as usize);
        signal(SIGTERM, handle as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        assert!(!flag().load(Ordering::Acquire));
    }
}
