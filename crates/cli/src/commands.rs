//! Command implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use anyscan::explore::EpsilonExplorer;
use anyscan::hierarchy::EpsilonHierarchy;
use anyscan::telemetry::MetaValue;
use anyscan::{
    anyscan, AnyScan, AnyScanConfig, Checkpoint, Counter, PartialResult, Phase, Recorder,
    RunControl, Telemetry,
};
use anyscan_baselines::{pscan, scan, scan_b, scanpp};
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate, GraphStamp, UpdateLog};
use anyscan_graph::gen::{
    erdos_renyi, lfr, planted_partition, rmat, Dataset, DatasetId, LfrParams,
    PlantedPartitionParams, RmatParams, WeightModel,
};
use anyscan_graph::io::{read_binary, read_edge_list, write_binary, write_edge_list};
use anyscan_graph::reorder;
use anyscan_graph::stats::graph_stats;
use anyscan_graph::{CsrGraph, ReorderMode, VertexPermutation};
use anyscan_index::io::{read_index, write_index};
use anyscan_index::{IndexBuildOptions, SimilarityIndex};
use anyscan_scan_common::sketch::{DEFAULT_BITS, DEFAULT_ROWS, MAX_ROWS, VALID_BITS};
use anyscan_scan_common::{
    Clustering, HubBitmaps, ScanParams, SketchMode, HASH_PROBE_MISMATCH_RATIO, NOISE,
};
use anyscan_serve::{Listener, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::Options;

type CmdResult = Result<(), String>;

/// Loads the input graph from `--input FILE` (`.bin` = binary CSR,
/// anything else = text edge list) or `--dataset ID`.
fn load_graph(opts: &Options) -> Result<CsrGraph, String> {
    if let Some(path) = opts.get_str("input") {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let reader = BufReader::new(file);
        return if path.ends_with(".bin") {
            read_binary(reader).map_err(|e| format!("read {path}: {e}"))
        } else {
            read_edge_list(reader, None).map_err(|e| format!("read {path}: {e}"))
        };
    }
    if let Some(id) = opts.get_str("dataset") {
        let id = parse_dataset_id(id)?;
        let scale: f64 = opts.get_or("scale", 1.0)?;
        let seed: u64 = opts.get_or("seed", 7)?;
        let (g, _) = Dataset::get(id).generate_scaled(scale, seed);
        return Ok(g);
    }
    Err("need --input FILE or --dataset ID".into())
}

/// `--reorder none|degree|bfs` (default none).
fn reorder_mode(opts: &Options) -> Result<ReorderMode, String> {
    match opts.get_str("reorder") {
        None => Ok(ReorderMode::None),
        Some(raw) => raw.parse(),
    }
}

/// `--sketch off|assist|approx` (default off).
fn sketch_mode(opts: &Options) -> Result<SketchMode, String> {
    match opts.get_str("sketch") {
        None => Ok(SketchMode::Off),
        Some(raw) => raw.parse(),
    }
}

/// `--sketch` / `--sketch-rows` / `--sketch-bits`, validated up front so a
/// bad signature size is a flag error, not a build panic.
fn sketch_options(opts: &Options) -> Result<(SketchMode, usize, u32), String> {
    let mode = sketch_mode(opts)?;
    let rows: usize = opts.get_or("sketch-rows", DEFAULT_ROWS)?;
    let bits: u32 = opts.get_or("sketch-bits", DEFAULT_BITS)?;
    if mode != SketchMode::Off {
        if rows == 0 || rows > MAX_ROWS {
            return Err(format!(
                "--sketch-rows must be in 1..={MAX_ROWS}, got {rows}"
            ));
        }
        if !VALID_BITS.contains(&bits) {
            return Err(format!(
                "--sketch-bits must be one of {VALID_BITS:?}, got {bits}"
            ));
        }
    }
    Ok((mode, rows, bits))
}

/// `--probe-ratio` (the σ merge-vs-hash-probe crossover; ≥ 1).
fn probe_ratio(opts: &Options) -> Result<usize, String> {
    let ratio: usize = opts.get_or("probe-ratio", HASH_PROBE_MISMATCH_RATIO)?;
    if ratio == 0 {
        return Err("--probe-ratio must be >= 1".into());
    }
    Ok(ratio)
}

/// Applies the kernel tuning flags — `--sketch`, `--sketch-rows`,
/// `--sketch-bits`, `--hub-cap`, `--hub-min-degree`, `--probe-ratio` — to
/// an anySCAN config.
fn apply_tuning(opts: &Options, config: AnyScanConfig) -> Result<AnyScanConfig, String> {
    let (mode, rows, bits) = sketch_options(opts)?;
    let hub_cap: usize = opts.get_or("hub-cap", HubBitmaps::DEFAULT_MAX_HUBS)?;
    let hub_min: usize = opts.get_or("hub-min-degree", HubBitmaps::DEFAULT_MIN_DEGREE)?;
    Ok(config
        .with_sketch(mode)
        .with_sketch_params(rows, bits)
        .with_hub_params(hub_cap, hub_min)
        .with_probe_ratio(probe_ratio(opts)?))
}

/// Loads the graph and applies the requested cache-locality reordering.
/// Everything downstream computes in the reordered labeling; per-vertex
/// output must go back through [`to_original_ids`] (or the permutation's
/// `old_of_new`) before reaching the user.
fn load_graph_reordered(opts: &Options) -> Result<(CsrGraph, VertexPermutation), String> {
    let g = load_graph(opts)?;
    let mode = reorder_mode(opts)?;
    Ok(apply_reorder(g, mode))
}

/// Relabels `g` by `mode`, announcing non-trivial reorderings on stderr.
fn apply_reorder(g: CsrGraph, mode: ReorderMode) -> (CsrGraph, VertexPermutation) {
    let (g, perm) = reorder::reorder(&g, mode);
    if mode != ReorderMode::None {
        eprintln!("reordered graph ({mode}); output stays in original vertex ids");
    }
    (g, perm)
}

/// Maps a clustering computed on a reordered graph back to original vertex
/// ids, canonicalizing labels (dense, first-occurrence order) so label
/// values do not leak the internal labeling.
fn to_original_ids(mut c: Clustering, perm: &VertexPermutation) -> Clustering {
    if !perm.is_identity() {
        c.labels = perm.to_original(&c.labels);
        c.roles = perm.to_original(&c.roles);
        c.canonicalize();
    }
    c
}

fn parse_dataset_id(raw: &str) -> Result<DatasetId, String> {
    let up = raw.to_ascii_uppercase();
    match up.as_str() {
        "GR01" => Ok(DatasetId::Gr01),
        "GR02" => Ok(DatasetId::Gr02),
        "GR03" => Ok(DatasetId::Gr03),
        "GR04" => Ok(DatasetId::Gr04),
        "GR05" => Ok(DatasetId::Gr05),
        _ => up
            .strip_prefix("LFR")
            .and_then(|k| k.parse::<u8>().ok())
            .filter(|k| matches!(k, 1..=5 | 11..=15))
            .map(DatasetId::Lfr)
            .ok_or_else(|| format!("unknown dataset {raw:?}")),
    }
}

fn scan_params(opts: &Options) -> Result<ScanParams, String> {
    let eps: f64 = opts.require("eps")?;
    let mu: usize = opts.require("mu")?;
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(format!("--eps must be in (0,1], got {eps}"));
    }
    if mu == 0 {
        return Err("--mu must be >= 1".into());
    }
    Ok(ScanParams::new(eps, mu))
}

/// Builds the run's cancellation token from `--deadline-ms` / `--max-blocks`
/// and installs the Ctrl-C handler (cooperative: the driver notices at the
/// next block boundary).
fn run_control(opts: &Options) -> Result<RunControl, String> {
    crate::sigint::install();
    let mut ctl = RunControl::new().with_interrupt_flag(crate::sigint::flag());
    if let Some(raw) = opts.get_str("deadline-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| format!("bad value for --deadline-ms: {raw:?}"))?;
        ctl = ctl.with_deadline(Duration::from_millis(ms));
    }
    if let Some(raw) = opts.get_str("max-blocks") {
        let blocks: u64 = raw
            .parse()
            .map_err(|_| format!("bad value for --max-blocks: {raw:?}"))?;
        ctl = ctl.with_max_blocks(blocks);
    }
    Ok(ctl)
}

/// `--checkpoint-every N` + `--checkpoint FILE` pair; `every == 0` disables.
fn checkpoint_options(opts: &Options) -> Result<(u64, Option<String>), String> {
    let every: u64 = opts.get_or("checkpoint-every", 0)?;
    let path = opts.get_str("checkpoint").map(str::to_string);
    if every > 0 && path.is_none() {
        return Err("--checkpoint-every needs --checkpoint FILE".into());
    }
    Ok((every, path))
}

/// Drives a (possibly resumed) anytime run under `ctl`, checkpointing to
/// `ckpt_path` every `every` blocks, and reports an early stop.
fn run_to_partial(
    algo: &mut AnyScan<'_>,
    ctl: &RunControl,
    every: u64,
    ckpt_path: Option<&str>,
) -> Result<PartialResult, String> {
    let partial = algo
        .run_controlled_with(ctl, every, |a| {
            a.checkpoint()
                .save(Path::new(ckpt_path.expect("validated")))
        })
        .map_err(|e| e.to_string())?;
    if !partial.completion.is_complete() {
        eprintln!(
            "stopped early ({}) in phase {:?} after {} blocks; partial clustering returned",
            partial.completion.label(),
            partial.phase,
            partial.blocks
        );
        if let Some(path) = ckpt_path {
            algo.checkpoint()
                .save(Path::new(path))
                .map_err(|e| e.to_string())?;
            eprintln!("checkpoint saved; continue with: anyscan resume --checkpoint {path} ...");
        }
    }
    Ok(partial)
}

pub fn stats(opts: &Options) -> CmdResult {
    let g = load_graph(opts)?;
    let s = graph_stats(&g);
    println!("vertices                {}", s.num_vertices);
    println!("edges                   {}", s.num_edges);
    println!("average degree          {:.3}", s.average_degree);
    println!(
        "min / max degree        {} / {}",
        s.min_degree, s.max_degree
    );
    println!("triangles               {}", s.triangles);
    println!(
        "avg clustering coeff    {:.4}",
        s.average_clustering_coefficient
    );
    println!(
        "global clustering coeff {:.4}",
        s.global_clustering_coefficient
    );
    let (_, components) = anyscan_graph::traversal::connected_components(&g);
    println!("connected components    {components}");
    Ok(())
}

pub fn generate(opts: &Options) -> CmdResult {
    let kind = opts.get_str("kind").ok_or("missing --kind")?;
    let n: usize = opts.get_or("n", 10_000)?;
    let seed: u64 = opts.get_or("seed", 7)?;
    let weights = if opts.switch("unweighted") {
        WeightModel::Unit
    } else {
        WeightModel::uniform_default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match kind {
        "lfr" => {
            let mut p = LfrParams::paper_defaults(n, opts.get_or("avg-degree", 20.0)?);
            p.mixing = opts.get_or("mixing", 0.3)?;
            p.weights = weights;
            lfr(&mut rng, &p).0
        }
        "er" => {
            let d: f64 = opts.get_or("avg-degree", 20.0)?;
            erdos_renyi(&mut rng, n, (n as f64 * d / 2.0) as usize, weights)
        }
        "sbm" => {
            let p = PlantedPartitionParams {
                n,
                num_communities: opts.get_or("communities", 10)?,
                p_in: opts.get_or("p-in", 0.3)?,
                p_out: opts.get_or("p-out", 0.01)?,
                weights,
            };
            planted_partition(&mut rng, &p).0
        }
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            let mut p = RmatParams::graph500(scale, opts.get_or("edge-factor", 16)?);
            p.weights = weights;
            rmat(&mut rng, &p)
        }
        other => return Err(format!("unknown --kind {other:?} (lfr|er|sbm|rmat)")),
    };
    let out = opts.get_str("out").ok_or("missing --out")?;
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    if out.ends_with(".bin") {
        write_binary(&g, BufWriter::new(file)).map_err(|e| e.to_string())?;
    } else {
        write_edge_list(&g, BufWriter::new(file)).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} vertices, {} edges to {out}",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

pub fn cluster(opts: &Options) -> CmdResult {
    let (g, perm) = load_graph_reordered(opts)?;
    let params = scan_params(opts)?;
    let algo = opts.get_str("algo").unwrap_or("anyscan");
    let trace_path = opts.get_str("trace-json");
    if trace_path.is_some() && algo != "anyscan" {
        return Err(format!(
            "--trace-json requires --algo anyscan, got {algo:?}"
        ));
    }
    let start = Instant::now();
    let (clustering, evals, cache_hits): (Clustering, u64, u64) = match algo {
        "scan" => {
            let out = scan(&g, params);
            (out.clustering, out.stats.sigma_evals, out.stats.cache_hits)
        }
        "scan-b" => {
            let out = scan_b(&g, params);
            (out.clustering, out.stats.sigma_evals, out.stats.cache_hits)
        }
        "pscan" => {
            let out = pscan(&g, params);
            (out.clustering, out.stats.sigma_evals, out.stats.cache_hits)
        }
        "scan++" | "scanpp" => {
            let out = scanpp(&g, params);
            (
                out.clustering,
                out.stats.sigma_evals + out.stats.shared_evals,
                out.stats.cache_hits,
            )
        }
        "anyscan" => {
            let threads: usize = opts.get_or("threads", 1)?;
            let mut config = AnyScanConfig::new(params)
                .with_auto_block_size(g.num_vertices())
                .with_threads(threads)
                .with_reorder(reorder_mode(opts)?);
            if let Some(b) = opts
                .get_list::<usize>("block")?
                .and_then(|v| v.first().copied())
            {
                config = config.with_block_size(b);
            }
            config.optimizations = !opts.switch("no-opt");
            config = apply_tuning(opts, config)?;
            let telemetry = if trace_path.is_some() {
                Telemetry::enabled()
            } else {
                Telemetry::disabled()
            };
            let ctl = run_control(opts)?;
            let (every, ckpt_path) = checkpoint_options(opts)?;
            let mut a = AnyScan::new(&g, config).with_telemetry(telemetry.clone());
            let partial = run_to_partial(&mut a, &ctl, every, ckpt_path.as_deref())?;
            if let Some(path) = trace_path {
                telemetry.add(Counter::FaultsInjected, anyscan_faults::injected());
                write_trace(path, &telemetry, &g, &config)?;
            }
            (
                partial.clustering,
                a.stats().sigma_evals,
                a.stats().cache_hits,
            )
        }
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let elapsed = start.elapsed();
    let clustering = to_original_ids(clustering, &perm);
    let rc = clustering.role_counts();
    println!("algorithm   {algo}");
    println!("runtime     {elapsed:?}");
    println!("sigma evals {evals}");
    println!("cache hits  {cache_hits}");
    println!("clusters    {}", clustering.num_clusters());
    println!("cores       {}", rc.cores);
    println!("borders     {}", rc.borders);
    println!("hubs        {}", rc.hubs);
    println!("outliers    {}", rc.outliers);
    if let Some(path) = opts.get_str("labels-out") {
        write_labels(path, &clustering)?;
        println!("labels written to {path}");
    }
    Ok(())
}

/// `anyscan resume --checkpoint FILE --input FILE|--dataset ID`: reloads an
/// `ASCK` checkpoint, verifies it against the graph, and continues the run
/// from the saved block boundary. (ε, μ) and the ablation levers come from
/// the checkpoint; `--threads` may override the schedule (the clustering is
/// unaffected). Supports the same `--deadline-ms` / `--max-blocks` /
/// `--checkpoint-every` controls as `cluster`.
pub fn resume(opts: &Options) -> CmdResult {
    let ckpt_path = opts
        .get_str("checkpoint")
        .ok_or("missing --checkpoint FILE")?;
    let ck = Checkpoint::load(Path::new(ckpt_path)).map_err(|e| e.to_string())?;
    // The checkpoint records the reorder mode the run was started with;
    // re-apply it (deterministic) so the saved state lines up with the
    // relabeled graph. A `--reorder` flag here is ignored.
    let (g, perm) = apply_reorder(load_graph(opts)?, ck.config(0).reorder);
    let params = ck.params();
    let threads: usize = opts.get_or("threads", 0)?; // 0 = keep checkpointed count
    let trace_path = opts.get_str("trace-json");
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut algo = ck
        .restore_with_telemetry(&g, threads, telemetry.clone())
        .map_err(|e| format!("--checkpoint {ckpt_path}: {e}"))?;
    telemetry.add(Counter::ResumeLoads, 1);
    println!(
        "resumed {ckpt_path}: phase {:?}, {} blocks done (eps={}, mu={})",
        ck.phase(),
        ck.blocks(),
        params.epsilon,
        params.mu
    );

    let ctl = run_control(opts)?;
    let every: u64 = opts.get_or("checkpoint-every", 0)?;
    let start = Instant::now();
    let partial = run_to_partial(&mut algo, &ctl, every, Some(ckpt_path))?;
    let elapsed = start.elapsed();

    let clustering = to_original_ids(partial.clustering.clone(), &perm);
    let rc = clustering.role_counts();
    println!("completion  {}", partial.completion.label());
    println!("runtime     {elapsed:?} (this session)");
    println!("blocks      {}", partial.blocks);
    println!("sigma evals {}", algo.stats().sigma_evals);
    println!("clusters    {}", clustering.num_clusters());
    println!("cores       {}", rc.cores);
    println!("borders     {}", rc.borders);
    println!("hubs        {}", rc.hubs);
    println!("outliers    {}", rc.outliers);
    if let Some(path) = opts.get_str("labels-out") {
        write_labels(path, &clustering)?;
        println!("labels written to {path}");
    }
    if let Some(path) = trace_path {
        telemetry.add(Counter::FaultsInjected, anyscan_faults::injected());
        // `config(threads)` keeps the checkpointed thread count when the
        // CLI gave no override (threads == 0).
        write_trace(path, &telemetry, &g, &ck.config(threads))?;
    }
    Ok(())
}

/// Serializes a finished run's telemetry report (schema version 1; see
/// `anyscan_telemetry::validate`) to `path`, with the run's shape *and*
/// kernel tuning (sketch mode, hub-bitmap cap/floor) in the meta block so a
/// trace is self-describing about how its σ counters were produced.
fn write_trace(
    path: &str,
    telemetry: &Telemetry,
    g: &CsrGraph,
    config: &AnyScanConfig,
) -> CmdResult {
    let params = config.params;
    let meta: Vec<(&str, MetaValue)> = vec![
        ("vertices", (g.num_vertices() as u64).into()),
        ("edges", g.num_edges().into()),
        ("epsilon", params.epsilon.into()),
        ("mu", (params.mu as u64).into()),
        ("threads", (config.threads as u64).into()),
        ("sketch", config.sketch.as_str().into()),
        ("sketch_rows", (config.sketch_rows as u64).into()),
        ("sketch_bits", u64::from(config.sketch_bits).into()),
        ("hub_cap", (config.hub_max_hubs as u64).into()),
        ("hub_min_degree", (config.hub_min_degree as u64).into()),
        ("probe_ratio", (config.probe_ratio as u64).into()),
    ];
    write_trace_with(path, telemetry, &meta)
}

/// Lower-level trace writer for commands whose meta is not the standard
/// (graph, params, threads) triple — index build/query runs.
fn write_trace_with(path: &str, telemetry: &Telemetry, meta: &[(&str, MetaValue)]) -> CmdResult {
    let report = telemetry
        .report()
        .ok_or("internal: telemetry handle was not enabled")?;
    std::fs::write(path, report.to_json(meta)).map_err(|e| format!("write {path}: {e}"))?;
    println!("trace       {path}");
    Ok(())
}

fn write_labels(path: &str, c: &Clustering) -> CmdResult {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vertex cluster role").map_err(|e| e.to_string())?;
    for (v, (&l, &r)) in c.labels.iter().zip(&c.roles).enumerate() {
        let label = if l == NOISE {
            "-".to_string()
        } else {
            l.to_string()
        };
        writeln!(w, "{v} {label} {r:?}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

pub fn explore(opts: &Options) -> CmdResult {
    // Only aggregate counts are reported, so the permutation is not needed.
    let (g, _perm) = load_graph_reordered(opts)?;
    let threads: usize = opts.get_or("threads", 1)?;
    let eps_grid = opts
        .get_list::<f64>("eps")?
        .unwrap_or_else(|| vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
    let mu_grid = opts.get_list::<usize>("mu")?.unwrap_or_else(|| vec![5]);
    let start = Instant::now();
    let ex = EpsilonExplorer::new(&g, threads);
    println!(
        "precomputed {} edge similarities in {:?}\n",
        ex.num_edges(),
        start.elapsed()
    );
    println!(
        "{:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "eps", "mu", "clusters", "cores", "borders", "noise", "largest"
    );
    for &mu in &mu_grid {
        for &eps in &eps_grid {
            let p = ex.summarize(ScanParams::new(eps, mu));
            println!(
                "{:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9}",
                eps, mu, p.clusters, p.cores, p.borders, p.noise, p.largest_cluster
            );
        }
    }
    Ok(())
}

pub fn hierarchy(opts: &Options) -> CmdResult {
    let (g, perm) = load_graph_reordered(opts)?;
    let mu: usize = opts.get_or("mu", 5)?;
    let threads: usize = opts.get_or("threads", 1)?;
    let start = Instant::now();
    let h = EpsilonHierarchy::build(&g, mu, threads);
    println!(
        "hierarchy built in {:?}: {} merge events (mu = {})",
        start.elapsed(),
        h.merges().len(),
        h.mu()
    );
    let grid = opts
        .get_list::<f64>("eps")?
        .unwrap_or_else(|| (1..=9).map(|i| i as f64 / 10.0).collect());
    let counts = h.cluster_counts(&grid);
    println!("{:>6} {:>9}", "eps", "clusters");
    for (e, c) in grid.iter().zip(&counts) {
        println!("{e:>6} {c:>9}");
    }
    // Show the top of the dendrogram.
    println!(
        "
first merges (highest ε):"
    );
    for m in h.merges().iter().take(opts.get_or("top", 10)?) {
        println!(
            "  eps={:.4}: {} -- {}",
            m.epsilon,
            perm.old_of_new(m.u),
            perm.old_of_new(m.v)
        );
    }
    Ok(())
}

/// Reads a serialized similarity index (`.asix`) from `path`.
fn load_index(path: &str) -> Result<SimilarityIndex, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_index(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

pub fn index_build(opts: &Options) -> CmdResult {
    let (g, _perm) = load_graph_reordered(opts)?;
    let threads: usize = opts.get_or("threads", 1)?;
    let out = opts.get_str("out").ok_or("missing --out FILE")?;
    let trace_path = opts.get_str("trace-json");
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let (smode, srows, sbits) = sketch_options(opts)?;
    let build_opts = IndexBuildOptions {
        sketch: smode,
        sketch_rows: srows,
        sketch_bits: sbits,
        seed: opts.get_or("seed", 0x5CA7)?,
        probe_ratio: probe_ratio(opts)?,
    };
    let start = Instant::now();
    // The ASIX file records the reorder mode so `index query` can re-derive
    // the same relabeling from the original graph.
    let idx = SimilarityIndex::build_with_options(&g, threads, build_opts, &telemetry)
        .with_reorder(reorder_mode(opts)?);
    let build_time = start.elapsed();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_index(&idx, BufWriter::new(file)).map_err(|e| format!("write {out}: {e}"))?;
    println!("build time  {build_time:?}");
    println!("vertices    {}", idx.num_vertices());
    println!("arcs        {}", idx.num_arcs());
    println!("mu max      {}", idx.mu_max());
    println!("sigma mode  {smode}");
    println!("index       {out}");
    if let Some(path) = trace_path {
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (g.num_vertices() as u64).into()),
            ("edges", g.num_edges().into()),
            ("mu_max", (idx.mu_max() as u64).into()),
            ("threads", (threads as u64).into()),
            ("sketch", smode.as_str().into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    Ok(())
}

pub fn index_query(opts: &Options) -> CmdResult {
    let idx_path = opts.get_str("index").ok_or("missing --index FILE")?;
    let idx = load_index(idx_path)?;
    // `--sketch approx` answers from the ASIX file alone: no graph is
    // loaded, no adjacency touched — noise is split into hubs and outliers
    // from the index's own neighbor orders (identical result, see
    // `SimilarityIndex::query_offline`).
    let offline = sketch_mode(opts)? == SketchMode::Approx;
    let graph: Option<(CsrGraph, VertexPermutation)> = if offline {
        if opts.get_str("labels-out").is_some() && idx.reorder() != ReorderMode::None {
            return Err(format!(
                "--labels-out needs the graph to map {} ids back; drop --sketch approx or pass --input/--dataset",
                idx.reorder()
            ));
        }
        println!("offline query: answering from {idx_path} without the graph");
        None
    } else {
        // Re-derive the relabeling the index was built under (deterministic
        // for a given graph + mode), so arc order lines up with the stored
        // rows.
        let (g, perm) = apply_reorder(load_graph(opts)?, idx.reorder());
        idx.check_graph(&g)
            .map_err(|e| format!("--index {idx_path}: {e}"))?;
        Some((g, perm))
    };
    let eps_grid = opts.get_list::<f64>("eps")?.ok_or("missing --eps")?;
    let mu_grid = opts.get_list::<usize>("mu")?.ok_or("missing --mu")?;
    for &eps in &eps_grid {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(format!("--eps must be in (0,1], got {eps}"));
        }
    }
    if mu_grid.contains(&0) {
        return Err("--mu must be >= 1".into());
    }
    let trace_path = opts.get_str("trace-json");
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    println!(
        "{:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "eps", "mu", "clusters", "cores", "borders", "hubs", "outliers", "latency"
    );
    let mut queries = 0u64;
    let mut last: Option<(ScanParams, Clustering)> = None;
    for &mu in &mu_grid {
        for &eps in &eps_grid {
            let params = ScanParams::new(eps, mu);
            let t0 = Instant::now();
            let c = match &graph {
                Some((g, _)) => idx.query_traced(g, params, &telemetry),
                None => idx.query_offline_traced(params, &telemetry),
            };
            let latency = t0.elapsed();
            let rc = c.role_counts();
            println!(
                "{:>6} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
                eps,
                mu,
                c.num_clusters(),
                rc.cores,
                rc.borders,
                rc.hubs,
                rc.outliers,
                format!("{latency:?}")
            );
            queries += 1;
            last = Some((params, c));
        }
    }
    if let Some(path) = opts.get_str("labels-out") {
        let (_, c) = last.as_ref().ok_or("no queries ran")?;
        let c = match &graph {
            Some((_, perm)) => to_original_ids(c.clone(), perm),
            // Offline: reorder was checked to be None above, so labels are
            // already in original vertex ids.
            None => c.clone(),
        };
        write_labels(path, &c)?;
        println!("labels written to {path} (last query)");
    }
    if let Some(path) = trace_path {
        let (params, _) = last.as_ref().ok_or("no queries ran")?;
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (idx.num_vertices() as u64).into()),
            ("edges", idx.num_edges().into()),
            ("epsilon", params.epsilon.into()),
            ("mu", (params.mu as u64).into()),
            ("queries", queries.into()),
            ("sketch", idx.sketch_mode().as_str().into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    Ok(())
}

/// `interactive --index FILE`: answer the (ε, μ) request straight from a
/// prebuilt similarity index instead of stepping the anytime driver.
fn interactive_indexed(opts: &Options, idx_path: &str) -> CmdResult {
    let idx = load_index(idx_path)?;
    let (g, perm) = apply_reorder(load_graph(opts)?, idx.reorder());
    idx.check_graph(&g)
        .map_err(|e| format!("--index {idx_path}: {e}"))?;
    let params = scan_params(opts)?;
    let trace_path = opts.get_str("trace-json");
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let t0 = Instant::now();
    let c = to_original_ids(idx.query_traced(&g, params, &telemetry), &perm);
    let latency = t0.elapsed();
    let rc = c.role_counts();
    println!(
        "indexed fast-path: (eps={}, mu={}) answered in {latency:?}",
        params.epsilon, params.mu
    );
    println!(
        "final: {} clusters, {} cores, {} borders, {} hubs, {} outliers",
        c.num_clusters(),
        rc.cores,
        rc.borders,
        rc.hubs,
        rc.outliers
    );
    if let Some(path) = trace_path {
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (g.num_vertices() as u64).into()),
            ("edges", g.num_edges().into()),
            ("epsilon", params.epsilon.into()),
            ("mu", (params.mu as u64).into()),
            ("queries", 1u64.into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    if let Some(path) = opts.get_str("labels-out") {
        write_labels(path, &c)?;
        println!("labels written to {path}");
    }
    Ok(())
}

pub fn interactive(opts: &Options) -> CmdResult {
    if let Some(idx_path) = opts.get_str("index") {
        return interactive_indexed(opts, idx_path);
    }
    let (g, _perm) = load_graph_reordered(opts)?;
    let params = scan_params(opts)?;
    let checkpoint = std::time::Duration::from_millis(opts.get_or("checkpoint-ms", 100)?);
    let threads: usize = opts.get_or("threads", 1)?;
    let trace_path = opts.get_str("trace-json");
    let config = apply_tuning(
        opts,
        AnyScanConfig::new(params)
            .with_auto_block_size(g.num_vertices())
            .with_threads(threads)
            .with_reorder(reorder_mode(opts)?),
    )?;
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let ctl = run_control(opts)?;
    let ckpt_path = opts.get_str("checkpoint");
    let mut algo = AnyScan::new(&g, config).with_telemetry(telemetry.clone());
    let mut next = checkpoint;
    println!(
        "clustering {} vertices / {} edges; checkpoint every {checkpoint:?}",
        g.num_vertices(),
        g.num_edges()
    );
    while algo.phase() != Phase::Done {
        if let Some(reason) = ctl.check(algo.blocks_executed()) {
            let partial = algo.partial();
            let rc = partial.clustering.role_counts();
            eprintln!(
                "stopped early ({}) in phase {:?} after {} blocks: clusters={} cores={} unclassified={}",
                reason.label(),
                partial.phase,
                partial.blocks,
                partial.clustering.num_clusters(),
                rc.cores,
                rc.unclassified
            );
            if let Some(path) = ckpt_path {
                algo.checkpoint()
                    .save(Path::new(path))
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "checkpoint saved; continue with: anyscan resume --checkpoint {path} ..."
                );
            }
            return Ok(());
        }
        algo.step();
        if algo.cumulative_time() >= next || algo.phase() == Phase::Done {
            next += checkpoint;
            let snap = algo.snapshot();
            let rc = snap.role_counts();
            println!(
                "[{:>10?}] {:?}: clusters={} cores={} unclassified={}",
                algo.cumulative_time(),
                algo.phase(),
                snap.num_clusters(),
                rc.cores,
                rc.unclassified
            );
        }
    }
    let result = algo.result();
    println!(
        "final: {} clusters, {} σ evaluations ({} cache hits), unions {:?}",
        result.num_clusters(),
        algo.stats().sigma_evals,
        algo.stats().cache_hits,
        algo.union_breakdown()
    );
    if let Some(path) = trace_path {
        write_trace(path, &telemetry, &g, &config)?;
    }
    // Sanity: the batch entry point agrees (not under approx sketches,
    // where the run intentionally diverges from the exact baseline).
    if config.sketch != SketchMode::Approx {
        debug_assert_eq!(
            anyscan(&g, params).clustering.num_clusters(),
            result.num_clusters()
        );
    }
    Ok(())
}

/// `serve --index FILE.asix`: the clustering-as-a-service daemon. Loads the
/// graph + index once, then answers concurrent protocol requests until
/// SIGINT or a `Shutdown` request drains it (see DESIGN.md §12). With
/// `--dynamic` the daemon also accepts `ApplyUpdates` write batches,
/// repairing the resident index in place and swapping epochs under
/// concurrent readers (DESIGN.md §13); `--update-log FILE.asul` makes the
/// mutations durable (an existing log is replayed on startup).
pub fn serve(opts: &Options) -> CmdResult {
    let idx_path = opts.get_str("index").ok_or("missing --index FILE")?;
    let idx = load_index(idx_path)?;
    // Same relabeling contract as `index query`: re-derive the reorder the
    // index was built under; responses map back to original vertex ids.
    let (g, perm) = apply_reorder(load_graph(opts)?, idx.reorder());
    let conn_timeout_ms: u64 = opts.get_or("conn-timeout-ms", 0)?;
    let config = ServerConfig {
        threads: opts.get_or("threads", 1)?,
        max_inflight: opts.get_or("max-inflight", 4)?,
        queue_depth: opts.get_or("queue-depth", 16)?,
        cache_entries: opts.get_or("cache-entries", 16)?,
        conn_timeout: (conn_timeout_ms > 0).then(|| Duration::from_millis(conn_timeout_ms)),
    };
    let trace_path = opts.get_str("trace-json");
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let server = if opts.switch("dynamic") {
        let mut engine = DynamicIndex::from_parts(&g, idx, config.threads)
            .map_err(|e| format!("--dynamic: {e}"))?;
        let log = match opts.get_str("update-log") {
            Some(raw) => {
                let path = std::path::PathBuf::from(raw);
                let log = if path.exists() {
                    let log =
                        UpdateLog::load(&path).map_err(|e| format!("--update-log {raw}: {e}"))?;
                    if log.base() != GraphStamp::of(&g) {
                        return Err(format!(
                            "--update-log {raw}: log was recorded against a different base graph"
                        ));
                    }
                    for chunk in log.entries().chunks(256) {
                        engine
                            .apply_batch(chunk, &telemetry)
                            .map_err(|e| format!("--update-log {raw}: replay: {e}"))?;
                    }
                    println!(
                        "replayed {} logged updates (watermark {})",
                        log.entries().len(),
                        log.applied_seq()
                    );
                    log
                } else {
                    UpdateLog::new(&g)
                };
                Some((log, path))
            }
            None => None,
        };
        std::sync::Arc::new(
            Server::new_dynamic(engine, log, config, telemetry.clone())
                .map_err(|e| format!("--dynamic: {e}"))?,
        )
    } else {
        std::sync::Arc::new(
            Server::new(g, perm, idx, config, telemetry.clone())
                .map_err(|e| format!("--index {idx_path}: {e}"))?,
        )
    };
    // Replication role. `--promote` on a restart: a replica's operator
    // brings its daemon back as the writable primary — the term bump is
    // durable (persisted into the ASUL header) so the deposed primary's
    // frames are fenced even across this restart.
    let replica_of = opts.get_str("replica-of");
    if opts.switch("promote") {
        if replica_of.is_some() {
            return Err("--promote and --replica-of are mutually exclusive".into());
        }
        if !server.is_dynamic() {
            return Err("--promote needs --dynamic".into());
        }
        server.become_replica("");
        match server.promote() {
            anyscan_serve::Response::Promoted { term, .. } => {
                println!("promoted: serving as primary at term {term}");
            }
            other => return Err(format!("--promote failed: {other:?}")),
        }
    }
    let feed = match replica_of {
        Some(primary) => {
            if !server.is_dynamic() {
                return Err("--replica-of needs --dynamic".into());
            }
            server.become_replica(primary);
            Some(anyscan_serve::run_replica_feed(
                std::sync::Arc::clone(&server),
                anyscan_serve::ReplicaFeedConfig::new(primary),
            ))
        }
        None => None,
    };
    println!(
        "serving {} vertices / {} edges from {idx_path}{}{} \
         ({} in flight, {} queued, cache {})",
        server.num_vertices(),
        server.num_edges(),
        if server.is_dynamic() {
            " [dynamic]"
        } else {
            ""
        },
        match replica_of {
            Some(primary) => format!(" [replica of {primary}, term {}]", server.term()),
            None => format!(" [term {}]", server.term()),
        },
        config.max_inflight,
        config.queue_depth,
        config.cache_entries
    );
    crate::sigint::install();
    let ctl = RunControl::new().with_interrupt_flag(crate::sigint::flag());
    let listener = match opts.get_str("socket") {
        Some(path) => {
            #[cfg(unix)]
            {
                println!("listening on unix:{path}");
                Listener::bind_unix(path).map_err(|e| format!("bind {path}: {e}"))?
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("--socket needs a unix platform; use --listen HOST:PORT".into());
            }
        }
        None => {
            let addr = opts.get_str("listen").unwrap_or("127.0.0.1:7411");
            let (listener, local) =
                Listener::bind_tcp(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            println!("listening on {local}");
            listener
        }
    };
    server
        .serve(listener, &ctl)
        .map_err(|e| format!("serve: {e}"))?;
    if let Some(feed) = feed {
        // The feed notices the drain within its read-timeout tick.
        let _ = feed.join();
    }
    let stats = server.stats();
    println!(
        "drained: {} requests ({} queries, {} lookups, {} runs, \
         {} update batches, {} overloaded, {} protocol errors, {} timeouts)",
        stats.requests,
        stats.queries,
        stats.lookups,
        stats.runs,
        stats.updates,
        stats.overloaded,
        stats.protocol_errors,
        stats.timeouts
    );
    if let Some(path) = trace_path {
        telemetry.add(Counter::FaultsInjected, anyscan_faults::injected());
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (server.num_vertices() as u64).into()),
            ("edges", server.num_edges().into()),
            ("requests", stats.requests.into()),
            ("overloaded", stats.overloaded.into()),
            ("protocol_errors", stats.protocol_errors.into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    Ok(())
}

/// Endpoint list from `--connect a,b,c` / `--socket PATH` (default
/// 127.0.0.1:7411), shared by `probe` and `promote`.
fn client_endpoints(opts: &Options) -> Result<Vec<anyscan_client::Endpoint>, String> {
    if let Some(path) = opts.get_str("socket") {
        return Ok(vec![anyscan_client::Endpoint::Unix(path.to_string())]);
    }
    anyscan_client::Endpoint::parse_list(opts.get_str("connect").unwrap_or("127.0.0.1:7411"))
}

/// `probe`: pings every listed endpoint and prints one health line each —
/// role, term, epoch, durable watermark, admission pressure, cumulative
/// counters. Exit is an error only if *no* endpoint answered, so the
/// command doubles as a liveness check for a degraded group.
pub fn probe(opts: &Options) -> CmdResult {
    use anyscan_serve::protocol::server_role_name;
    let endpoints = client_endpoints(opts)?;
    let mut client = anyscan_client::Client::new(anyscan_client::ClientConfig {
        request_timeout: Some(Duration::from_millis(opts.get_or("timeout-ms", 2000u64)?)),
        retry: anyscan_client::RetryPolicy {
            attempts: 1,
            ..Default::default()
        },
        ..anyscan_client::ClientConfig::new(endpoints.clone())
    })
    .map_err(|e| e.to_string())?;
    let mut alive = 0usize;
    for endpoint in &endpoints {
        match client.probe(endpoint) {
            Ok(anyscan_serve::Response::Ping(h)) => {
                alive += 1;
                println!(
                    "{endpoint}: {} term {} epoch {} watermark {} \
                     inflight {} queued {} requests {} errors {} timeouts {}",
                    server_role_name(h.role).unwrap_or("unknown"),
                    h.term,
                    h.epoch,
                    h.watermark,
                    h.inflight,
                    h.queued,
                    h.stats.requests,
                    h.stats.protocol_errors,
                    h.stats.timeouts
                );
            }
            Ok(other) => println!("{endpoint}: unexpected answer {other:?}"),
            Err(e) => println!("{endpoint}: unreachable ({e})"),
        }
    }
    if alive == 0 {
        return Err("no endpoint answered".into());
    }
    Ok(())
}

/// `promote`: asks one daemon to become the writable primary. The bumped
/// term (printed) fences the deposed primary's replication frames.
pub fn promote(opts: &Options) -> CmdResult {
    let endpoints = client_endpoints(opts)?;
    if endpoints.len() != 1 {
        return Err("promote targets exactly one endpoint".into());
    }
    let mut client =
        anyscan_client::Client::connect(endpoints[0].clone()).map_err(|e| e.to_string())?;
    match client
        .call(&anyscan_serve::protocol::Request::Promote)
        .map_err(|e| e.to_string())?
    {
        anyscan_serve::Response::Promoted {
            term,
            epoch,
            watermark,
        } => {
            println!(
                "{} is primary at term {term} (epoch {epoch}, watermark {watermark})",
                endpoints[0]
            );
            Ok(())
        }
        anyscan_serve::Response::Error { code, message } => {
            Err(format!("promote refused: {} ({message})", code.label()))
        }
        other => Err(format!("unexpected answer {other:?}")),
    }
}

/// `mutate`: generates a random edge-update trace against the input graph,
/// applies it through the incremental engine, and writes the ASUL log (plus,
/// optionally, the mutated graph). The trace is the input for `replay`, the
/// loadgen `update:N` mix, and the CI dynamic-smoke job.
pub fn mutate(opts: &Options) -> CmdResult {
    use rand::Rng;
    let g = load_graph(opts)?;
    let n = g.num_vertices() as u32;
    if n < 2 {
        return Err("mutate needs a graph with at least 2 vertices".into());
    }
    let total: u64 = opts.get_or("updates", 200)?;
    let batch: usize = opts.get_or("batch", 32)?;
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }
    let threads: usize = opts.get_or("threads", 1)?;
    let seed: u64 = opts.get_or("update-seed", 1)?;
    let trace_out = opts
        .get_str("trace-out")
        .ok_or("missing --trace-out FILE.asul")?;

    // Mostly inserts so the graph grows rather than drains; removes and
    // reweights of absent edges are relaxed no-ops, so blind generation
    // against the evolving edge set is safe.
    let mut rng = StdRng::seed_from_u64(seed);
    let updates: Vec<EdgeUpdate> = (0..total)
        .map(|i| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            let op = match rng.gen_range(0..10u32) {
                0..=5 => EdgeOp::Insert(rng.gen_range(0.05..1.0)),
                6..=7 => EdgeOp::Reweight(rng.gen_range(0.05..1.0)),
                _ => EdgeOp::Remove,
            };
            EdgeUpdate {
                seq: i + 1,
                u,
                v,
                op,
            }
        })
        .collect();

    let telemetry = Telemetry::enabled();
    let mut engine =
        DynamicIndex::new_traced(&g, threads, &telemetry).map_err(|e| e.to_string())?;
    let mut log = UpdateLog::new(&g);
    let mut applied = 0u64;
    let mut skipped = 0u64;
    let mut reevals = 0u64;
    for chunk in updates.chunks(batch) {
        let stats = engine
            .apply_batch(chunk, &telemetry)
            .map_err(|e| e.to_string())?;
        log.append_batch(chunk).map_err(|e| e.to_string())?;
        applied += stats.applied;
        skipped += stats.skipped;
        reevals += stats.sigma_reevals;
    }
    log.save(Path::new(trace_out)).map_err(|e| e.to_string())?;
    println!(
        "applied {applied} updates ({skipped} no-ops) in batches of {batch}: \
         {reevals} σ re-evaluations, watermark {}",
        engine.applied_seq()
    );
    println!("trace       {trace_out}");
    if let Some(out) = opts.get_str("out") {
        let mutated = engine.to_csr().map_err(|e| e.to_string())?;
        let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        if out.ends_with(".bin") {
            write_binary(&mutated, BufWriter::new(file)).map_err(|e| e.to_string())?;
        } else {
            write_edge_list(&mutated, BufWriter::new(file)).map_err(|e| e.to_string())?;
        }
        println!(
            "mutated     {out} ({} vertices / {} edges)",
            mutated.num_vertices(),
            mutated.num_edges()
        );
    }
    if let Some(path) = opts.get_str("trace-json") {
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (g.num_vertices() as u64).into()),
            ("updates", total.into()),
            ("applied", applied.into()),
            ("skipped", skipped.into()),
            ("batch", (batch as u64).into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    Ok(())
}

/// `replay`: re-applies an ASUL update log against its base graph through
/// the incremental engine (fingerprint-checked), then optionally answers an
/// `(eps, mu)` query from the repaired index — the recovery path of the
/// dynamic daemon, runnable standalone.
pub fn replay(opts: &Options) -> CmdResult {
    let trace = opts.get_str("trace").ok_or("missing --trace FILE.asul")?;
    let g = load_graph(opts)?;
    let threads: usize = opts.get_or("threads", 1)?;
    let batch: usize = opts.get_or("batch", 256)?;
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }
    let telemetry = Telemetry::enabled();
    let log = UpdateLog::load(Path::new(trace)).map_err(|e| format!("--trace {trace}: {e}"))?;
    let start = Instant::now();
    let engine = log
        .replay(&g, threads, batch, &telemetry)
        .map_err(|e| format!("--trace {trace}: {e}"))?;
    println!(
        "replayed {} updates in {:?} (batches of {batch}, watermark {})",
        log.entries().len(),
        start.elapsed(),
        engine.applied_seq()
    );
    if opts.get_str("eps").is_some() || opts.get_str("mu").is_some() {
        let params = scan_params(opts)?;
        let c = engine.query_traced(params, &telemetry);
        let rc = c.role_counts();
        println!(
            "query (eps={}, mu={}): {} clusters, {} cores, {} outliers",
            params.epsilon,
            params.mu,
            c.num_clusters(),
            rc.cores,
            rc.outliers
        );
        if let Some(path) = opts.get_str("labels-out") {
            write_labels(path, &c)?;
            println!("labels      {path}");
        }
    }
    if let Some(path) = opts.get_str("trace-json") {
        let meta: Vec<(&str, MetaValue)> = vec![
            ("vertices", (g.num_vertices() as u64).into()),
            ("updates", (log.entries().len() as u64).into()),
            ("watermark", log.applied_seq().into()),
            ("batch", (batch as u64).into()),
        ];
        write_trace_with(path, &telemetry, &meta)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_ids_parse() {
        assert_eq!(parse_dataset_id("gr01").unwrap(), DatasetId::Gr01);
        assert_eq!(parse_dataset_id("GR05").unwrap(), DatasetId::Gr05);
        assert_eq!(parse_dataset_id("lfr13").unwrap(), DatasetId::Lfr(13));
        assert!(parse_dataset_id("LFR07").is_err());
        assert!(parse_dataset_id("bogus").is_err());
    }

    #[test]
    fn scan_params_validation() {
        let o = Options::parse(&["--eps".into(), "1.5".into(), "--mu".into(), "5".into()]).unwrap();
        assert!(scan_params(&o).is_err());
        let o = Options::parse(&["--eps".into(), "0.5".into(), "--mu".into(), "0".into()]).unwrap();
        assert!(scan_params(&o).is_err());
        let o = Options::parse(&["--eps".into(), "0.5".into(), "--mu".into(), "3".into()]).unwrap();
        assert!(scan_params(&o).is_ok());
    }
}
