//! `anyscan` — the command-line face of the workspace.
//!
//! ```text
//! anyscan stats    --input g.txt
//! anyscan generate --kind lfr --n 10000 --avg-degree 20 --out g.bin
//! anyscan cluster  --input g.bin --algo anyscan --eps 0.5 --mu 5
//! anyscan explore  --input g.bin --eps 0.2,0.4,0.6,0.8 --mu 5
//! anyscan interactive --dataset GR02 --eps 0.5 --mu 5 --checkpoint-ms 50
//! anyscan index build --input g.bin --out g.asix --threads 8
//! anyscan index query --input g.bin --index g.asix --eps 0.3,0.5 --mu 5
//! anyscan serve    --input g.bin --index g.asix --listen 127.0.0.1:7411
//! anyscan mutate   --input g.bin --updates 500 --trace-out g.asul --out g2.bin
//! anyscan replay   --input g.bin --trace g.asul --eps 0.5 --mu 5
//! ```

mod args;
mod commands;
mod sigint;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        args::print_usage();
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    // `index` takes a subaction (`build` | `query`) before the flags; peel it
    // off so Options::parse only ever sees `--key value` tokens.
    let sub = if cmd == "index" && argv.first().is_some_and(|t| !t.starts_with("--")) {
        Some(argv.remove(0))
    } else {
        None
    };
    let opts = match args::Options::parse(&argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            args::print_usage();
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "stats" => commands::stats(&opts),
        "generate" => commands::generate(&opts),
        "cluster" => commands::cluster(&opts),
        "explore" => commands::explore(&opts),
        "hierarchy" => commands::hierarchy(&opts),
        "interactive" => commands::interactive(&opts),
        "resume" => commands::resume(&opts),
        "serve" => commands::serve(&opts),
        "probe" => commands::probe(&opts),
        "promote" => commands::promote(&opts),
        "mutate" => commands::mutate(&opts),
        "replay" => commands::replay(&opts),
        "index" => match sub.as_deref() {
            Some("build") => commands::index_build(&opts),
            Some("query") => commands::index_query(&opts),
            Some(other) => Err(format!("unknown index subcommand {other:?} (build|query)")),
            None => Err("index needs a subcommand: build | query".into()),
        },
        "help" | "--help" | "-h" => {
            args::print_usage();
            return;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
