//! The "ideal parallel algorithm" of Fig. 11.
//!
//! The paper benchmarks anySCAN's scalability against an idealized
//! comparator that "only calculates the structural similarities (without
//! optimizations) of all edges of G … and ignore[s] the label propagation
//! process": perfectly parallel, no synchronization, no output. Its speedup
//! curve is the ceiling any real SCAN parallelization could reach.

use anyscan_graph::{CsrGraph, VertexId};
use anyscan_parallel::parallel_reduce_adaptive;
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::ScanParams;

/// What the ideal run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealReport {
    /// Number of σ evaluations performed (= number of undirected edges).
    pub evaluations: u64,
    /// Number of evaluations at or above ε (returned so the computation has
    /// an observable result the optimizer cannot discard).
    pub similar_edges: u64,
}

/// Evaluates σ for every undirected edge with `threads` workers under
/// dynamic scheduling, and nothing else.
pub fn ideal_parallel(g: &CsrGraph, params: ScanParams, threads: usize) -> IdealReport {
    let n = g.num_vertices();
    let accs = parallel_reduce_adaptive(
        threads,
        n,
        || (0u64, 0u64),
        |acc, u| {
            let u = u as VertexId;
            for &v in g.neighbor_ids(u) {
                if v <= u {
                    continue;
                }
                acc.0 += 1;
                if sigma_raw(g, u, v) >= params.epsilon {
                    acc.1 += 1;
                }
            }
        },
    );
    let (evaluations, similar_edges) = accs
        .into_iter()
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
    IdealReport {
        evaluations,
        similar_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluates_every_edge_exactly_once() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = erdos_renyi(&mut rng, 200, 1500, WeightModel::uniform_default());
        for threads in [1, 2, 4] {
            let r = ideal_parallel(&g, ScanParams::paper_defaults(), threads);
            assert_eq!(r.evaluations, g.num_edges());
        }
    }

    #[test]
    fn similar_count_is_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = erdos_renyi(&mut rng, 100, 600, WeightModel::uniform_default());
        let r1 = ideal_parallel(&g, ScanParams::new(0.4, 5), 1);
        let r4 = ideal_parallel(&g, ScanParams::new(0.4, 5), 4);
        assert_eq!(r1, r4);
        assert!(r1.similar_edges <= r1.evaluations);
    }

    #[test]
    fn clique_is_fully_similar() {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let g = GraphBuilder::from_unweighted_edges(6, edges).unwrap();
        let r = ideal_parallel(&g, ScanParams::new(0.5, 2), 2);
        assert_eq!(r.evaluations, 15);
        assert_eq!(r.similar_edges, 15);
    }
}
