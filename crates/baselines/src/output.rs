//! Common output bundle of the batch algorithms.

use anyscan_scan_common::{Clustering, SimStats};

/// What every batch algorithm returns: the clustering plus the similarity
/// accounting Fig. 7 plots.
#[derive(Debug, Clone)]
pub struct AlgoOutput {
    pub clustering: Clustering,
    pub stats: SimStats,
    /// `Union` operations performed (only meaningful for DSU-based
    /// algorithms: pSCAN; Fig. 12 compares it against anySCAN and |V|).
    pub union_ops: u64,
}

impl AlgoOutput {
    /// Bundles a clustering with its counter snapshots.
    pub fn new(clustering: Clustering, stats: SimStats, union_ops: u64) -> Self {
        AlgoOutput {
            clustering,
            stats,
            union_ops,
        }
    }
}
