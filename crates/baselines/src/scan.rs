//! The original SCAN algorithm (Xu et al., KDD 2007), weighted-extended.

use std::collections::VecDeque;

use anyscan_graph::{CsrGraph, VertexId};
use anyscan_scan_common::{Clustering, Kernel, Role, ScanParams, NOISE, UNCLASSIFIED};

use crate::output::AlgoOutput;

/// Runs plain SCAN: breadth-first cluster expansion from core seeds, one
/// full range query per vertex, no similarity optimizations. This is the
/// ground-truth producer for the whole workspace.
pub fn scan(g: &CsrGraph, params: ScanParams) -> AlgoOutput {
    let kernel = Kernel::with_optimizations(g, params, false);
    let clustering = scan_with_kernel(&kernel);
    let stats = kernel.stats();
    AlgoOutput::new(clustering, stats, 0)
}

/// SCAN's control flow over an arbitrary kernel; SCAN-B passes an optimized
/// one (Section III-D) and inherits the identical clustering.
pub fn scan_with_kernel(kernel: &Kernel<'_>) -> Clustering {
    let g = kernel.graph();
    let mu = kernel.params().mu;
    let n = g.num_vertices();
    let mut labels = vec![UNCLASSIFIED; n];
    let mut roles = vec![Role::Unclassified; n];
    // Every vertex receives exactly one range query, tracked here (seeds,
    // expansion fronts and failed seeds all consume theirs).
    let mut queried = vec![false; n];
    let mut next_cluster = 0u32;
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    for seed in 0..n as VertexId {
        if labels[seed as usize] != UNCLASSIFIED {
            continue;
        }
        debug_assert!(!queried[seed as usize]);
        queried[seed as usize] = true;
        let neigh = kernel.eps_neighborhood(seed);
        if neigh.len() < mu {
            // Non-member for now; may be adopted as a border later.
            labels[seed as usize] = NOISE;
            continue;
        }

        // New cluster seeded at a core.
        let c = next_cluster;
        next_cluster += 1;
        labels[seed as usize] = c;
        roles[seed as usize] = Role::Core;
        queue.clear();
        for &x in &neigh {
            if x == seed {
                continue;
            }
            adopt(&mut labels, &mut roles, x, c);
            if !queried[x as usize] {
                queue.push_back(x);
            }
        }

        while let Some(y) = queue.pop_front() {
            if queried[y as usize] {
                continue;
            }
            queried[y as usize] = true;
            let ny = kernel.eps_neighborhood(y);
            if ny.len() < mu {
                roles[y as usize] = Role::Border;
                continue;
            }
            roles[y as usize] = Role::Core;
            for &x in &ny {
                if x == y {
                    continue;
                }
                adopt(&mut labels, &mut roles, x, c);
                if !queried[x as usize] && labels[x as usize] == c {
                    queue.push_back(x);
                }
            }
        }
    }

    let mut clustering = Clustering { labels, roles };
    for v in 0..n {
        if clustering.labels[v] == NOISE || clustering.labels[v] == UNCLASSIFIED {
            clustering.labels[v] = NOISE;
            clustering.roles[v] = Role::Outlier; // refined below
        }
    }
    clustering.classify_noise(g);
    clustering
}

/// Assigns `x` to cluster `c` if it is unclassified or currently parked as
/// noise (a failed seed being adopted as a border).
fn adopt(labels: &mut [u32], roles: &mut [Role], x: VertexId, c: u32) {
    let slot = &mut labels[x as usize];
    if *slot == UNCLASSIFIED || *slot == NOISE {
        *slot = c;
        if roles[x as usize] != Role::Core {
            roles[x as usize] = Role::Border;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::kernel::sigma_raw;

    /// Two 4-cliques joined by one bridge edge (2–4); ε high enough that the
    /// bridge does not merge them.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((2, 4));
        GraphBuilder::from_unweighted_edges(8, edges).unwrap()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let out = scan(&g, ScanParams::new(0.7, 3));
        let c = &out.clustering;
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[0], c.labels[3]);
        assert_eq!(c.labels[4], c.labels[7]);
        assert_ne!(c.labels[0], c.labels[4]);
    }

    #[test]
    fn eval_count_is_two_arcs_per_edge() {
        // Every vertex gets exactly one full range query: total σ evals =
        // Σ_v open_degree(v) = 2|E|.
        let g = two_cliques();
        let out = scan(&g, ScanParams::new(0.7, 3));
        assert_eq!(out.stats.sigma_evals, 2 * g.num_edges());
        assert_eq!(out.stats.lemma5_filtered, 0, "plain SCAN never filters");
    }

    #[test]
    fn isolated_vertices_are_outliers() {
        let g = GraphBuilder::from_unweighted_edges(5, vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        let out = scan(&g, ScanParams::new(0.5, 3));
        let c = &out.clustering;
        assert_eq!(c.labels[3], NOISE);
        assert_eq!(c.labels[4], NOISE);
        assert_eq!(c.roles[3], Role::Outlier);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn failed_seed_becomes_border() {
        // Star center with a pendant: pendant may be seeded first (id order)
        // and parked as noise, then adopted as border of the clique cluster.
        let mut edges = vec![(0u32, 1u32), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)];
        edges.push((3, 4)); // pendant 4
        let g = GraphBuilder::from_unweighted_edges(5, edges).unwrap();
        let params = ScanParams::new(0.55, 3);
        let out = scan(&g, params);
        let c = &out.clustering;
        // Pendant 4: σ(4,3) = 2/sqrt(2·5) ≈ 0.632 ≥ 0.55, so 4 is a border.
        assert!(sigma_raw(&g, 3, 4) >= 0.55);
        assert_eq!(c.roles[4], Role::Border);
        assert_eq!(c.labels[4], c.labels[3]);
    }

    #[test]
    fn mu_one_makes_everything_core() {
        let g = two_cliques();
        let out = scan(&g, ScanParams::new(0.01, 1));
        assert!(out.clustering.roles.iter().all(|&r| r == Role::Core));
        // Low ε, bridge similar: all one cluster.
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn weighted_bridge_can_merge_clusters() {
        // Same two cliques, but give the bridge a dominant weight and use a
        // low ε: the bridge endpoints become ε-similar and merge the cliques.
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        edges.push((2, 4, 1.0));
        let g = GraphBuilder::from_edges(8, edges).unwrap();
        let out = scan(&g, ScanParams::new(0.4, 3));
        assert_eq!(
            out.clustering.num_clusters(),
            1,
            "low ε should merge via the bridge"
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let out = scan(&g, ScanParams::paper_defaults());
        assert!(out.clustering.is_empty());
        assert_eq!(out.stats.sigma_evals, 0);
    }
}
