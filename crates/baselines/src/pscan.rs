//! pSCAN (Chang, Li, Lin, Qin, Zhang — ICDE 2016), weighted-extended.
//!
//! pSCAN's pillars, all reproduced here:
//!
//! * **similar-degree `sd(u)`** (confirmed ε-neighbors, counting `u`) and
//!   **effective-degree `ed(u)`** (upper bound: closed degree minus confirmed
//!   non-neighbors). `sd(u) ≥ μ` certifies a core, `ed(u) < μ` certifies a
//!   non-core, letting many core checks be skipped entirely;
//! * **at-most-once edge evaluation**: every σ verdict is cached on both
//!   arcs and updates the counters of *both* endpoints;
//! * **cores first**: cores are detected and clustered with a disjoint-set
//!   structure (skipping unions already implied — the `Findset` pruning the
//!   paper's Fig. 12 measures), then non-cores are attached as borders.
//!
//! The only simplification vs. Chang et al.: vertices are visited in static
//! non-increasing degree order rather than dynamically re-sorted by `ed`;
//! this is a work heuristic and does not affect exactness (asserted against
//! SCAN in tests).

use anyscan_dsu::DsuSeq;
use anyscan_graph::{CsrGraph, VertexId};
use anyscan_scan_common::{Clustering, Kernel, Role, ScanParams, NOISE};

use crate::edge_cache::{EdgeCache, Verdict};
use crate::output::AlgoOutput;

/// Runs pSCAN.
pub fn pscan(g: &CsrGraph, params: ScanParams) -> AlgoOutput {
    let kernel = Kernel::new(g, params);
    let n = g.num_vertices();
    let mu = params.mu as u32;
    let mut cache = EdgeCache::new(g);
    // sd counts the vertex itself (σ(u,u)=1); ed starts at the closed degree.
    let mut sd: Vec<u32> = vec![1; n];
    let mut ed: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();

    // --- Core detection, densest first ---------------------------------
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for &u in &order {
        check_core(&kernel, &mut cache, &mut sd, &mut ed, mu, u);
    }
    let is_core = |sd: &[u32], v: VertexId| sd[v as usize] >= mu;

    // --- Cluster cores ---------------------------------------------------
    let mut dsu = DsuSeq::new(n);
    for u in 0..n as VertexId {
        if !is_core(&sd, u) {
            continue;
        }
        for &v in g.neighbor_ids(u) {
            if v <= u || !is_core(&sd, v) {
                continue;
            }
            // Findset pruning: an implied union needs no σ evaluation.
            if dsu.same_set(u, v) {
                continue;
            }
            if cache.decide(&kernel, u, v) == Verdict::Similar {
                dsu.union(u, v);
            }
        }
    }

    // --- Attach borders ---------------------------------------------------
    let mut labels = vec![NOISE; n];
    let mut roles = vec![Role::Outlier; n];
    for u in 0..n as VertexId {
        if is_core(&sd, u) {
            labels[u as usize] = dsu.find(u);
            roles[u as usize] = Role::Core;
        }
    }
    for u in 0..n as VertexId {
        if !is_core(&sd, u) {
            continue;
        }
        let cu = labels[u as usize];
        for &v in g.neighbor_ids(u) {
            if v == u || is_core(&sd, v) || labels[v as usize] != NOISE {
                continue;
            }
            if cache.decide(&kernel, u, v) == Verdict::Similar {
                labels[v as usize] = cu;
                roles[v as usize] = Role::Border;
            }
        }
    }

    let mut clustering = Clustering { labels, roles };
    clustering.classify_noise(g);
    let union_ops = dsu.counters().unions;
    AlgoOutput::new(clustering, kernel.stats(), union_ops)
}

/// Decides `u`'s core status, evaluating only unknown-verdict neighbors and
/// stopping as soon as `sd ≥ μ` or `ed < μ`. Every fresh verdict also
/// updates the counters of the opposite endpoint — pSCAN's key sharing.
fn check_core(
    kernel: &Kernel<'_>,
    cache: &mut EdgeCache,
    sd: &mut [u32],
    ed: &mut [u32],
    mu: u32,
    u: VertexId,
) {
    let g = kernel.graph();
    if sd[u as usize] >= mu || ed[u as usize] < mu {
        return;
    }
    for &v in g.neighbor_ids(u) {
        if v == u {
            continue;
        }
        if sd[u as usize] >= mu || ed[u as usize] < mu {
            return;
        }
        if cache.get(g, u, v) != Verdict::Unknown {
            continue; // already folded into sd/ed when first decided
        }
        let verdict = cache.decide(kernel, u, v);
        match verdict {
            Verdict::Similar => {
                sd[u as usize] += 1;
                sd[v as usize] += 1;
            }
            Verdict::Dissimilar => {
                ed[u as usize] -= 1;
                ed[v as usize] -= 1;
            }
            Verdict::Unknown => unreachable!("decide never returns Unknown for adjacent pairs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use anyscan_graph::gen::{erdos_renyi, planted_partition, PlantedPartitionParams, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_scan_on_small_handmade_graph() {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((2, 4));
        let g = GraphBuilder::from_unweighted_edges(8, edges).unwrap();
        for (eps, mu) in [(0.7, 3), (0.4, 3), (0.5, 2), (0.9, 5)] {
            let params = ScanParams::new(eps, mu);
            let a = scan(&g, params);
            let b = pscan(&g, params);
            assert_scan_equivalent(&g, params, &a.clustering, &b.clustering);
        }
    }

    #[test]
    fn matches_scan_on_random_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for m in [80usize, 400, 1500] {
            let g = erdos_renyi(&mut rng, 150, m, WeightModel::uniform_default());
            for (eps, mu) in [(0.3, 3), (0.5, 5), (0.65, 4)] {
                let params = ScanParams::new(eps, mu);
                let a = scan(&g, params);
                let b = pscan(&g, params);
                assert_scan_equivalent(&g, params, &a.clustering, &b.clustering);
            }
        }
    }

    #[test]
    fn uses_far_fewer_evaluations_than_scan() {
        let mut rng = StdRng::seed_from_u64(22);
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 500,
                num_communities: 10,
                p_in: 0.3,
                p_out: 0.01,
                weights: WeightModel::uniform_default(),
            },
        );
        let params = ScanParams::paper_defaults();
        let s = scan(&g, params);
        let p = pscan(&g, params);
        assert!(
            p.stats.sigma_evals * 2 < s.stats.sigma_evals,
            "pSCAN {} vs SCAN {}",
            p.stats.sigma_evals,
            s.stats.sigma_evals
        );
        // At-most-once: evaluations can never exceed the edge count.
        assert!(p.stats.sigma_evals <= g.num_edges());
    }

    #[test]
    fn union_count_is_far_below_vertex_count() {
        let mut rng = StdRng::seed_from_u64(23);
        // Dense, tight communities so cores exist at the chosen ε.
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 600,
                num_communities: 6,
                p_in: 0.5,
                p_out: 0.005,
                weights: WeightModel::Unit,
            },
        );
        let out = pscan(&g, ScanParams::new(0.4, 5));
        assert!(out.union_ops > 0);
        // Exactly (#cores − #core-clusters) unions can ever succeed; the
        // Findset pruning guarantees no more are attempted successfully.
        let cores = out.clustering.role_counts().cores as u64;
        let clusters = out.clustering.num_clusters() as u64;
        assert_eq!(out.union_ops, cores - clusters);
        assert!(out.union_ops < g.num_vertices() as u64);
    }

    #[test]
    fn sd_ed_propagation_skips_core_checks() {
        // In a clique with low ε-threshold, once early vertices confirm
        // similarity the rest are certified by sd alone; total evals stay at
        // most |E| and strictly below 2|E|.
        let mut edges = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                edges.push((a, b));
            }
        }
        let g = GraphBuilder::from_unweighted_edges(12, edges).unwrap();
        let out = pscan(&g, ScanParams::new(0.5, 5));
        assert!(out.stats.sigma_evals <= g.num_edges());
        assert_eq!(out.clustering.num_clusters(), 1);
    }
}
