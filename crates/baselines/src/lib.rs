//! From-scratch implementations of every comparator the paper evaluates
//! against (Section IV):
//!
//! * [`scan`] — the original SCAN of Xu et al. (KDD 2007), extended to
//!   weighted graphs via the shared kernel, with **no** similarity
//!   optimizations: every range query runs the full merge-join, so the
//!   evaluation counts land at ≈ 2|E| as the paper reports.
//! * [`scan_b`] — "SCAN-B", the paper's own baseline: SCAN plus the
//!   Section III-D optimizations (Lemma-5 O(1) filter, early accept/reject).
//! * [`pscan`] — pSCAN of Chang et al. (ICDE 2016): effective/similar
//!   degrees, at-most-once edge evaluation via a verdict cache, cores first.
//! * [`scanpp`] — SCAN++ of Shiokawa et al. (VLDB 2015): two-hop-away
//!   (DTAR) pivot expansion with similarity sharing; reports *true* and
//!   *shared* evaluation counts separately, as Fig. 7 stacks them.
//! * [`ideal`] — the "ideal parallel algorithm" of Fig. 11: evaluates the
//!   structural similarity of every edge with perfect parallelism and does
//!   no label propagation at all; the scalability yardstick.
//!
//! All algorithms produce a [`anyscan_scan_common::Clustering`] and are
//! pairwise exact (asserted by the `exactness` integration suite).

pub mod edge_cache;
pub mod ideal;
pub mod output;
pub mod pscan;
pub mod scan;
pub mod scan_b;
pub mod scanpp;

pub use ideal::{ideal_parallel, IdealReport};
pub use output::AlgoOutput;
pub use pscan::pscan;
pub use scan::scan;
pub use scan_b::scan_b;
pub use scanpp::scanpp;
