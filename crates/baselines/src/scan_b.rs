//! SCAN-B: SCAN with the Section III-D optimizations.
//!
//! The paper introduces SCAN-B as "an extension of SCAN using optimization
//! techniques described in Section III-D" and finds it surprisingly
//! competitive on sparse graphs and high ε, where Lemma 5 filters out most
//! similarity evaluations. The control flow is byte-for-byte SCAN's
//! ([`crate::scan::scan_with_kernel`]); only the kernel differs.

use anyscan_graph::CsrGraph;
use anyscan_scan_common::{Kernel, ScanParams};

use crate::output::AlgoOutput;
use crate::scan::scan_with_kernel;

/// Runs SCAN-B (SCAN + Lemma-5 filter + early accept/reject).
pub fn scan_b(g: &CsrGraph, params: ScanParams) -> AlgoOutput {
    let kernel = Kernel::with_optimizations(g, params, true);
    let clustering = scan_with_kernel(&kernel);
    let stats = kernel.stats();
    AlgoOutput::new(clustering, stats, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_clustering_to_scan_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for m in [50usize, 200, 800] {
            let g = erdos_renyi(&mut rng, 120, m, WeightModel::uniform_default());
            for (eps, mu) in [(0.3, 3), (0.5, 5), (0.7, 2)] {
                let params = ScanParams::new(eps, mu);
                let a = scan(&g, params);
                let b = scan_b(&g, params);
                assert_scan_equivalent(&g, params, &a.clustering, &b.clustering);
            }
        }
    }

    #[test]
    fn filter_saves_work_on_skewed_degrees() {
        // Lemma 5 fires when degrees are badly mismatched (σ̂ is the
        // min-degree bound): a hub with many pendant leaves is the canonical
        // case — and the paper's power-law graphs are full of them.
        let mut b = anyscan_graph::GraphBuilder::new(104);
        for leaf in 1..100u32 {
            b.add_edge(0, leaf, 1.0);
        }
        // A small clique so clusters exist.
        for a in 100..104u32 {
            for c in (a + 1)..104 {
                b.add_edge(a, c, 1.0);
            }
        }
        let g = b.build();
        let params = ScanParams::new(0.8, 3);
        let plain = scan(&g, params);
        let opt = scan_b(&g, params);
        assert!(
            opt.stats.sigma_evals < plain.stats.sigma_evals,
            "SCAN-B should evaluate fewer σ: {} vs {}",
            opt.stats.sigma_evals,
            plain.stats.sigma_evals
        );
        assert!(opt.stats.lemma5_filtered > 0, "Lemma-5 filter never fired");
        assert_scan_equivalent(&g, params, &plain.clustering, &opt.clustering);
    }
}
