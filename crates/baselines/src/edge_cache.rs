//! At-most-once edge similarity evaluation.
//!
//! pSCAN's central invariant is that the structural similarity of each edge
//! is computed **at most once** (Chang et al., §3): verdicts are cached per
//! CSR arc, and looking up the mirror arc costs one binary search. SCAN++'s
//! phase 2 reuses the same cache for its pivot-seeded verdicts.

use anyscan_graph::{CsrGraph, VertexId};
use anyscan_scan_common::Kernel;

/// Three-valued verdict per arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Unknown,
    Similar,
    Dissimilar,
}

/// Per-arc verdict cache aligned with the CSR arc arrays.
#[derive(Debug)]
pub struct EdgeCache {
    verdicts: Vec<Verdict>,
}

impl EdgeCache {
    /// All-unknown cache for `g`.
    pub fn new(g: &CsrGraph) -> Self {
        EdgeCache {
            verdicts: vec![Verdict::Unknown; g.num_arcs()],
        }
    }

    /// Cached verdict of the arc `(u, v)`; `Unknown` if never evaluated or
    /// if the vertices are not adjacent.
    pub fn get(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Verdict {
        match g.neighbor_ids(u).binary_search(&v) {
            Ok(local) => self.verdicts[Self::global_offset(g, u) + local],
            Err(_) => Verdict::Unknown,
        }
    }

    /// Decides `σ(u,v) ≥ ε`, consulting the cache first and recording the
    /// verdict on both arcs. Returns the (possibly cached) verdict.
    pub fn decide(&mut self, kernel: &Kernel<'_>, u: VertexId, v: VertexId) -> Verdict {
        let g = kernel.graph();
        let off_u = Self::global_offset(g, u);
        let Some(iu) = g.neighbor_ids(u).binary_search(&v).ok() else {
            return Verdict::Unknown;
        };
        let cached = self.verdicts[off_u + iu];
        if cached != Verdict::Unknown {
            return cached;
        }
        let verdict = if kernel.is_eps_neighbor(u, v) {
            Verdict::Similar
        } else {
            Verdict::Dissimilar
        };
        self.verdicts[off_u + iu] = verdict;
        if let Ok(iv) = g.neighbor_ids(v).binary_search(&u) {
            self.verdicts[Self::global_offset(g, v) + iv] = verdict;
        }
        verdict
    }

    /// Records an externally computed verdict for both arc directions.
    pub fn record(&mut self, g: &CsrGraph, u: VertexId, v: VertexId, similar: bool) {
        let verdict = if similar {
            Verdict::Similar
        } else {
            Verdict::Dissimilar
        };
        if let Ok(iu) = g.neighbor_ids(u).binary_search(&v) {
            self.verdicts[Self::global_offset(g, u) + iu] = verdict;
        }
        if let Ok(iv) = g.neighbor_ids(v).binary_search(&u) {
            self.verdicts[Self::global_offset(g, v) + iv] = verdict;
        }
    }

    /// Number of arcs whose verdict is known.
    pub fn decided_arcs(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|&&v| v != Verdict::Unknown)
            .count()
    }

    #[inline]
    fn global_offset(g: &CsrGraph, u: VertexId) -> usize {
        g.arc_range(u).start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::ScanParams;

    fn triangle() -> anyscan_graph::CsrGraph {
        GraphBuilder::from_unweighted_edges(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn decide_caches_both_directions() {
        let g = triangle();
        let kernel = Kernel::new(&g, ScanParams::new(0.5, 2));
        let mut cache = EdgeCache::new(&g);
        assert_eq!(cache.get(&g, 0, 1), Verdict::Unknown);
        let v1 = cache.decide(&kernel, 0, 1);
        assert_eq!(v1, Verdict::Similar);
        let evals_after_first = kernel.stats().sigma_evals;
        // Mirror direction must hit the cache: no new evaluation.
        let v2 = cache.decide(&kernel, 1, 0);
        assert_eq!(v2, Verdict::Similar);
        assert_eq!(kernel.stats().sigma_evals, evals_after_first);
        assert_eq!(cache.decided_arcs(), 2);
    }

    #[test]
    fn record_stores_external_verdicts() {
        let g = triangle();
        let mut cache = EdgeCache::new(&g);
        cache.record(&g, 1, 2, false);
        assert_eq!(cache.get(&g, 2, 1), Verdict::Dissimilar);
        assert_eq!(cache.get(&g, 1, 2), Verdict::Dissimilar);
    }

    #[test]
    fn non_adjacent_pairs_are_unknown() {
        let g = GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        let kernel = Kernel::new(&g, ScanParams::new(0.5, 2));
        let mut cache = EdgeCache::new(&g);
        assert_eq!(cache.decide(&kernel, 0, 2), Verdict::Unknown);
        assert_eq!(kernel.stats().sigma_evals, 0);
    }

    #[test]
    fn self_loop_arcs_work() {
        let g = triangle();
        let kernel = Kernel::new(&g, ScanParams::new(0.5, 2));
        let mut cache = EdgeCache::new(&g);
        // σ(v,v) = 1 ≥ ε always.
        assert_eq!(cache.decide(&kernel, 0, 0), Verdict::Similar);
    }
}
