//! SCAN++ (Shiokawa, Fujiwara, Onizuka — VLDB 2015), weighted-extended.
//!
//! SCAN++ exploits the two-hop structure of real graphs: it selects a set of
//! **pivots** by repeatedly taking an uncovered vertex, computing its full
//! ε-neighborhood (a *true* similarity evaluation per neighbor), and
//! enqueueing its directly two-hop-away reachable vertices (DTAR) as the
//! next pivot candidates. Because adjacent vertices share pivots, the
//! verdicts bought by pivot queries seed the core checks of everyone else —
//! the *similarity sharing* whose count Fig. 7 stacks on top of the true
//! evaluations.
//!
//! Faithfulness note (also in DESIGN.md): Shiokawa et al. infer shared
//! similarity through set arithmetic on pivot neighborhoods; we realize the
//! same reuse through the per-arc verdict cache, and classify every σ
//! evaluation performed *after* pivot selection as a sharing evaluation.
//! The result is exact (asserted against SCAN); the two counter classes
//! reproduce the figure's stacking and its correlation with the number of
//! cores.

use std::collections::VecDeque;

use anyscan_dsu::DsuSeq;
use anyscan_graph::{CsrGraph, VertexId};
use anyscan_scan_common::{Clustering, Kernel, Role, ScanParams, SimStats, NOISE};

use crate::edge_cache::{EdgeCache, Verdict};
use crate::output::AlgoOutput;

/// Runs SCAN++.
pub fn scanpp(g: &CsrGraph, params: ScanParams) -> AlgoOutput {
    let kernel = Kernel::new(g, params);
    let n = g.num_vertices();
    let mu = params.mu as u32;
    let mut cache = EdgeCache::new(g);
    let mut sd: Vec<u32> = vec![1; n];
    let mut ed: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();

    // --- Phase 1: pivot selection by DTAR expansion ----------------------
    // `covered[v]`: v is a pivot or adjacent to one.
    let mut covered = vec![false; n];
    let mut pivots: Vec<VertexId> = Vec::new();
    let mut candidates: VecDeque<VertexId> = VecDeque::new();
    for seed in 0..n as VertexId {
        if covered[seed as usize] {
            continue;
        }
        candidates.push_back(seed);
        while let Some(p) = candidates.pop_front() {
            if covered[p as usize] {
                continue;
            }
            covered[p as usize] = true;
            pivots.push(p);
            // Full neighborhood query at the pivot (true evaluations).
            for &v in g.neighbor_ids(p) {
                if v == p {
                    continue;
                }
                covered[v as usize] = true;
                if cache.get(g, p, v) == Verdict::Unknown {
                    match cache.decide(&kernel, p, v) {
                        Verdict::Similar => {
                            sd[p as usize] += 1;
                            sd[v as usize] += 1;
                        }
                        Verdict::Dissimilar => {
                            ed[p as usize] -= 1;
                            ed[v as usize] -= 1;
                        }
                        Verdict::Unknown => unreachable!(),
                    }
                }
            }
            // DTAR: enqueue uncovered two-hop-away vertices as candidates.
            for &v in g.neighbor_ids(p) {
                if v == p {
                    continue;
                }
                for &w in g.neighbor_ids(v) {
                    if !covered[w as usize] {
                        candidates.push_back(w);
                    }
                }
            }
        }
    }
    let true_evals = kernel.stats().sigma_evals;
    let filtered_after_pivots = kernel.stats().lemma5_filtered;

    // --- Phase 2: core detection seeded by the pivot verdicts -----------
    for u in 0..n as VertexId {
        if sd[u as usize] >= mu || ed[u as usize] < mu {
            continue;
        }
        for &v in g.neighbor_ids(u) {
            if v == u {
                continue;
            }
            if sd[u as usize] >= mu || ed[u as usize] < mu {
                break;
            }
            if cache.get(g, u, v) != Verdict::Unknown {
                continue;
            }
            match cache.decide(&kernel, u, v) {
                Verdict::Similar => {
                    sd[u as usize] += 1;
                    sd[v as usize] += 1;
                }
                Verdict::Dissimilar => {
                    ed[u as usize] -= 1;
                    ed[v as usize] -= 1;
                }
                Verdict::Unknown => unreachable!(),
            }
        }
    }
    let is_core = |sd: &[u32], v: VertexId| sd[v as usize] >= mu;

    // --- Phase 3: connect local clusters over bridge edges ---------------
    let mut dsu = DsuSeq::new(n);
    for u in 0..n as VertexId {
        if !is_core(&sd, u) {
            continue;
        }
        for &v in g.neighbor_ids(u) {
            if v <= u || !is_core(&sd, v) {
                continue;
            }
            if dsu.same_set(u, v) {
                continue;
            }
            if cache.decide(&kernel, u, v) == Verdict::Similar {
                dsu.union(u, v);
            }
        }
    }

    // --- Borders, then hubs/outliers -------------------------------------
    let mut labels = vec![NOISE; n];
    let mut roles = vec![Role::Outlier; n];
    for u in 0..n as VertexId {
        if is_core(&sd, u) {
            labels[u as usize] = dsu.find(u);
            roles[u as usize] = Role::Core;
        }
    }
    for u in 0..n as VertexId {
        if !is_core(&sd, u) {
            continue;
        }
        let cu = labels[u as usize];
        for &v in g.neighbor_ids(u) {
            if v == u || is_core(&sd, v) || labels[v as usize] != NOISE {
                continue;
            }
            if cache.decide(&kernel, u, v) == Verdict::Similar {
                labels[v as usize] = cu;
                roles[v as usize] = Role::Border;
            }
        }
    }
    let mut clustering = Clustering { labels, roles };
    clustering.classify_noise(g);

    // Split the kernel's totals into true (phase 1) vs shared (later).
    let final_stats = kernel.stats();
    let stats = SimStats {
        sigma_evals: true_evals,
        lemma5_filtered: final_stats.lemma5_filtered.max(filtered_after_pivots),
        shared_evals: final_stats.sigma_evals - true_evals,
        ..final_stats
    };
    AlgoOutput::new(clustering, stats, dsu.counters().unions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use anyscan_graph::gen::{erdos_renyi, planted_partition, PlantedPartitionParams, WeightModel};
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_scan_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(31);
        for m in [60usize, 300, 1200] {
            let g = erdos_renyi(&mut rng, 140, m, WeightModel::uniform_default());
            for (eps, mu) in [(0.3, 3), (0.5, 5), (0.7, 2)] {
                let params = ScanParams::new(eps, mu);
                let a = scan(&g, params);
                let b = scanpp(&g, params);
                assert_scan_equivalent(&g, params, &a.clustering, &b.clustering);
            }
        }
    }

    #[test]
    fn pivot_structure_reduces_true_evaluations() {
        let mut rng = StdRng::seed_from_u64(32);
        let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(500, 5));
        let params = ScanParams::paper_defaults();
        let s = scan(&g, params);
        let spp = scanpp(&g, params);
        // SCAN++'s *true* evals must undercut SCAN's total substantially.
        assert!(
            spp.stats.sigma_evals * 2 < s.stats.sigma_evals,
            "true evals {} vs SCAN {}",
            spp.stats.sigma_evals,
            s.stats.sigma_evals
        );
        // Sharing evaluations exist and are reported separately.
        assert!(spp.stats.shared_evals > 0);
    }

    #[test]
    fn total_work_is_bounded_by_edge_count() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = erdos_renyi(&mut rng, 300, 2500, WeightModel::uniform_default());
        let out = scanpp(&g, ScanParams::paper_defaults());
        // At-most-once caching bounds total merge-joins by |E|.
        assert!(out.stats.sigma_evals + out.stats.shared_evals <= g.num_edges());
    }
}
