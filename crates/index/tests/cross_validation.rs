//! Property-based cross-validation: for arbitrary random weighted graphs
//! and parameters, an index `query` must produce a clustering equivalent to
//! a full anySCAN driver run — same cores, identical core partition, same
//! border/noise split, justified border attachments (the Lemma 4 notion of
//! SCAN equivalence) — and identical role-for-role wherever SCAN's own
//! examining-order caveat does not apply.
//!
//! The one legal divergence: a *shared border* (a non-core with similar
//! core ε-neighbors in two or more clusters) may attach to either cluster,
//! which in turn may flip the hub/outlier call of adjacent noise vertices.
//! Everywhere else the comparison is exact.

use std::collections::HashSet;

use anyscan::anyscan;
use anyscan_graph::{CsrGraph, GraphBuilder, VertexId};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Clustering, Role, ScanParams};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    // 8..40 vertices, up to ~120 weighted edges (dense enough for clusters).
    (8usize..40)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..120))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Borders whose similar core ε-neighbors span two or more clusters: the
/// vertices whose attachment (and whose noise neighbors' hub/outlier call)
/// is legitimately order-dependent in SCAN.
fn shared_borders(g: &CsrGraph, params: ScanParams, c: &Clustering) -> HashSet<VertexId> {
    let mut out = HashSet::new();
    for v in 0..g.num_vertices() as VertexId {
        if c.roles[v as usize] != Role::Border {
            continue;
        }
        let mut labels = HashSet::new();
        for &q in g.neighbor_ids(v) {
            if q != v && c.roles[q as usize] == Role::Core && sigma_raw(g, v, q) >= params.epsilon {
                labels.insert(c.labels[q as usize]);
            }
        }
        if labels.len() >= 2 {
            out.insert(v);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_query_matches_driver(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        threads in 1usize..4,
    ) {
        let params = ScanParams::new(eps, mu);
        let driver = anyscan(&g, params).clustering;
        let idx = SimilarityIndex::build(&g, threads);
        let ours = idx.query(&g, params);

        // Lemma 4 equivalence: cores, core partition, border/noise split,
        // justified attachments.
        if let Err(e) = check_scan_equivalent(&g, params, &driver, &ours) {
            prop_assert!(
                false,
                "divergence from driver (eps={eps}, mu={mu}, threads={threads}): {e}"
            );
        }

        // Role-exactness beyond the caveat: Core and Border always agree;
        // hub/outlier agrees unless the vertex touches a shared border
        // (whose attachment may differ between the two runs).
        let ambiguous = shared_borders(&g, params, &driver);
        for v in 0..g.num_vertices() as VertexId {
            let (rd, ri) = (driver.roles[v as usize], ours.roles[v as usize]);
            match rd {
                Role::Core | Role::Border => prop_assert_eq!(rd, ri, "role of vertex {}", v),
                _ => {
                    let near_shared = g
                        .neighbor_ids(v)
                        .iter()
                        .any(|q| ambiguous.contains(q));
                    if !near_shared {
                        prop_assert_eq!(rd, ri, "hub/outlier call of vertex {}", v);
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_one_build(
        g in arb_graph(),
        mu in 1usize..7,
    ) {
        // One build must answer the whole ε sweep exactly: each query is
        // checked against an independent driver run at the same parameters.
        let idx = SimilarityIndex::build(&g, 2);
        for eps in [0.2, 0.45, 0.7, 0.9] {
            let params = ScanParams::new(eps, mu);
            let driver = anyscan(&g, params).clustering;
            let ours = idx.query(&g, params);
            if let Err(e) = check_scan_equivalent(&g, params, &driver, &ours) {
                prop_assert!(false, "divergence at eps={eps}, mu={mu}: {e}");
            }
        }
    }
}
