//! Property-based reorder invariance for the similarity index: building the
//! index on a cache-locality-relabeled graph and mapping query results back
//! through the permutation must match an index built on the graph as-given
//! — exact core label-set equality in original vertex ids, plus Lemma 4
//! equivalence. The serialized form is also round-tripped so the ASIX v3
//! reorder byte is exercised on the same path `anyscan index query` uses.
//!
//! Pairs whose σ sits within 1e-9 of ε are discarded: relabeling changes
//! the summation order inside σ, and an exact-threshold value may flip by
//! an ulp (a float tie, not a clustering bug).

use std::collections::BTreeSet;

use anyscan_graph::reorder::reorder;
use anyscan_graph::{CsrGraph, GraphBuilder, ReorderMode, VertexId};
use anyscan_index::io::{read_index, write_index};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Clustering, Role, ScanParams};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..40)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..120))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

fn has_threshold_tie(g: &CsrGraph, eps: f64, tol: f64) -> bool {
    (0..g.num_vertices() as VertexId).any(|u| {
        g.neighbor_ids(u)
            .iter()
            .any(|&v| v > u && (sigma_raw(g, u, v) - eps).abs() <= tol)
    })
}

fn core_label_sets(c: &Clustering) -> BTreeSet<BTreeSet<VertexId>> {
    let mut by_label = std::collections::HashMap::<u32, BTreeSet<VertexId>>::new();
    for v in 0..c.len() as VertexId {
        if c.roles[v as usize] == Role::Core {
            by_label.entry(c.labels[v as usize]).or_default().insert(v);
        }
    }
    by_label.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_query_invariant_under_reordering(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        threads in 1usize..4,
        mode_idx in 0usize..3,
    ) {
        let mode = ReorderMode::ALL[mode_idx];
        let params = ScanParams::new(eps, mu);
        if has_threshold_tie(&g, eps, 1e-9) {
            continue; // float tie at the ε threshold: verdict may legally flip
        }

        let base = SimilarityIndex::build(&g, threads).query(&g, params);

        // Serialize/deserialize the reordered-graph index exactly as the
        // CLI does, then query with the recorded mode re-applied.
        let (g2, perm) = reorder(&g, mode);
        let idx = SimilarityIndex::build(&g2, threads).with_reorder(mode);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).expect("serialize");
        let idx = read_index(&buf[..]).expect("deserialize");
        prop_assert_eq!(idx.reorder(), mode);
        let (g2_again, perm_again) = reorder(&g, idx.reorder());
        prop_assert_eq!(g2_again.num_edges(), g2.num_edges());
        prop_assert!(perm_again.is_identity() == perm.is_identity());
        idx.check_graph(&g2_again).expect("index/graph mismatch");

        let mut ours = idx.query(&g2_again, params);
        ours.labels = perm.to_original(&ours.labels);
        ours.roles = perm.to_original(&ours.roles);

        prop_assert_eq!(
            core_label_sets(&base),
            core_label_sets(&ours),
            "core partitions differ under {} reordering (eps={}, mu={})",
            mode, eps, mu
        );
        if let Err(e) = check_scan_equivalent(&g, params, &base, &ours) {
            prop_assert!(
                false,
                "divergence under {mode} reordering (eps={eps}, mu={mu}, \
                 threads={threads}): {e}"
            );
        }
    }
}
