//! `anyscan-index` — a GS\*-Index-style similarity index over the weighted
//! σ kernel, for instant (ε, μ) re-clustering.
//!
//! The anySCAN pipeline answers one (ε, μ) point per run; picking
//! parameters therefore costs one full four-step execution per guess. Tseng,
//! Dhulipala and Shun ("Parallel Index-Based Structural Graph Clustering and
//! Its Approximation") observe that the expensive part — every edge's
//! structural similarity — does not depend on (ε, μ) at all, and that two
//! sorted views over those similarities make any query output-sensitive:
//!
//! * **neighbor orders** — per vertex, the closed neighborhood sorted by
//!   descending σ(p, q). The ε-neighborhood `N^ε_p` is then a prefix.
//! * **core orders** — per μ, all vertices of closed degree ≥ μ sorted by
//!   descending *core threshold* `cθ_μ(v)` = the μ-th largest σ in v's
//!   neighbor order. `v` is a core at (ε, μ) iff `cθ_μ(v) ≥ ε`, so the core
//!   set is again a prefix.
//!
//! Because `v` participates in the core order of μ only while
//! `deg(v) ≥ μ`, the core orders sum to exactly `Σ deg(v)` entries — the
//! index is `O(arcs)` space regardless of `μ_max`.
//!
//! [`SimilarityIndex::build`] runs on the persistent `anyscan-parallel`
//! worker pool: σ is evaluated once per undirected edge (choosing hash-probe
//! vs merge-join per the documented
//! [`prefer_hash_probe`](anyscan_scan_common::prefer_hash_probe) crossover) and
//! mirrored to the opposite arc through the same symmetric arc indexing the
//! edge-decision cache uses, then per-vertex and per-μ sorts run in
//! parallel. [`SimilarityIndex::query`] unions similar core–core edges with
//! `anyscan-dsu` and classifies borders, hubs and outliers with the shared
//! role vocabulary, in time proportional to the touched prefixes — no σ is
//! ever re-evaluated.
//!
//! The index serializes next to the CSR graph format (`io`, magic `"ASIX"`)
//! and is wired through telemetry (`index_build` / `index_query` spans plus
//! the `index_*` counters), the CLI (`anyscan index build|query`,
//! `interactive --index`) and the `bench_pr3` harness.

pub mod io;
pub mod repair;

pub use repair::NeighborOrderPatch;

use anyscan_dsu::DsuSeq;
use anyscan_graph::{CsrGraph, ReorderMode, VertexId};
use anyscan_parallel::{parallel_map_adaptive, parallel_map_with};
use anyscan_scan_common::sketch::{DEFAULT_BITS, DEFAULT_ROWS};
use anyscan_scan_common::{
    AtomicEdgeCache, Clustering, NeighborIndex, NeighborhoodSketches, Role, RowScratch, ScanParams,
    SketchMode, HASH_PROBE_MISMATCH_RATIO, NOISE,
};
use anyscan_telemetry::{Counter, Recorder, Telemetry};

/// Tuning knobs of [`SimilarityIndex::build_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct IndexBuildOptions {
    /// [`SketchMode::Off`]: exact σ, no signatures. [`SketchMode::Assist`]:
    /// exact σ (bit-identical orders to `Off`) with MinHash signatures built
    /// alongside and persisted in the ASIX v4 file. [`SketchMode::Approx`]:
    /// every σ is the sketch estimate — the build never touches a single
    /// exact kernel evaluation.
    pub sketch: SketchMode,
    /// MinHash rows per signature.
    pub sketch_rows: usize,
    /// Bits kept per MinHash row.
    pub sketch_bits: u32,
    /// Seed the signatures are derived from (recorded in the ASIX file).
    pub seed: u64,
    /// Degree-mismatch ratio diverting exact σ rows to the hash probe
    /// ([`prefer_hash_probe_with`](anyscan_scan_common::prefer_hash_probe_with)).
    pub probe_ratio: usize,
}

impl Default for IndexBuildOptions {
    fn default() -> Self {
        IndexBuildOptions {
            sketch: SketchMode::Off,
            sketch_rows: DEFAULT_ROWS,
            sketch_bits: DEFAULT_BITS,
            seed: 0x5CA7,
            probe_ratio: HASH_PROBE_MISMATCH_RATIO,
        }
    }
}

/// The two sorted views (neighbor orders + core orders) plus the fingerprint
/// of the graph they were built from.
///
/// All arrays are CSR-shaped: `offsets` delimits per-vertex neighbor-order
/// slices of `nbr`/`sig`, and `co_offsets` delimits per-μ core-order slices
/// of `co_vertices`/`co_thresholds` (μ ∈ `1..=mu_max`, slice `μ-1`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityIndex {
    /// Per-vertex slice bounds, identical layout to the graph's CSR offsets.
    offsets: Vec<usize>,
    /// Closed neighbors, sorted per vertex by descending σ (ties: ascending
    /// id). Includes the vertex itself (σ = 1).
    nbr: Vec<VertexId>,
    /// σ values parallel to `nbr` (non-increasing per vertex).
    sig: Vec<f64>,
    /// Per-μ slice bounds into `co_vertices`/`co_thresholds`.
    co_offsets: Vec<usize>,
    /// For each μ: vertices with closed degree ≥ μ, sorted by descending
    /// `cθ_μ` (ties: ascending id).
    co_vertices: Vec<VertexId>,
    /// `cθ_μ(v)` values parallel to `co_vertices`.
    co_thresholds: Vec<f64>,
    /// Undirected edge count of the indexed graph (fingerprint, with
    /// `offsets`, against querying a different graph).
    num_edges: u64,
    /// Cache-locality reordering the indexed graph was relabeled with
    /// ([`ReorderMode::None`] when built on the original ordering). Readers
    /// of the on-disk format re-apply the same (deterministic) reordering to
    /// the freshly loaded graph before querying, then map labels back to
    /// original ids — see the CLI's `index` command.
    reorder: ReorderMode,
    /// MinHash signatures of every closed neighborhood, present when the
    /// index was built with [`SketchMode::Assist`] or [`SketchMode::Approx`]
    /// (serialized in the ASIX v4 signature section).
    sketches: Option<NeighborhoodSketches>,
    /// How the σ values in `sig`/`co_thresholds` were produced: exact
    /// kernels (`Off`/`Assist`, bit-identical to each other) or sketch
    /// estimates (`Approx`).
    sketch_mode: SketchMode,
}

impl SimilarityIndex {
    /// Builds the index with `threads` workers. Deterministic: any thread
    /// count yields bit-identical arrays.
    pub fn build(g: &CsrGraph, threads: usize) -> Self {
        Self::build_traced(g, threads, &Telemetry::disabled())
    }

    /// [`SimilarityIndex::build`] recorded under the `index_build` span,
    /// with one `index_sigma_evals` count per undirected edge.
    pub fn build_traced(g: &CsrGraph, threads: usize, telemetry: &Telemetry) -> Self {
        Self::build_with_options(g, threads, IndexBuildOptions::default(), telemetry)
    }

    /// [`SimilarityIndex::build_traced`] with sketch and probe-crossover
    /// tuning. Deterministic for any thread count in every mode.
    pub fn build_with_options(
        g: &CsrGraph,
        threads: usize,
        opts: IndexBuildOptions,
        telemetry: &Telemetry,
    ) -> Self {
        let _span = telemetry.span("index_build");
        let n = g.num_vertices();
        let arcs = g.num_arcs();

        // MinHash signatures (assist: stored alongside the exact orders;
        // approx: the sole source of every σ below).
        let sketches = match opts.sketch {
            SketchMode::Off => None,
            _ => {
                let _s = telemetry.span("index_sketches");
                Some(NeighborhoodSketches::build(
                    g,
                    opts.sketch_rows,
                    opts.sketch_bits,
                    opts.seed,
                    threads,
                ))
            }
        };

        // σ once per undirected edge: each vertex evaluates its higher-id
        // neighbors, so no pair is computed twice and no slot is contended.
        let upper: Vec<(Vec<f64>, u64)> = if opts.sketch == SketchMode::Approx {
            // Approx: the estimate *is* the σ — O(signature) per pair, the
            // adjacency lists are only read by the sketch builder above.
            let sk = sketches.as_ref().expect("approx build has sketches");
            let _s = telemetry.span("index_sigma");
            parallel_map_adaptive(threads, n, |u| {
                let u = u as VertexId;
                let row: Vec<f64> = g
                    .neighbor_ids(u)
                    .iter()
                    .filter(|&&v| v > u)
                    .map(|&v| sk.sigma_estimate(g, u, v))
                    .collect();
                (row, 0u64)
            })
        } else {
            // Exact: one dense stamp of the row, one O(d_v) pass per
            // neighbor; badly size-mismatched pairs divert to the hash probe
            // at the configured crossover. The scratch is per worker, reused
            // across its rows.
            let nidx = NeighborIndex::with_threads(g, threads).with_probe_ratio(opts.probe_ratio);
            let _s = telemetry.span("index_sigma");
            parallel_map_with(
                threads,
                n,
                || RowScratch::new(n),
                |scratch, u| {
                    let mut row = Vec::new();
                    let diverted = nidx.sigma_row(g, u as VertexId, scratch, &mut row);
                    (row, diverted)
                },
            )
        };
        telemetry.add(Counter::IndexSigmaEvals, g.num_edges());
        if opts.sketch == SketchMode::Approx {
            // Kernel-path attribution: every edge was decided by a sketch.
            telemetry.add(Counter::SigmaPathSketch, g.num_edges());
        } else {
            // Every edge is either a batched-row pass or a hash-probe
            // diversion.
            let probed: u64 = upper.iter().map(|(_, d)| d).sum();
            telemetry.add(Counter::SigmaPathProbe, probed);
            telemetry.add(Counter::SigmaPathBatched, g.num_edges() - probed);
        }

        // Scatter into an arc-aligned scratch array (upper arcs only).
        let mut sig_by_arc = vec![0.0f64; arcs];
        for u in g.vertices() {
            let base = g.arc_range(u).start;
            let mut it = upper[u as usize].0.iter();
            for (i, &v) in g.neighbor_ids(u).iter().enumerate() {
                if v > u {
                    sig_by_arc[base + i] = *it.next().expect("one σ per upper arc");
                }
            }
        }

        // Neighbor orders: mirror the lower arcs through the symmetric arc
        // index (the same lookup the edge-decision cache stores through),
        // then sort each closed neighborhood by descending σ.
        let sorted: Vec<Vec<(VertexId, f64)>> = {
            let _s = telemetry.span("index_neighbor_orders");
            parallel_map_adaptive(threads, n, |u| {
                let u = u as VertexId;
                let base = g.arc_range(u).start;
                let mut order: Vec<(VertexId, f64)> = g
                    .neighbor_ids(u)
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let s = match v.cmp(&u) {
                            std::cmp::Ordering::Equal => 1.0,
                            std::cmp::Ordering::Greater => sig_by_arc[base + i],
                            std::cmp::Ordering::Less => {
                                let mirror = AtomicEdgeCache::arc_index(g, v, u)
                                    .expect("CSR adjacency is symmetric");
                                sig_by_arc[mirror]
                            }
                        };
                        (v, s)
                    })
                    .collect();
                order.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                order
            })
        };
        drop(sig_by_arc);

        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr = Vec::with_capacity(arcs);
        let mut sig = Vec::with_capacity(arcs);
        offsets.push(0);
        for order in &sorted {
            for &(v, s) in order {
                nbr.push(v);
                sig.push(s);
            }
            offsets.push(nbr.len());
        }
        drop(sorted);

        // Core orders. Vertices sorted by descending closed degree make the
        // μ-candidates (deg ≥ μ) a prefix, so the total sorting work is
        // Σ_μ |{v : deg(v) ≥ μ}| log(·) = O(arcs log n), not O(n · μ_max).
        let _s = telemetry.span("index_core_orders");
        let mu_max = (0..n)
            .map(|v| offsets[v + 1] - offsets[v])
            .max()
            .unwrap_or(0);
        let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
        by_degree.sort_by_key(|&v| {
            let deg = offsets[v as usize + 1] - offsets[v as usize];
            (std::cmp::Reverse(deg), v)
        });
        let count_ge = |mu: usize| {
            by_degree.partition_point(|&v| offsets[v as usize + 1] - offsets[v as usize] >= mu)
        };
        let per_mu: Vec<Vec<(VertexId, f64)>> = parallel_map_adaptive(threads, mu_max, |m| {
            let mu = m + 1;
            let mut order: Vec<(VertexId, f64)> = by_degree[..count_ge(mu)]
                .iter()
                .map(|&v| (v, sig[offsets[v as usize] + mu - 1]))
                .collect();
            order.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            order
        });
        let mut co_offsets = Vec::with_capacity(mu_max + 1);
        let mut co_vertices = Vec::with_capacity(arcs);
        let mut co_thresholds = Vec::with_capacity(arcs);
        co_offsets.push(0);
        for order in &per_mu {
            for &(v, t) in order {
                co_vertices.push(v);
                co_thresholds.push(t);
            }
            co_offsets.push(co_vertices.len());
        }

        SimilarityIndex {
            offsets,
            nbr,
            sig,
            co_offsets,
            co_vertices,
            co_thresholds,
            num_edges: g.num_edges(),
            reorder: ReorderMode::None,
            sketches,
            sketch_mode: opts.sketch,
        }
    }

    /// Tags the index with the [`ReorderMode`] its graph was relabeled
    /// with before the build (persisted in the ASIX file so `index query`
    /// can re-apply it).
    pub fn with_reorder(mut self, mode: ReorderMode) -> Self {
        self.reorder = mode;
        self
    }

    /// The reordering the indexed graph was relabeled with
    /// ([`ReorderMode::None`] if none).
    pub fn reorder(&self) -> ReorderMode {
        self.reorder
    }

    /// How this index's σ values were produced (see
    /// [`IndexBuildOptions::sketch`]).
    pub fn sketch_mode(&self) -> SketchMode {
        self.sketch_mode
    }

    /// The persisted MinHash signatures, when built with sketches.
    pub fn sketches(&self) -> Option<&NeighborhoodSketches> {
        self.sketches.as_ref()
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total neighbor-order entries (= the graph's `num_arcs`).
    pub fn num_arcs(&self) -> usize {
        self.nbr.len()
    }

    /// Undirected edge count of the indexed graph.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Largest closed degree; core orders exist for μ ∈ `1..=mu_max`. Any
    /// query with `μ > mu_max` has no cores by definition.
    pub fn mu_max(&self) -> usize {
        self.co_offsets.len() - 1
    }

    /// `v`'s neighbor order: `(neighbor ids, σ values)`, σ non-increasing.
    pub fn neighbor_order(&self, v: VertexId) -> (&[VertexId], &[f64]) {
        let r = self.offsets[v as usize]..self.offsets[v as usize + 1];
        (&self.nbr[r.clone()], &self.sig[r])
    }

    /// The core order for `μ` (`1 ≤ μ ≤ mu_max`): `(vertices, cθ_μ values)`,
    /// thresholds non-increasing.
    pub fn core_order(&self, mu: usize) -> (&[VertexId], &[f64]) {
        assert!((1..=self.mu_max()).contains(&mu), "μ = {mu} out of range");
        let r = self.co_offsets[mu - 1]..self.co_offsets[mu];
        (&self.co_vertices[r.clone()], &self.co_thresholds[r])
    }

    /// Checks that `g` is plausibly the graph this index was built from
    /// (same vertex count, arc layout and edge count).
    pub fn check_graph(&self, g: &CsrGraph) -> Result<(), String> {
        if g.num_vertices() != self.num_vertices()
            || g.num_arcs() != self.num_arcs()
            || g.num_edges() != self.num_edges
        {
            return Err(format!(
                "index built for |V|={} arcs={} |E|={}, queried with |V|={} arcs={} |E|={}",
                self.num_vertices(),
                self.num_arcs(),
                self.num_edges,
                g.num_vertices(),
                g.num_arcs(),
                g.num_edges()
            ));
        }
        Ok(())
    }

    /// Clusters the indexed graph at `params` without re-evaluating any σ.
    ///
    /// Output-sensitive: cores are a prefix of the μ core order, their
    /// similar neighbors a prefix of each neighbor order; the only
    /// whole-graph work is the O(|V|) label/role arrays and the hub/outlier
    /// sweep. Equivalent to the full anySCAN driver under
    /// `check_scan_equivalent` (same cores, same core partition, same noise
    /// set, justified border attachments).
    pub fn query(&self, g: &CsrGraph, params: ScanParams) -> Clustering {
        self.query_traced(g, params, &Telemetry::disabled())
    }

    /// [`SimilarityIndex::query`] recorded under the `index_query` span and
    /// the `index_queries` / `index_cores_found` / `index_borders_attached`
    /// counters.
    pub fn query_traced(
        &self,
        g: &CsrGraph,
        params: ScanParams,
        telemetry: &Telemetry,
    ) -> Clustering {
        if let Err(e) = self.check_graph(g) {
            panic!("similarity index does not match the queried graph: {e}");
        }
        let mut clustering = self.label_cores_and_borders(params, telemetry);
        clustering.classify_noise(g);
        clustering
    }

    /// Shared core of [`SimilarityIndex::query_traced`] and
    /// [`SimilarityIndex::query_offline_traced`]: labels cores and borders,
    /// leaving every noise vertex's role at [`Role::Outlier`] for the
    /// caller's hub/outlier sweep.
    fn label_cores_and_borders(&self, params: ScanParams, telemetry: &Telemetry) -> Clustering {
        let _span = telemetry.span("index_query");
        telemetry.add(Counter::IndexQueries, 1);
        let n = self.num_vertices();
        let eps = params.epsilon;
        let mut labels = vec![NOISE; n];
        let mut roles = vec![Role::Outlier; n];

        if params.mu <= self.mu_max() {
            // Cores: the prefix of the μ core order with cθ_μ ≥ ε.
            let (co_verts, co_th) = self.core_order(params.mu);
            let num_cores = co_th.partition_point(|&t| t >= eps);
            let cores = &co_verts[..num_cores];
            telemetry.add(Counter::IndexCoresFound, num_cores as u64);

            let mut is_core = vec![false; n];
            for &c in cores {
                is_core[c as usize] = true;
            }

            // Clusters: union similar core–core edges (each pair once).
            let mut dsu = DsuSeq::new(n);
            for &c in cores {
                let (nbrs, sigs) = self.neighbor_order(c);
                for (&q, &s) in nbrs.iter().zip(sigs) {
                    if s < eps {
                        break;
                    }
                    if q > c && is_core[q as usize] {
                        dsu.union(c, q);
                    }
                }
            }
            for &c in cores {
                labels[c as usize] = dsu.find(c);
                roles[c as usize] = Role::Core;
            }

            // Borders: non-cores inside some core's ε-prefix, attached to
            // the first such core in core order.
            let mut borders = 0u64;
            for &c in cores {
                let lc = labels[c as usize];
                let (nbrs, sigs) = self.neighbor_order(c);
                for (&q, &s) in nbrs.iter().zip(sigs) {
                    if s < eps {
                        break;
                    }
                    if !is_core[q as usize] && labels[q as usize] == NOISE {
                        labels[q as usize] = lc;
                        roles[q as usize] = Role::Border;
                        borders += 1;
                    }
                }
            }
            telemetry.add(Counter::IndexBordersAttached, borders);
        }

        Clustering { labels, roles }
    }

    /// Clusters at `params` **without the graph**: the adjacency needed to
    /// split noise into hubs and outliers is recovered from the index's own
    /// neighbor orders (each is a permutation of the closed neighborhood, and
    /// the hub rule is order-blind), so the answer is identical to
    /// [`SimilarityIndex::query`] on the indexed graph. This is what lets
    /// `index query --sketch approx` answer from the ASIX file alone.
    pub fn query_offline(&self, params: ScanParams) -> Clustering {
        self.query_offline_traced(params, &Telemetry::disabled())
    }

    /// [`SimilarityIndex::query_offline`] under the same span and counters
    /// as [`SimilarityIndex::query_traced`].
    pub fn query_offline_traced(&self, params: ScanParams, telemetry: &Telemetry) -> Clustering {
        let mut clustering = self.label_cores_and_borders(params, telemetry);
        // `Clustering::classify_noise` replicated against the neighbor
        // orders instead of the CSR rows.
        for v in 0..clustering.labels.len() as VertexId {
            if clustering.labels[v as usize] != NOISE {
                continue;
            }
            let mut first: Option<u32> = None;
            let mut is_hub = false;
            for &q in self.neighbor_order(v).0 {
                if q == v {
                    continue;
                }
                let l = clustering.labels[q as usize];
                if l == NOISE {
                    continue;
                }
                match first {
                    None => first = Some(l),
                    Some(f) if f != l => {
                        is_hub = true;
                        break;
                    }
                    _ => {}
                }
            }
            clustering.roles[v as usize] = if is_hub { Role::Hub } else { Role::Outlier };
        }
        clustering
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::kernel::sigma_raw;
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn neighbor_orders_are_sorted_and_complete() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi(&mut rng, 120, 900, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 2);
        assert_eq!(idx.num_vertices(), 120);
        assert_eq!(idx.num_arcs(), g.num_arcs());
        for v in g.vertices() {
            let (nbrs, sigs) = idx.neighbor_order(v);
            assert_eq!(nbrs.len(), g.degree(v));
            let mut expect: Vec<VertexId> = g.neighbor_ids(v).to_vec();
            let mut got: Vec<VertexId> = nbrs.to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "neighbor order of {v} is a permutation");
            for w in sigs.windows(2) {
                assert!(w[0] >= w[1], "σ not descending at {v}");
            }
            for (&q, &s) in nbrs.iter().zip(sigs) {
                let want = if q == v { 1.0 } else { sigma_raw(&g, v, q) };
                assert_eq!(s.to_bits(), want.to_bits(), "σ({v},{q})");
            }
        }
    }

    #[test]
    fn core_orders_match_definition() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = erdos_renyi(&mut rng, 100, 700, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 2);
        let mu_max = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(idx.mu_max(), mu_max);
        for mu in 1..=mu_max {
            let (verts, ths) = idx.core_order(mu);
            let expect: usize = g.vertices().filter(|&v| g.degree(v) >= mu).count();
            assert_eq!(verts.len(), expect, "μ={mu} membership");
            for w in ths.windows(2) {
                assert!(w[0] >= w[1], "cθ not descending at μ={mu}");
            }
            for (&v, &t) in verts.iter().zip(ths) {
                let (_, sigs) = idx.neighbor_order(v);
                assert_eq!(t.to_bits(), sigs[mu - 1].to_bits(), "cθ_{mu}({v})");
            }
        }
        // Total core-order size is exactly Σ deg = arcs.
        assert_eq!(idx.co_vertices.len(), g.num_arcs());
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = erdos_renyi(&mut rng, 200, 1_500, WeightModel::uniform_default());
        let a = SimilarityIndex::build(&g, 1);
        let b = SimilarityIndex::build(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn query_separates_the_triangles() {
        let g = two_triangles();
        let idx = SimilarityIndex::build(&g, 1);
        let c = idx.query(&g, ScanParams::new(0.7, 3));
        assert_eq!(c.num_clusters(), 2);
        let low = idx.query(&g, ScanParams::new(0.2, 3));
        assert_eq!(low.num_clusters(), 1, "the bridge merges everything");
    }

    #[test]
    fn query_matches_scan_baseline_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = erdos_renyi(&mut rng, 180, 1_300, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 4);
        for eps in [0.3, 0.5, 0.7] {
            for mu in [2usize, 5] {
                let params = ScanParams::new(eps, mu);
                let truth = anyscan_baselines::scan(&g, params).clustering;
                let fast = idx.query(&g, params);
                assert_scan_equivalent(&g, params, &truth, &fast);
            }
        }
    }

    #[test]
    fn mu_beyond_max_degree_yields_all_noise() {
        let g = two_triangles();
        let idx = SimilarityIndex::build(&g, 1);
        let c = idx.query(&g, ScanParams::new(0.1, idx.mu_max() + 1));
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.role_counts().noise(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let idx = SimilarityIndex::build(&g, 2);
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.mu_max(), 0);
        let c = idx.query(&g, ScanParams::paper_defaults());
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match the queried graph")]
    fn querying_a_different_graph_panics() {
        let g = two_triangles();
        let idx = SimilarityIndex::build(&g, 1);
        let other = GraphBuilder::from_unweighted_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let _ = idx.query(&other, ScanParams::paper_defaults());
    }

    #[test]
    fn assist_build_is_bit_identical_to_off() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = erdos_renyi(&mut rng, 150, 1_000, WeightModel::uniform_default());
        let plain = SimilarityIndex::build(&g, 2);
        let opts = IndexBuildOptions {
            sketch: anyscan_scan_common::SketchMode::Assist,
            ..Default::default()
        };
        let assist = SimilarityIndex::build_with_options(&g, 2, opts, &Telemetry::disabled());
        // Same orders, same thresholds — the signatures ride along.
        assert_eq!(plain.offsets, assist.offsets);
        assert_eq!(plain.nbr, assist.nbr);
        assert_eq!(
            plain.sig.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            assist.sig.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(plain.co_vertices, assist.co_vertices);
        assert!(assist.sketches().is_some());
        for eps in [0.3, 0.6] {
            let params = ScanParams::new(eps, 3);
            assert_eq!(plain.query(&g, params), assist.query(&g, params));
        }
    }

    #[test]
    fn approx_build_never_runs_exact_kernels_and_stays_close() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = erdos_renyi(&mut rng, 150, 1_000, WeightModel::Unit);
        let t = Telemetry::enabled();
        let opts = IndexBuildOptions {
            sketch: anyscan_scan_common::SketchMode::Approx,
            sketch_rows: 512,
            sketch_bits: 16,
            ..Default::default()
        };
        let approx = SimilarityIndex::build_with_options(&g, 2, opts, &t);
        let r = t.report().unwrap();
        assert_eq!(r.counter(Counter::IndexSigmaEvals), g.num_edges());
        assert_eq!(r.counter(Counter::SigmaPathSketch), g.num_edges());
        assert_eq!(r.counter(Counter::SigmaPathProbe), 0);
        assert_eq!(r.counter(Counter::SigmaPathBatched), 0);

        // At 512 × 16 on unit weights every σ estimate is within the
        // tolerance band of the exact value.
        let exact = SimilarityIndex::build(&g, 2);
        let band = approx.sketches().unwrap().tolerance();
        for v in g.vertices() {
            let (nbrs, sigs) = approx.neighbor_order(v);
            for (&q, &s) in nbrs.iter().zip(sigs) {
                let want = if q == v { 1.0 } else { sigma_raw(&g, v, q) };
                assert!((s - want).abs() <= 3.0 * band, "σ̂({v},{q}) = {s} vs {want}");
            }
        }
        assert_eq!(exact.offsets, approx.offsets);
    }

    #[test]
    fn offline_query_matches_graph_query() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = erdos_renyi(&mut rng, 160, 1_200, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 2);
        for eps in [0.2, 0.4, 0.6] {
            for mu in [2usize, 4] {
                let params = ScanParams::new(eps, mu);
                let with_graph = idx.query(&g, params);
                let offline = idx.query_offline(params);
                assert_eq!(with_graph.labels, offline.labels);
                assert_eq!(with_graph.roles, offline.roles, "ε={eps} μ={mu}");
            }
        }
    }

    #[test]
    fn telemetry_counts_build_and_queries() {
        let g = two_triangles();
        let t = Telemetry::enabled();
        let idx = SimilarityIndex::build_traced(&g, 1, &t);
        let _ = idx.query_traced(&g, ScanParams::new(0.7, 3), &t);
        let _ = idx.query_traced(&g, ScanParams::new(0.2, 2), &t);
        let r = t.report().unwrap();
        assert_eq!(r.counter(Counter::IndexSigmaEvals), g.num_edges());
        assert_eq!(r.counter(Counter::IndexQueries), 2);
        assert!(r.counter(Counter::IndexCoresFound) >= 6);
        assert!(r.span_total("index_build").is_some());
        assert_eq!(r.span_total("index_query").unwrap().count, 2);
    }
}
