//! Binary serialization of the similarity index.
//!
//! Sits next to the CSR graph format (`anyscan-graph::io::binary`) and
//! shares its framing helpers. Layout (little-endian):
//!
//! ```text
//! magic   "ASIX"            4 bytes
//! version u32               currently 4
//! n       u64               number of vertices
//! arcs    u64               neighbor-order entries (= graph num_arcs)
//! edges   u64               undirected edge count of the indexed graph
//! mu_max  u64               number of core orders
//! reorder u8                v3+: ReorderMode code the graph was relabeled
//!                           with before the build (0 = none)
//! sketch  u8                v4+: SketchMode code the σ values were built
//!                           under (0 = off); if non-zero, followed by the
//!                           signature section:
//!   rows  u32               MinHash rows per signature
//!   bits  u32               bits kept per row
//!   seed  u64               seed the signatures derive from
//!   words u64               length of the packed signature array
//!   data  words × u64       n signatures, rows·bits packed per vertex
//! offsets       (n+1) × u64
//! nbr           arcs × u32
//! sig           arcs × f64
//! co_offsets    (mu_max+1) × u64
//! co_vertices   arcs × u32
//! co_thresholds arcs × f64
//! checksum      u64          v2+: FNV-1a over all preceding bytes
//! ```
//!
//! ≤ v2 files have no reorder byte and load as [`ReorderMode::None`];
//! ≤ v3 files have no sketch section and load as [`SketchMode::Off`] with
//! no signatures.
//!
//! `read_index` re-validates every structural invariant (sorted orders,
//! offset monotonicity, threshold/neighbor-order consistency): index files
//! live in the same untrusted build cache as the graphs, and a corrupted
//! order would silently mis-cluster rather than crash.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use anyscan_graph::io::framing;
use anyscan_graph::types::GraphError;
use anyscan_graph::ReorderMode;
use anyscan_scan_common::{NeighborhoodSketches, SketchMode};

use crate::SimilarityIndex;

const MAGIC: &[u8; 4] = b"ASIX";
const VERSION: u32 = 4;
/// Oldest version still readable (v1 files predate the checksum trailer;
/// v2 files predate the reorder byte; v3 files predate the signature
/// section).
const MIN_VERSION: u32 = 1;

/// Serializes an index to the binary format (current version, with a
/// checksum trailer).
pub fn write_index<W: Write>(idx: &SimilarityIndex, mut writer: W) -> Result<(), GraphError> {
    anyscan_faults::inject_io("index::write_index")?;
    let n = idx.num_vertices();
    let arcs = idx.num_arcs();
    let mu_max = idx.mu_max();
    let mut buf = BytesMut::with_capacity(4 + 4 + 32 + (n + mu_max + 2) * 8 + arcs * 24 + 8);
    framing::put_header(&mut buf, MAGIC, VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(arcs as u64);
    buf.put_u64_le(idx.num_edges());
    buf.put_u64_le(mu_max as u64);
    buf.put_u8(idx.reorder.code());
    buf.put_u8(idx.sketch_mode.code());
    if let Some(sk) = &idx.sketches {
        buf.put_u32_le(sk.rows() as u32);
        buf.put_u32_le(sk.bits());
        buf.put_u64_le(sk.seed());
        buf.put_u64_le(sk.raw_data().len() as u64);
        for &w in sk.raw_data() {
            buf.put_u64_le(w);
        }
    }
    framing::put_usize_array(&mut buf, &idx.offsets);
    framing::put_u32_array(&mut buf, &idx.nbr);
    framing::put_f64_array(&mut buf, &idx.sig);
    framing::put_usize_array(&mut buf, &idx.co_offsets);
    framing::put_u32_array(&mut buf, &idx.co_vertices);
    framing::put_f64_array(&mut buf, &idx.co_thresholds);
    framing::put_checksum_trailer(&mut buf);
    let mut out: Vec<u8> = buf.into();
    anyscan_faults::inject_write("index::write_index", &mut out)?;
    writer.write_all(&out)?;
    Ok(())
}

/// Deserializes an index written by [`write_index`], re-validating all
/// structural invariants. v2 files are checksum-verified; v1 files (no
/// trailer) still load with a warning.
pub fn read_index<R: Read>(mut reader: R) -> Result<SimilarityIndex, GraphError> {
    anyscan_faults::inject_io("index::read_index")?;
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = match framing::peek_version(&raw, MAGIC)? {
        1 => {
            eprintln!(
                "warning: ASIX v1 file has no checksum trailer; rebuild the index to upgrade"
            );
            Bytes::from(raw)
        }
        _ => framing::strip_checksum_trailer(raw)?,
    };

    let version = framing::get_header_versioned(&mut buf, MAGIC, MIN_VERSION..=VERSION)?;
    framing::need(&buf, 32)?;
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    let num_edges = buf.get_u64_le();
    let mu_max = buf.get_u64_le() as usize;
    let reorder = if version >= 3 {
        anyscan_faults::inject_io("index::read_reorder")?;
        framing::need(&buf, 1)?;
        let code = buf.get_u8();
        ReorderMode::from_code(code)
            .ok_or_else(|| GraphError::Format(format!("unknown reorder mode code {code}")))?
    } else {
        ReorderMode::None
    };
    let (sketch_mode, sketches) = if version >= 4 {
        anyscan_faults::inject_io("index::read_sketches")?;
        framing::need(&buf, 1)?;
        let code = buf.get_u8();
        let mode = SketchMode::from_code(code)
            .ok_or_else(|| GraphError::Format(format!("unknown sketch mode code {code}")))?;
        let sketches = if mode != SketchMode::Off {
            framing::need(&buf, 4 + 4 + 8 + 8)?;
            let rows = buf.get_u32_le() as usize;
            let bits = buf.get_u32_le();
            let seed = buf.get_u64_le();
            let words = buf.get_u64_le() as usize;
            framing::need(
                &buf,
                words.checked_mul(8).ok_or_else(|| {
                    GraphError::Format(format!("signature section of {words} words overflows"))
                })?,
            )?;
            let mut data = Vec::with_capacity(words);
            for _ in 0..words {
                data.push(buf.get_u64_le());
            }
            let sk = NeighborhoodSketches::from_raw_parts(rows, bits, seed, n, data)
                .map_err(|e| GraphError::Format(format!("signature section: {e}")))?;
            Some(sk)
        } else {
            None
        };
        (mode, sketches)
    } else {
        (SketchMode::Off, None)
    };

    let offsets = framing::get_usize_array(&mut buf, n + 1)?;
    let nbr = framing::get_u32_array(&mut buf, arcs)?;
    let sig = framing::get_f64_array(&mut buf, arcs)?;
    let co_offsets = framing::get_usize_array(&mut buf, mu_max + 1)?;
    let co_vertices = framing::get_u32_array(&mut buf, arcs)?;
    let co_thresholds = framing::get_f64_array(&mut buf, arcs)?;

    framing::check_offsets(&offsets, arcs, "neighbor orders")?;
    framing::check_offsets(&co_offsets, arcs, "core orders")?;

    let fail = |msg: String| Err(GraphError::Format(msg));

    // Neighbor orders: ids in range, σ finite in [0, 1] and non-increasing,
    // exactly one self entry per vertex.
    for v in 0..n {
        let r = offsets[v]..offsets[v + 1];
        let mut selfs = 0;
        for i in r.clone() {
            if nbr[i] as usize >= n {
                return fail(format!("vertex {v}: neighbor id {} out of range", nbr[i]));
            }
            if !(0.0..=1.0).contains(&sig[i]) {
                return fail(format!("vertex {v}: σ {} outside [0, 1]", sig[i]));
            }
            if i > r.start && sig[i] > sig[i - 1] {
                return fail(format!("vertex {v}: neighbor order not sorted"));
            }
            if nbr[i] as usize == v {
                selfs += 1;
            }
        }
        if selfs != 1 {
            return fail(format!("vertex {v}: {selfs} self entries, expected 1"));
        }
    }

    // Core orders: each μ-slice holds exactly the vertices of closed degree
    // ≥ μ (count check), sorted by non-increasing threshold with ascending
    // ids among ties (which also forbids duplicates), and every threshold
    // must equal the μ-th largest σ of its vertex's neighbor order.
    let degree = |v: usize| offsets[v + 1] - offsets[v];
    for mu in 1..=mu_max {
        let r = co_offsets[mu - 1]..co_offsets[mu];
        let expect = (0..n).filter(|&v| degree(v) >= mu).count();
        if r.len() != expect {
            return fail(format!(
                "core order μ={mu}: {} entries, expected {expect}",
                r.len()
            ));
        }
        for i in r.clone() {
            let v = co_vertices[i] as usize;
            if v >= n {
                return fail(format!("core order μ={mu}: vertex {v} out of range"));
            }
            if degree(v) < mu {
                return fail(format!("core order μ={mu}: vertex {v} has degree < μ"));
            }
            if co_thresholds[i].to_bits() != sig[offsets[v] + mu - 1].to_bits() {
                return fail(format!(
                    "core order μ={mu}: threshold of vertex {v} disagrees with its neighbor order"
                ));
            }
            if i > r.start {
                let (pt, pv) = (co_thresholds[i - 1], co_vertices[i - 1]);
                if co_thresholds[i] > pt || (co_thresholds[i] == pt && co_vertices[i] <= pv) {
                    return fail(format!("core order μ={mu}: not sorted at position {i}"));
                }
            }
        }
    }

    Ok(SimilarityIndex {
        offsets,
        nbr,
        sig,
        co_offsets,
        co_vertices,
        co_thresholds,
        num_edges,
        reorder,
        sketches,
        sketch_mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use anyscan_scan_common::ScanParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_index() -> (anyscan_graph::CsrGraph, SimilarityIndex) {
        let mut rng = StdRng::seed_from_u64(77);
        let g = erdos_renyi(&mut rng, 80, 500, WeightModel::uniform_default());
        let idx = SimilarityIndex::build(&g, 2);
        (g, idx)
    }

    #[test]
    fn roundtrip_preserves_index_and_queries() {
        let (g, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let idx2 = read_index(buf.as_slice()).unwrap();
        assert_eq!(idx, idx2);
        let params = ScanParams::new(0.4, 3);
        assert_eq!(idx.query(&g, params), idx2.query(&g, params));
    }

    #[test]
    fn empty_index_roundtrip() {
        let g = GraphBuilder::new(0).build();
        let idx = SimilarityIndex::build(&g, 1);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert_eq!(read_index(buf.as_slice()).unwrap(), idx);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = read_index(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        buf[4] = 9; // version byte
        assert!(read_index(buf.as_slice()).is_err());
    }

    /// Byte offset of the v3 reorder-mode byte (after header + 4 × u64).
    const REORDER_BYTE: usize = 8 + 32;

    #[test]
    fn roundtrip_preserves_reorder_mode() {
        let (_, idx) = sample_index();
        for mode in anyscan_graph::reorder::ReorderMode::ALL {
            let tagged = idx.clone().with_reorder(mode);
            let mut buf = Vec::new();
            write_index(&tagged, &mut buf).unwrap();
            let back = read_index(buf.as_slice()).unwrap();
            assert_eq!(back.reorder(), mode);
            assert_eq!(back, tagged);
        }
    }

    /// Recomputes the checksum trailer over `body` (which must not already
    /// carry one).
    fn with_fresh_trailer(body: &[u8]) -> Vec<u8> {
        use bytes::BufMut;
        let mut bytes = bytes::BytesMut::with_capacity(body.len() + framing::CHECKSUM_LEN);
        bytes.put_slice(body);
        framing::put_checksum_trailer(&mut bytes);
        Vec::from(bytes)
    }

    #[test]
    fn rejects_unknown_reorder_code() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        buf[REORDER_BYTE] = 9;
        // Recompute the trailer so only the reorder code is at fault.
        buf.truncate(buf.len() - framing::CHECKSUM_LEN);
        let err = read_index(&with_fresh_trailer(&buf)[..]).unwrap_err();
        assert!(format!("{err}").contains("reorder"), "got: {err}");
    }

    /// Byte offset of the v4 sketch-mode byte (right after the reorder
    /// byte; sketch-free files carry just the one zero byte there).
    const SKETCH_BYTE: usize = REORDER_BYTE + 1;

    /// Strips the v4 sketch byte (and for older targets the v3 reorder
    /// byte) plus the checksum trailer, patching the version field, to
    /// fabricate an on-disk file of an older version.
    fn downgrade(mut buf: Vec<u8>, version: u8) -> Vec<u8> {
        buf.remove(SKETCH_BYTE);
        if version < 3 {
            buf.remove(REORDER_BYTE);
        }
        buf.truncate(buf.len() - framing::CHECKSUM_LEN);
        buf[4] = version;
        if version >= 2 {
            buf = with_fresh_trailer(&buf);
        }
        buf
    }

    #[test]
    fn reads_legacy_v1_files_without_trailer() {
        let (g, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let buf = downgrade(buf, 1);
        let idx2 = read_index(buf.as_slice()).unwrap();
        assert_eq!(idx, idx2);
        let params = ScanParams::new(0.5, 4);
        assert_eq!(idx.query(&g, params), idx2.query(&g, params));
    }

    #[test]
    fn reads_v2_files_as_unreordered() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let buf = downgrade(buf, 2);
        let idx2 = read_index(buf.as_slice()).unwrap();
        assert_eq!(idx2.reorder(), anyscan_graph::ReorderMode::None);
        assert_eq!(idx, idx2);
    }

    #[test]
    fn reads_v3_files_sketch_free() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let buf = downgrade(buf, 3);
        let idx2 = read_index(buf.as_slice()).unwrap();
        assert_eq!(idx2.sketch_mode(), SketchMode::Off);
        assert!(idx2.sketches().is_none());
        assert_eq!(idx, idx2);
    }

    fn sketched_index(mode: SketchMode) -> (anyscan_graph::CsrGraph, SimilarityIndex) {
        let mut rng = StdRng::seed_from_u64(78);
        let g = erdos_renyi(&mut rng, 70, 420, WeightModel::uniform_default());
        let opts = crate::IndexBuildOptions {
            sketch: mode,
            sketch_rows: 64,
            sketch_bits: 8,
            seed: 99,
            ..Default::default()
        };
        let idx = SimilarityIndex::build_with_options(
            &g,
            2,
            opts,
            &anyscan_telemetry::Telemetry::disabled(),
        );
        (g, idx)
    }

    #[test]
    fn v4_roundtrips_signatures() {
        for mode in [SketchMode::Assist, SketchMode::Approx] {
            let (g, idx) = sketched_index(mode);
            let mut buf = Vec::new();
            write_index(&idx, &mut buf).unwrap();
            let back = read_index(buf.as_slice()).unwrap();
            assert_eq!(back.sketch_mode(), mode);
            assert_eq!(back.sketches(), idx.sketches(), "signatures round-trip");
            assert_eq!(back, idx);
            let params = ScanParams::new(0.4, 3);
            assert_eq!(idx.query(&g, params), back.query(&g, params));
        }
    }

    #[test]
    fn rejects_corrupt_signature_section() {
        let (_, idx) = sketched_index(SketchMode::Assist);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();

        // Invalid bits-per-row value.
        let mut broken = buf.clone();
        broken[SKETCH_BYTE + 1 + 4] = 3; // bits u32 follows the rows u32
        broken.truncate(broken.len() - framing::CHECKSUM_LEN);
        let err = read_index(&with_fresh_trailer(&broken)[..]).unwrap_err();
        assert!(format!("{err}").contains("signature"), "got: {err}");

        // Signature array length disagreeing with rows × bits × n.
        let words_at = SKETCH_BYTE + 1 + 4 + 4 + 8;
        let mut broken = buf.clone();
        let words = u64::from_le_bytes(broken[words_at..words_at + 8].try_into().unwrap());
        broken[words_at..words_at + 8].copy_from_slice(&(words - 1).to_le_bytes());
        broken.truncate(broken.len() - framing::CHECKSUM_LEN);
        assert!(read_index(&with_fresh_trailer(&broken)[..]).is_err());

        // Unknown sketch-mode code.
        let mut broken = buf;
        broken[SKETCH_BYTE] = 7;
        broken.truncate(broken.len() - framing::CHECKSUM_LEN);
        let err = read_index(&with_fresh_trailer(&broken)[..]).unwrap_err();
        assert!(format!("{err}").contains("sketch mode"), "got: {err}");
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        for cut in [3, 7, 30, buf.len() / 3, buf.len() / 2, buf.len() - 1] {
            assert!(read_index(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_corrupted_order() {
        let (_, idx) = sample_index();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        // Flip a byte inside the neighbor-id block to break the sorted-order
        // or range invariants.
        let header = 8 + 32 + 2 + (idx.num_vertices() + 1) * 8;
        let mut broken = buf.clone();
        broken[header + 1] ^= 0xFF;
        assert!(read_index(broken.as_slice()).is_err());
        // And one inside the σ block.
        let sig_start = header + idx.num_arcs() * 4;
        let mut broken = buf;
        broken[sig_start + 7] ^= 0x7F;
        assert!(read_index(broken.as_slice()).is_err());
    }
}
