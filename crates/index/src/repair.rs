//! In-place repair of the similarity index after edge mutations.
//!
//! "Dynamic Structural Clustering Unleashed" observes that the two sorted
//! views of a GS\*-style index — per-vertex neighbor orders and per-μ core
//! orders — can be *repaired* rather than rebuilt when σ changes are local:
//! an edge update touches only the closed neighborhoods of its endpoints, so
//! only those vertices' orders (and the core-order entries whose `cθ_μ`
//! actually moved) need work. Everything else is a straight copy.
//!
//! The entry point is [`SimilarityIndex::apply_patches`]: the dynamic update
//! engine (crate `anyscan-dynamic`) recomputes each affected vertex's full
//! neighbor order and hands them over as [`NeighborOrderPatch`]es; this
//! module splices them into the flat CSR-shaped arrays and repairs exactly
//! the per-μ core-order slices whose thresholds or membership changed. No σ
//! is ever re-evaluated here and no slice is ever re-sorted — untouched
//! slices are copied, touched slices are merge-repaired from already-sorted
//! inputs — so the post-repair index is bit-identical to a from-scratch
//! [`SimilarityIndex::build`] on the mutated graph (property-tested in
//! `anyscan-dynamic`).

use std::collections::HashMap;

use anyscan_graph::VertexId;
use anyscan_telemetry::{Counter, Recorder, Telemetry};

use crate::SimilarityIndex;

/// One vertex's complete post-update neighbor order: the closed neighborhood
/// sorted by descending σ (ties: ascending id), the vertex itself included
/// with σ = 1. Produced by the dynamic update engine for every vertex whose
/// closed neighborhood — or any incident σ — changed in a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborOrderPatch {
    /// The vertex whose order is replaced.
    pub vertex: VertexId,
    /// The new `(neighbor, σ)` order, sorted descending by σ.
    pub order: Vec<(VertexId, f64)>,
}

/// Descending-σ, ascending-id ordering — the exact comparator
/// [`SimilarityIndex::build`] sorts with, so merge-repaired slices coincide
/// with freshly sorted ones.
#[inline]
fn order_cmp(a: &(VertexId, f64), b: &(VertexId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

impl SimilarityIndex {
    /// Splices repaired neighbor orders into the index and repairs the
    /// per-μ core orders they invalidate, in place.
    ///
    /// `num_edges` is the mutated graph's undirected edge count (the
    /// fingerprint queries are checked against). Patches must be internally
    /// consistent — each order a closed neighborhood containing its own
    /// vertex, sorted descending — and at most one patch per vertex;
    /// violations are a typed `Err` with the index left untouched.
    ///
    /// MinHash signatures cannot be repaired incrementally (a signature
    /// mixes the whole neighborhood), so any stored sketches are dropped and
    /// the sketch mode reverts to [`SketchMode::Off`]; dynamic mode
    /// therefore serves exact σ only. Counter accounting: one
    /// `dyn_index_repairs` per patched vertex, recorded under the
    /// `index_repair` span.
    ///
    /// [`SketchMode::Off`]: anyscan_scan_common::SketchMode::Off
    pub fn apply_patches(
        &mut self,
        patches: &[NeighborOrderPatch],
        num_edges: u64,
        telemetry: &Telemetry,
    ) -> Result<(), String> {
        let _span = telemetry.span("index_repair");
        let n = self.num_vertices();
        let mut patch_of: HashMap<VertexId, usize> = HashMap::with_capacity(patches.len());
        for (i, p) in patches.iter().enumerate() {
            if p.vertex as usize >= n {
                return Err(format!(
                    "patch vertex {} out of range (|V| = {n})",
                    p.vertex
                ));
            }
            if !p.order.iter().any(|&(q, _)| q == p.vertex) {
                return Err(format!("patch for {} lacks its self entry", p.vertex));
            }
            if p.order.windows(2).any(|w| order_cmp(&w[0], &w[1]).is_gt()) {
                return Err(format!("patch for {} is not sorted", p.vertex));
            }
            if patch_of.insert(p.vertex, i).is_some() {
                return Err(format!("duplicate patch for vertex {}", p.vertex));
            }
        }

        // Per-μ core-order change lists, computed against the *old* orders
        // before any array moves: a vertex's entry at μ changes iff its
        // membership (deg ≥ μ) or its threshold `cθ_μ = order[μ-1].σ`
        // changed. Untouched μ slices are copied wholesale below.
        let mut removals: HashMap<usize, Vec<VertexId>> = HashMap::new();
        let mut insertions: HashMap<usize, Vec<(VertexId, f64)>> = HashMap::new();
        for p in patches {
            let v = p.vertex as usize;
            let old = &self.sig[self.offsets[v]..self.offsets[v + 1]];
            let new_deg = p.order.len();
            for mu in 1..=old.len().max(new_deg) {
                let old_t = old.get(mu - 1).copied();
                let new_t = (mu <= new_deg).then(|| p.order[mu - 1].1);
                match (old_t, new_t) {
                    (Some(o), Some(t)) if o.to_bits() == t.to_bits() => {}
                    (old_t, new_t) => {
                        if old_t.is_some() {
                            removals.entry(mu).or_default().push(p.vertex);
                        }
                        if let Some(t) = new_t {
                            insertions.entry(mu).or_default().push((p.vertex, t));
                        }
                    }
                }
            }
        }

        // Neighbor orders: overwrite in place when every patched degree is
        // unchanged (the reweight-only fast path); otherwise splice the flat
        // arrays once, shifting untouched slices.
        let degrees_stable = patches.iter().all(|p| {
            p.order.len() == self.offsets[p.vertex as usize + 1] - self.offsets[p.vertex as usize]
        });
        if degrees_stable {
            for p in patches {
                let base = self.offsets[p.vertex as usize];
                for (i, &(q, s)) in p.order.iter().enumerate() {
                    self.nbr[base + i] = q;
                    self.sig[base + i] = s;
                }
            }
        } else {
            let new_arcs: usize = (0..n)
                .map(|v| match patch_of.get(&(v as VertexId)) {
                    Some(&i) => patches[i].order.len(),
                    None => self.offsets[v + 1] - self.offsets[v],
                })
                .sum();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut nbr = Vec::with_capacity(new_arcs);
            let mut sig = Vec::with_capacity(new_arcs);
            offsets.push(0);
            for v in 0..n {
                match patch_of.get(&(v as VertexId)) {
                    Some(&i) => {
                        for &(q, s) in &patches[i].order {
                            nbr.push(q);
                            sig.push(s);
                        }
                    }
                    None => {
                        let r = self.offsets[v]..self.offsets[v + 1];
                        nbr.extend_from_slice(&self.nbr[r.clone()]);
                        sig.extend_from_slice(&self.sig[r]);
                    }
                }
                offsets.push(nbr.len());
            }
            self.offsets = offsets;
            self.nbr = nbr;
            self.sig = sig;
        }

        // Core orders: μ slices with no change are copied; changed slices
        // are filtered (removals) and merged (insertions, sorted with the
        // build comparator) — never re-sorted.
        let old_mu_max = self.mu_max();
        let new_mu_max = (0..n)
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0);
        let total: usize = *self.offsets.last().unwrap_or(&0);
        let mut co_offsets = Vec::with_capacity(new_mu_max + 1);
        let mut co_vertices = Vec::with_capacity(total);
        let mut co_thresholds = Vec::with_capacity(total);
        co_offsets.push(0);
        for mu in 1..=new_mu_max {
            let (old_v, old_t): (&[VertexId], &[f64]) = if mu <= old_mu_max {
                let r = self.co_offsets[mu - 1]..self.co_offsets[mu];
                (&self.co_vertices[r.clone()], &self.co_thresholds[r])
            } else {
                (&[], &[])
            };
            match (removals.get(&mu), insertions.get(&mu)) {
                (None, None) => {
                    co_vertices.extend_from_slice(old_v);
                    co_thresholds.extend_from_slice(old_t);
                }
                (rem, ins) => {
                    let drop: std::collections::HashSet<VertexId> =
                        rem.map(|r| r.iter().copied().collect()).unwrap_or_default();
                    let mut add: Vec<(VertexId, f64)> = ins.cloned().unwrap_or_default();
                    add.sort_unstable_by(order_cmp);
                    let mut ai = 0usize;
                    for (&v, &t) in old_v.iter().zip(old_t) {
                        if drop.contains(&v) {
                            continue;
                        }
                        while ai < add.len() && order_cmp(&add[ai], &(v, t)).is_lt() {
                            co_vertices.push(add[ai].0);
                            co_thresholds.push(add[ai].1);
                            ai += 1;
                        }
                        co_vertices.push(v);
                        co_thresholds.push(t);
                    }
                    for &(v, t) in &add[ai..] {
                        co_vertices.push(v);
                        co_thresholds.push(t);
                    }
                }
            }
            co_offsets.push(co_vertices.len());
        }
        self.co_offsets = co_offsets;
        self.co_vertices = co_vertices;
        self.co_thresholds = co_thresholds;

        self.num_edges = num_edges;
        if self.sketches.is_some() {
            self.sketches = None;
            self.sketch_mode = anyscan_scan_common::SketchMode::Off;
        }
        telemetry.add(Counter::DynIndexRepairs, patches.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::{CsrGraph, GraphBuilder};
    use anyscan_scan_common::kernel::sigma_raw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Recomputes `v`'s neighbor order from scratch on `g` (the patch the
    /// dynamic engine would produce).
    fn fresh_order(g: &CsrGraph, v: VertexId) -> NeighborOrderPatch {
        let mut order: Vec<(VertexId, f64)> = g
            .neighbor_ids(v)
            .iter()
            .map(|&q| (q, if q == v { 1.0 } else { sigma_raw(g, v, q) }))
            .collect();
        order.sort_unstable_by(order_cmp);
        NeighborOrderPatch { vertex: v, order }
    }

    /// Patch every vertex whose closed neighborhood differs between the two
    /// graphs, plus every vertex incident to a changed σ — i.e. the closed
    /// neighborhoods of `touched` in either graph.
    fn patches_for(
        old: &CsrGraph,
        new: &CsrGraph,
        touched: &[VertexId],
    ) -> Vec<NeighborOrderPatch> {
        let mut affected: Vec<VertexId> = touched
            .iter()
            .flat_map(|&t| {
                old.neighbor_ids(t)
                    .iter()
                    .chain(new.neighbor_ids(t))
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        affected.sort_unstable();
        affected.dedup();
        affected.into_iter().map(|v| fresh_order(new, v)).collect()
    }

    fn assert_index_eq(repaired: &SimilarityIndex, fresh: &SimilarityIndex) {
        assert_eq!(repaired.offsets, fresh.offsets);
        assert_eq!(repaired.nbr, fresh.nbr);
        let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&repaired.sig), bits(&fresh.sig));
        assert_eq!(repaired.co_offsets, fresh.co_offsets);
        assert_eq!(repaired.co_vertices, fresh.co_vertices);
        assert_eq!(bits(&repaired.co_thresholds), bits(&fresh.co_thresholds));
        assert_eq!(repaired.num_edges, fresh.num_edges);
    }

    #[test]
    fn reweight_repair_matches_fresh_build() {
        let mut rng = StdRng::seed_from_u64(31);
        let before = erdos_renyi(&mut rng, 80, 400, WeightModel::uniform_default());
        // Reweight edge (u, v): same topology, one weight changed.
        let (u, v, _) = before.edges().next().unwrap();
        let mut b = GraphBuilder::new(80);
        for (a, c, w) in before.edges() {
            let w = if (a, c) == (u, v) { w * 3.0 } else { w };
            b.add_edge(a, c, w);
        }
        let after = b.build();

        let mut idx = SimilarityIndex::build(&before, 2);
        idx.apply_patches(
            &patches_for(&before, &after, &[u, v]),
            after.num_edges(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_index_eq(&idx, &SimilarityIndex::build(&after, 2));
    }

    #[test]
    fn insert_and_remove_repair_matches_fresh_build() {
        let mut rng = StdRng::seed_from_u64(32);
        let before = erdos_renyi(&mut rng, 60, 250, WeightModel::uniform_default());
        let (ru, rv, _) = before.edges().nth(7).unwrap();
        // Find an absent pair to insert.
        let (iu, iv) = (0..60u32)
            .flat_map(|a| (a + 1..60).map(move |b| (a, b)))
            .find(|&(a, b)| !before.has_edge(a, b))
            .unwrap();
        let mut b = GraphBuilder::new(60);
        for (a, c, w) in before.edges() {
            if (a, c) != (ru, rv) {
                b.add_edge(a, c, w);
            }
        }
        b.add_edge(iu, iv, 1.25);
        let after = b.build();

        let mut idx = SimilarityIndex::build(&before, 2);
        idx.apply_patches(
            &patches_for(&before, &after, &[ru, rv, iu, iv]),
            after.num_edges(),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_index_eq(&idx, &SimilarityIndex::build(&after, 2));
    }

    #[test]
    fn repair_drops_sketches_and_counts() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = erdos_renyi(&mut rng, 40, 150, WeightModel::uniform_default());
        let opts = crate::IndexBuildOptions {
            sketch: anyscan_scan_common::SketchMode::Assist,
            ..Default::default()
        };
        let mut idx = SimilarityIndex::build_with_options(&g, 1, opts, &Telemetry::disabled());
        assert!(idx.sketches().is_some());
        let t = Telemetry::enabled();
        let (u, v, _) = g.edges().next().unwrap();
        let patches = patches_for(&g, &g, &[u, v]); // no-op σ, exercises the path
        let count = patches.len() as u64;
        idx.apply_patches(&patches, g.num_edges(), &t).unwrap();
        assert!(idx.sketches().is_none());
        assert_eq!(idx.sketch_mode(), anyscan_scan_common::SketchMode::Off);
        let r = t.report().unwrap();
        assert_eq!(r.counter(Counter::DynIndexRepairs), count);
        assert!(r.span_total("index_repair").is_some());
    }

    #[test]
    fn malformed_patches_are_rejected() {
        let g = GraphBuilder::from_unweighted_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let mut idx = SimilarityIndex::build(&g, 1);
        let t = Telemetry::disabled();
        // Out of range.
        let bad = NeighborOrderPatch {
            vertex: 9,
            order: vec![(9, 1.0)],
        };
        assert!(idx.apply_patches(&[bad], g.num_edges(), &t).is_err());
        // Missing self entry.
        let bad = NeighborOrderPatch {
            vertex: 0,
            order: vec![(1, 0.5)],
        };
        assert!(idx.apply_patches(&[bad], g.num_edges(), &t).is_err());
        // Unsorted order.
        let bad = NeighborOrderPatch {
            vertex: 0,
            order: vec![(1, 0.5), (0, 1.0)],
        };
        assert!(idx.apply_patches(&[bad], g.num_edges(), &t).is_err());
        // Duplicate patches for one vertex.
        let p = NeighborOrderPatch {
            vertex: 0,
            order: vec![(0, 1.0), (1, 0.5)],
        };
        assert!(idx
            .apply_patches(&[p.clone(), p], g.num_edges(), &t)
            .is_err());
    }
}
