//! Failover behavior against scripted daemons: reads rotate off dead
//! endpoints, writes chase the `NotPrimary` leader hint, reconnects are
//! tallied apart from request errors, and a hung daemon costs one timeout.

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use anyscan_client::{Client, ClientConfig, ClientError, Endpoint, RetryPolicy};
use anyscan_serve::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireUpdate, REQUEST_FRAME_LIMIT,
    UPDATE_INSERT,
};
use anyscan_serve::Health;

/// A scripted daemon: answers every request with `handler`; `None` closes
/// the connection. The accept thread leaks — the test process ends it.
fn fake_server(
    mut handler: impl FnMut(Request) -> Option<Response> + Send + 'static,
) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            while let Ok(Some(payload)) = read_frame(&mut conn, REQUEST_FRAME_LIMIT) {
                let request = Request::decode(&payload).unwrap();
                match handler(request) {
                    Some(response) => {
                        if write_frame(&mut conn, &response.encode()).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
    });
    addr
}

/// An address that refuses connections (bound, then immediately dropped).
fn dead_endpoint() -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    Endpoint::Tcp(addr.to_string())
}

fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        min_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    }
}

fn ping_ok() -> Option<Response> {
    Some(Response::Ping(Health::default()))
}

fn one_write() -> Request {
    Request::ApplyUpdates {
        updates: vec![WireUpdate {
            kind: UPDATE_INSERT,
            u: 0,
            v: 1,
            w: 1.0,
        }],
    }
}

#[test]
fn reads_fail_over_past_a_dead_endpoint() {
    let live = fake_server(|_| ping_ok());
    let mut client = Client::new(ClientConfig {
        retry: fast_retry(4),
        ..ClientConfig::new(vec![dead_endpoint(), Endpoint::Tcp(live.to_string())])
    })
    .unwrap();
    match client.call(&Request::Ping).unwrap() {
        Response::Ping(_) => {}
        other => panic!("unexpected response {other:?}"),
    }
    let stats = client.stats();
    assert!(stats.retries >= 1, "stats: {stats:?}");
    // Refused connects are recovery, not request errors: the call succeeded.
}

#[test]
fn writes_follow_the_not_primary_leader_hint() {
    let primary = fake_server(|request| match request {
        Request::ApplyUpdates { .. } => Some(Response::ApplyUpdates {
            applied: 1,
            skipped: 0,
            seq: 1,
            epoch: 1,
        }),
        _ => ping_ok(),
    });
    let hint = primary.to_string();
    let replica = fake_server(move |request| match request {
        Request::ApplyUpdates { .. } => Some(Response::Error {
            code: ErrorCode::NotPrimary,
            message: hint.clone(),
        }),
        _ => ping_ok(),
    });

    // The client only knows the replica; the hint teaches it the primary.
    let mut client = Client::new(ClientConfig {
        retry: fast_retry(4),
        ..ClientConfig::new(vec![Endpoint::Tcp(replica.to_string())])
    })
    .unwrap();
    match client.call(&one_write()).unwrap() {
        Response::ApplyUpdates { seq, .. } => assert_eq!(seq, 1),
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(client.stats().failovers, 1);
    assert_eq!(
        client.primary_endpoint(),
        &Endpoint::Tcp(primary.to_string())
    );

    // The learned primary sticks: the next write goes straight there.
    client.call(&one_write()).unwrap();
    assert_eq!(client.stats().failovers, 1);
}

#[test]
fn reconnects_are_tallied_separately_from_request_errors() {
    // Answers one request per connection, then hangs up.
    let mut served = 0u32;
    let flaky = fake_server(move |_| {
        served += 1;
        if served.is_multiple_of(2) {
            None // close without answering: the client must reconnect
        } else {
            ping_ok()
        }
    });
    let mut client = Client::new(ClientConfig {
        retry: fast_retry(4),
        ..ClientConfig::new(vec![Endpoint::Tcp(flaky.to_string())])
    })
    .unwrap();
    for _ in 0..4 {
        client.call(&Request::Ping).unwrap();
    }
    let stats = client.stats();
    assert!(stats.reconnects >= 1, "stats: {stats:?}");
    assert_eq!(stats.connects, stats.reconnects + 1);
}

#[test]
fn a_hung_daemon_costs_a_timeout_not_a_stuck_client() {
    // Accepts and never answers.
    let hung = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let conns: Vec<_> = listener.incoming().take(4).collect();
            std::thread::sleep(Duration::from_secs(30));
            drop(conns);
        });
        addr
    };
    let mut client = Client::new(ClientConfig {
        request_timeout: Some(Duration::from_millis(100)),
        retry: fast_retry(2),
        ..ClientConfig::new(vec![Endpoint::Tcp(hung.to_string())])
    })
    .unwrap();
    match client.call(&Request::Ping) {
        Err(ClientError::Exhausted { attempts: 2, last }) => {
            assert!(last.contains("timed out"), "last: {last}");
        }
        other => panic!("expected exhaustion, got {:?}", other.map(|_| ())),
    }
}
