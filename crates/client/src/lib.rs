//! Failover-aware client for the anyscan serve protocol.
//!
//! The daemon side of PR 9 made serving replicated: a primary streams
//! committed ASUL entries to replicas, any of which answers reads at its
//! applied epoch and refuses writes with a typed `NotPrimary` carrying the
//! leader's address. This crate is the matching client half — the piece
//! that turns "a set of daemons" into "a service":
//!
//! - **endpoint lists** — a [`Client`] holds every known daemon address
//!   (TCP `host:port` or `unix:PATH`) and keeps at most one cached
//!   connection per endpoint (the pool of a blocking one-request-per-
//!   connection protocol);
//! - **read failover** — reads rotate across endpoints; a transport error
//!   retires that endpoint's connection and the request moves on, under a
//!   capped exponential backoff with jitter;
//! - **write routing** — writes go only to the believed primary; a
//!   `NotPrimary` answer re-aims at the hinted leader (learning new
//!   addresses as the topology changes) and retries;
//! - **per-request timeouts** — socket deadlines bound every read/write, so
//!   a hung daemon costs one timeout, not a stuck harness.
//!
//! Every recovery is tallied in [`ClientStats`], keeping *reconnects*
//! separate from *request errors* — the distinction the load harness needs
//! to tell a flaky network from a failing daemon.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use anyscan_serve::protocol::{
    read_frame, write_frame, DecodeError, ErrorCode, FrameError, Request, Response,
    RESPONSE_FRAME_LIMIT,
};

/// One daemon address: TCP `host:port`, or `unix:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    Tcp(String),
    Unix(String),
}

impl Endpoint {
    /// Parses `host:port` or `unix:PATH`.
    pub fn parse(raw: &str) -> Result<Endpoint, String> {
        let raw = raw.trim();
        if let Some(path) = raw.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Endpoint::Unix(path.to_string()));
        }
        if raw.is_empty() {
            return Err("empty endpoint".into());
        }
        // A TCP endpoint needs a port split; anything else is a typo we
        // want caught at parse time, not at connect time.
        match raw.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Endpoint::Tcp(raw.to_string()))
            }
            _ => Err(format!("bad endpoint {raw:?}, want host:port or unix:PATH")),
        }
    }

    /// Parses a comma-separated endpoint list (`a:1,b:2,unix:/s.sock`).
    pub fn parse_list(raw: &str) -> Result<Vec<Endpoint>, String> {
        let endpoints: Vec<Endpoint> = raw
            .split(',')
            .filter(|part| !part.trim().is_empty())
            .map(Endpoint::parse)
            .collect::<Result<_, _>>()?;
        if endpoints.is_empty() {
            return Err("empty endpoint list".into());
        }
        Ok(endpoints)
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{path}"),
        }
    }
}

/// Retry/backoff knobs shared by every request.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included; default 4).
    pub attempts: u32,
    /// Backoff before the first retry (default 25ms).
    pub min_backoff: Duration,
    /// Backoff ceiling (default 1s).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            min_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The nominal (pre-jitter) backoff before retry number `retry`
    /// (1-based): capped exponential.
    pub fn nominal_backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let nominal = self
            .min_backoff
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        nominal.min(self.max_backoff)
    }
}

/// Everything a [`Client`] needs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// All known daemon addresses. Writes start at the first entry; the
    /// client re-learns the primary from `NotPrimary` hints.
    pub endpoints: Vec<Endpoint>,
    /// Socket deadline applied to every read/write (None = block forever).
    pub request_timeout: Option<Duration>,
    pub retry: RetryPolicy,
    /// Jitter seed (vary per worker so backoffs don't stampede).
    pub seed: u64,
}

impl ClientConfig {
    /// A config with defaults around the given endpoints.
    pub fn new(endpoints: Vec<Endpoint>) -> ClientConfig {
        ClientConfig {
            endpoints,
            request_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
            seed: 0x5eed_c11e,
        }
    }
}

/// Why a call failed, after the retry budget is spent.
#[derive(Debug)]
pub enum ClientError {
    /// No endpoint answered within the retry budget; carries the last
    /// failure seen.
    Exhausted {
        attempts: u32,
        last: String,
    },
    Connect(std::io::Error),
    Frame(FrameError),
    Decode(DecodeError),
    /// The daemon closed the connection before answering.
    ClosedEarly,
    /// The socket deadline (`request_timeout`) passed mid-request.
    Timeout,
    /// Config error (empty endpoint list, bad address).
    Config(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "no endpoint answered after {attempts} attempts: {last}")
            }
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
            ClientError::ClosedEarly => write!(f, "connection closed before a response"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Recovery tallies — reconnects are deliberately separate from request
/// errors (a retried request that succeeds is *not* an error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections opened, lifetime.
    pub connects: u64,
    /// Connections opened to replace one that existed before (i.e. every
    /// connect after an endpoint's first).
    pub reconnects: u64,
    /// Request attempts beyond each request's first.
    pub retries: u64,
    /// Writes re-aimed by a `NotPrimary` leader hint.
    pub failovers: u64,
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Per-endpoint state: the cached idle connection (the "pool" of a blocking
/// protocol) and whether this endpoint ever connected (for the reconnect
/// tally).
struct Slot {
    endpoint: Endpoint,
    conn: Option<Stream>,
    ever_connected: bool,
}

/// A pooled, failover-aware protocol client. See the module docs.
pub struct Client {
    slots: Vec<Slot>,
    /// Index of the believed primary (writes go here first).
    primary: usize,
    /// Round-robin cursor for reads.
    cursor: usize,
    request_timeout: Option<Duration>,
    retry: RetryPolicy,
    rng: StdRng,
    stats: ClientStats,
}

/// Whether a request mutates daemon state (and must reach the primary).
/// `Shutdown` and `Promote` are *targeted* commands, not replicated writes:
/// they go to whichever endpoint the caller listed first and do not follow
/// leader hints.
fn is_replicated_write(request: &Request) -> bool {
    matches!(request, Request::ApplyUpdates { .. })
}

impl Client {
    pub fn new(config: ClientConfig) -> Result<Client, ClientError> {
        if config.endpoints.is_empty() {
            return Err(ClientError::Config("empty endpoint list".into()));
        }
        Ok(Client {
            slots: config
                .endpoints
                .into_iter()
                .map(|endpoint| Slot {
                    endpoint,
                    conn: None,
                    ever_connected: false,
                })
                .collect(),
            primary: 0,
            cursor: 0,
            request_timeout: config.request_timeout,
            retry: config.retry,
            rng: StdRng::seed_from_u64(config.seed),
            stats: ClientStats::default(),
        })
    }

    /// A single-endpoint client with default knobs.
    pub fn connect(endpoint: Endpoint) -> Result<Client, ClientError> {
        Client::new(ClientConfig::new(vec![endpoint]))
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The endpoint writes currently aim at.
    pub fn primary_endpoint(&self) -> &Endpoint {
        &self.slots[self.primary].endpoint
    }

    /// Sends one request with retry/failover and blocks for its response.
    /// Reads rotate over every endpoint; replicated writes follow the
    /// `NotPrimary` leader hint. A typed daemon error other than
    /// `NotPrimary` is a *response* (`Ok(Response::Error { .. })`), not a
    /// transport failure — the caller decides what it means.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let write = is_replicated_write(request);
        let mut last = String::new();
        for attempt in 0..self.retry.attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let nominal = self.retry.nominal_backoff(attempt);
                std::thread::sleep(nominal.mul_f64(self.rng.gen_range(0.5..1.0)));
            }
            let slot = if write {
                self.primary
            } else {
                self.cursor % self.slots.len()
            };
            match self.try_once(slot, request) {
                Ok(Response::Error {
                    code: ErrorCode::NotPrimary,
                    message,
                }) if write => {
                    // Follow the hint when there is one; otherwise fall
                    // through to the next attempt (an election may be in
                    // progress and the hint not yet known).
                    last = if message.is_empty() {
                        format!("{} is not the primary", self.slots[slot].endpoint)
                    } else {
                        format!(
                            "{} is not the primary (leader hint {message})",
                            self.slots[slot].endpoint
                        )
                    };
                    if !message.is_empty() {
                        if let Ok(hinted) = Endpoint::parse(&message) {
                            self.aim_writes_at(hinted);
                            self.stats.failovers += 1;
                        }
                    }
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    last = format!("{}: {e}", self.slots[slot].endpoint);
                    if let ClientError::Timeout = e {
                        // A timed-out write may have committed; retrying
                        // could double-apply. Surface it instead.
                        if write {
                            return Err(ClientError::Timeout);
                        }
                    }
                    if !write {
                        // Read failover: move on to the next endpoint.
                        self.cursor = (self.cursor + 1) % self.slots.len();
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.retry.attempts,
            last,
        })
    }

    /// `Ping`s a specific endpoint (bypassing rotation), for health probes.
    pub fn probe(&mut self, endpoint: &Endpoint) -> Result<Response, ClientError> {
        let slot = match self.slots.iter().position(|s| s.endpoint == *endpoint) {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    endpoint: endpoint.clone(),
                    conn: None,
                    ever_connected: false,
                });
                self.slots.len() - 1
            }
        };
        self.try_once(slot, &Request::Ping)
    }

    /// Re-aims writes at `leader`, learning the address if it is new.
    fn aim_writes_at(&mut self, leader: Endpoint) {
        match self.slots.iter().position(|s| s.endpoint == leader) {
            Some(i) => self.primary = i,
            None => {
                self.slots.push(Slot {
                    endpoint: leader,
                    conn: None,
                    ever_connected: false,
                });
                self.primary = self.slots.len() - 1;
            }
        }
    }

    /// One request/response exchange against one endpoint. Any failure
    /// retires that endpoint's cached connection.
    fn try_once(&mut self, slot: usize, request: &Request) -> Result<Response, ClientError> {
        if self.slots[slot].conn.is_none() {
            let stream = self.open(slot)?;
            self.slots[slot].conn = Some(stream);
        }
        let conn = self.slots[slot].conn.as_mut().unwrap();
        let result = exchange(conn, request);
        if result.is_err() {
            // Whatever happened, the stream position is unknowable: retire
            // the connection so the next attempt starts clean.
            self.slots[slot].conn = None;
        }
        result
    }

    fn open(&mut self, slot: usize) -> Result<Stream, ClientError> {
        let stream = match &self.slots[slot].endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(ClientError::Connect)?;
                s.set_nodelay(true).map_err(ClientError::Connect)?;
                s.set_read_timeout(self.request_timeout)
                    .map_err(ClientError::Connect)?;
                s.set_write_timeout(self.request_timeout)
                    .map_err(ClientError::Connect)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path).map_err(ClientError::Connect)?;
                s.set_read_timeout(self.request_timeout)
                    .map_err(ClientError::Connect)?;
                s.set_write_timeout(self.request_timeout)
                    .map_err(ClientError::Connect)?;
                Stream::Unix(s)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => {
                return Err(ClientError::Config(format!(
                    "unix sockets unsupported on this platform: {path}"
                )))
            }
        };
        self.stats.connects += 1;
        if self.slots[slot].ever_connected {
            self.stats.reconnects += 1;
        }
        self.slots[slot].ever_connected = true;
        Ok(stream)
    }
}

fn exchange(conn: &mut Stream, request: &Request) -> Result<Response, ClientError> {
    write_frame(conn, &request.encode()).map_err(|e| {
        if is_timeout(&e) {
            ClientError::Timeout
        } else {
            ClientError::Frame(FrameError::Io(e))
        }
    })?;
    let payload = match read_frame(conn, RESPONSE_FRAME_LIMIT) {
        Ok(Some(payload)) => payload,
        Ok(None) => return Err(ClientError::ClosedEarly),
        Err(FrameError::Io(e)) if is_timeout(&e) => return Err(ClientError::Timeout),
        Err(e) => return Err(ClientError::Frame(e)),
    };
    Response::decode(&payload).map_err(ClientError::Decode)
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Polls `endpoint` with `Ping` until it answers or `timeout` elapses;
/// returns the connected client on success. The startup handshake every
/// harness and smoke script uses.
pub fn wait_ready(endpoint: &Endpoint, timeout: Duration) -> Result<Client, ClientError> {
    let mut client = Client::connect(endpoint.clone())?;
    let deadline = Instant::now() + timeout;
    loop {
        match client.call(&Request::Ping) {
            Ok(_) => return Ok(client),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_reject() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7411").unwrap(),
            Endpoint::Tcp("127.0.0.1:7411".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/a.sock").unwrap(),
            Endpoint::Unix("/tmp/a.sock".into())
        );
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("nohost").is_err());
        assert!(Endpoint::parse("host:notaport").is_err());

        let list = Endpoint::parse_list("a:1, b:2 ,unix:/s.sock").unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[2], Endpoint::Unix("/s.sock".into()));
        assert!(Endpoint::parse_list("").is_err());
        assert!(Endpoint::parse_list(",,").is_err());
    }

    #[test]
    fn endpoint_display_roundtrips_through_parse() {
        for raw in ["127.0.0.1:9", "unix:/x/y.sock"] {
            let ep = Endpoint::parse(raw).unwrap();
            assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            attempts: 8,
            min_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(150),
        };
        assert_eq!(policy.nominal_backoff(1), Duration::from_millis(25));
        assert_eq!(policy.nominal_backoff(2), Duration::from_millis(50));
        assert_eq!(policy.nominal_backoff(3), Duration::from_millis(100));
        assert_eq!(policy.nominal_backoff(4), Duration::from_millis(150));
        assert_eq!(policy.nominal_backoff(30), Duration::from_millis(150));
    }

    #[test]
    fn write_classification_routes_only_replicated_writes() {
        assert!(is_replicated_write(&Request::ApplyUpdates {
            updates: vec![]
        }));
        for req in [
            Request::Ping,
            Request::Shutdown,
            Request::Promote,
            Request::Query {
                eps: 0.5,
                mu: 2,
                want_labels: false,
            },
        ] {
            assert!(!is_replicated_write(&req));
        }
    }

    #[test]
    fn empty_endpoint_list_is_a_config_error() {
        match Client::new(ClientConfig::new(vec![])) {
            Err(ClientError::Config(_)) => {}
            other => panic!("expected config error, got {:?}", other.map(|_| ())),
        }
    }
}
