//! End-to-end daemon tests over real TCP connections on an OS-chosen port.
//!
//! The headline check is the ISSUE's concurrency-correctness criterion:
//! N parallel clients issuing identical `(eps, mu)` queries must receive
//! responses *bit-identical* to each other and to the serially computed
//! `index query` answer.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use anyscan::RunControl;
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
use anyscan_graph::{CsrGraph, VertexPermutation};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::ScanParams;
use anyscan_serve::protocol::{
    read_frame, write_frame, ErrorCode, LabelBlock, QuerySummary, Request, Response,
    RESPONSE_FRAME_LIMIT,
};
use anyscan_serve::server::role_code;
use anyscan_serve::{Listener, Server, ServerConfig};
use anyscan_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.5;
const MU: u32 = 4;

fn test_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(7);
    let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(300, 3));
    g
}

struct Daemon {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    stop: RunControl,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(config: ServerConfig) -> Daemon {
        let g = test_graph();
        let idx = SimilarityIndex::build(&g, 1);
        let perm = VertexPermutation::identity(g.num_vertices());
        let server = Arc::new(Server::new(g, perm, idx, config, Telemetry::enabled()).unwrap());
        let (listener, addr) = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let stop = RunControl::new();
        let join = {
            let server = Arc::clone(&server);
            let stop = stop.clone();
            std::thread::spawn(move || server.serve(listener, &stop))
        };
        Daemon {
            server,
            addr,
            stop,
            join: Some(join),
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.cancel();
        if let Some(join) = self.join.take() {
            join.join().unwrap().unwrap();
        }
    }
}

/// One request/response exchange, returning the raw response payload.
fn call_raw<S: Read + Write>(stream: &mut S, request: &Request) -> Vec<u8> {
    write_frame(stream, &request.encode()).unwrap();
    read_frame(stream, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .expect("daemon closed the connection")
}

fn call<S: Read + Write>(stream: &mut S, request: &Request) -> Response {
    Response::decode(&call_raw(stream, request)).unwrap()
}

/// The serially computed ground truth: what `index query` would answer.
fn serial_answer() -> (QuerySummary, LabelBlock) {
    let g = test_graph();
    let idx = SimilarityIndex::build(&g, 1);
    let c = idx.query(&g, ScanParams::new(EPS, MU as usize));
    let rc = c.role_counts();
    (
        QuerySummary {
            clusters: c.num_clusters() as u32,
            cores: rc.cores as u32,
            borders: rc.borders as u32,
            hubs: rc.hubs as u32,
            outliers: rc.outliers as u32,
        },
        LabelBlock {
            labels: c.labels.clone(),
            roles: c.roles.iter().copied().map(role_code).collect(),
        },
    )
}

#[test]
fn concurrent_queries_are_bit_identical_to_serial() {
    let daemon = Daemon::start(ServerConfig::default());
    let (summary, labels) = serial_answer();
    let expected = Response::Query {
        summary,
        labels: Some(labels),
    }
    .encode();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let mut stream = daemon.connect();
            std::thread::spawn(move || {
                call_raw(
                    &mut stream,
                    &Request::Query {
                        eps: EPS,
                        mu: MU,
                        want_labels: true,
                    },
                )
            })
        })
        .collect();
    for client in clients {
        let raw = client.join().unwrap();
        assert_eq!(
            raw, expected,
            "a concurrent response diverged from the serial answer"
        );
    }
    assert_eq!(daemon.server.stats().queries, 8);
    assert_eq!(daemon.server.stats().protocol_errors, 0);
}

#[test]
fn membership_lookups_match_full_labels() {
    let daemon = Daemon::start(ServerConfig::default());
    let (_, labels) = serial_answer();
    let mut stream = daemon.connect();
    for vertex in [0u32, 1, 57, 150, 299] {
        match call(
            &mut stream,
            &Request::Membership {
                vertex,
                eps: EPS,
                mu: MU,
            },
        ) {
            Response::Membership { label, role } => {
                assert_eq!(label, labels.labels[vertex as usize], "vertex {vertex}");
                assert_eq!(role, labels.roles[vertex as usize], "vertex {vertex}");
            }
            other => panic!("expected Membership, got {other:?}"),
        }
    }
}

#[test]
fn anytime_runs_complete_and_respect_budgets() {
    let daemon = Daemon::start(ServerConfig::default());
    let mut stream = daemon.connect();
    // Unbounded run: completes exactly.
    match call(
        &mut stream,
        &Request::Run {
            eps: EPS,
            mu: MU,
            deadline_ms: 0,
            max_blocks: 0,
        },
    ) {
        Response::Run {
            completion, blocks, ..
        } => {
            assert_eq!(completion, 0, "expected a complete run");
            assert!(blocks > 0);
        }
        other => panic!("expected Run, got {other:?}"),
    }
    // One-block budget: the anytime driver stops early with a typed label.
    match call(
        &mut stream,
        &Request::Run {
            eps: EPS,
            mu: MU,
            deadline_ms: 0,
            max_blocks: 1,
        },
    ) {
        Response::Run { completion, .. } => {
            assert_eq!(completion, 3, "expected budget_exhausted");
        }
        other => panic!("expected Run, got {other:?}"),
    }
}

#[test]
fn bad_requests_get_typed_errors_and_the_connection_survives() {
    let daemon = Daemon::start(ServerConfig::default());
    let mut stream = daemon.connect();

    // Unknown opcode: typed BadRequest, stream stays usable.
    write_frame(&mut stream, &[0x7f, 1, 2, 3]).unwrap();
    let payload = read_frame(&mut stream, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected Error, got {other:?}"),
    }

    // Semantic violations: eps out of range, vertex out of range.
    for request in [
        Request::Query {
            eps: 1.5,
            mu: MU,
            want_labels: false,
        },
        Request::Query {
            eps: EPS,
            mu: 0,
            want_labels: false,
        },
        Request::Membership {
            vertex: 300,
            eps: EPS,
            mu: MU,
        },
    ] {
        match call(&mut stream, &request) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected Error for {request:?}, got {other:?}"),
        }
    }

    // The same connection still answers work after all those rejections.
    match call(&mut stream, &Request::Ping) {
        Response::Ping(health) => assert!(health.stats.requests >= 4),
        other => panic!("expected Ping, got {other:?}"),
    }

    // An oversized frame is answered best-effort and the connection closed.
    let mut fresh = daemon.connect();
    fresh.write_all(&u32::MAX.to_le_bytes()).unwrap();
    fresh.flush().unwrap();
    let answer = read_frame(&mut fresh, RESPONSE_FRAME_LIMIT).unwrap();
    if let Some(payload) = answer {
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected Error, got {other:?}"),
        }
        // ... and then EOF.
        assert!(read_frame(&mut fresh, RESPONSE_FRAME_LIMIT)
            .unwrap()
            .is_none());
    }
    assert!(daemon.server.stats().protocol_errors >= 1);
}

#[test]
fn saturated_admission_returns_typed_overloaded() {
    let daemon = Daemon::start(ServerConfig {
        max_inflight: 1,
        queue_depth: 0,
        ..ServerConfig::default()
    });
    // Deterministically hold the only execution slot.
    let permit = daemon.server.admission().acquire().unwrap();
    let mut stream = daemon.connect();
    match call(
        &mut stream,
        &Request::Query {
            eps: EPS,
            mu: MU,
            want_labels: false,
        },
    ) {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert!(message.contains("overloaded"), "{message}");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Pings still answer while saturated (health checks bypass admission).
    assert!(matches!(
        call(&mut stream, &Request::Ping),
        Response::Ping(_)
    ));
    assert_eq!(daemon.server.stats().overloaded, 1);

    // Releasing the slot restores service on the same connection.
    drop(permit);
    for _ in 0..100 {
        if daemon.server.admission().inflight() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(matches!(
        call(
            &mut stream,
            &Request::Query {
                eps: EPS,
                mu: MU,
                want_labels: false,
            },
        ),
        Response::Query { .. }
    ));
}

#[test]
fn shutdown_request_drains_the_daemon() {
    let mut daemon = Daemon::start(ServerConfig::default());
    let mut stream = daemon.connect();
    assert!(matches!(
        call(&mut stream, &Request::Shutdown),
        Response::Shutdown
    ));
    let join = daemon.join.take().unwrap();
    // The accept loop notices the stop flag and exits on its own.
    join.join().unwrap().unwrap();
    assert!(daemon.server.is_stopping());
}
