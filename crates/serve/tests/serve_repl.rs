//! Replication end-to-end: a primary daemon streams committed ASUL entries
//! to a replica over the `Subscribe` protocol, the replica serves reads at
//! its applied epoch, rejects writes with a typed `NotPrimary` leader hint,
//! and a `Promote` makes it a writable primary whose bumped term fences the
//! old one.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anyscan::RunControl;
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate};
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
use anyscan_graph::CsrGraph;
use anyscan_serve::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireUpdate, RESPONSE_FRAME_LIMIT,
    UPDATE_INSERT, UPDATE_REMOVE,
};
use anyscan_serve::{
    run_replica_feed, Listener, ReplError, ReplicaFeedConfig, Server, ServerConfig, ROLE_PRIMARY,
    ROLE_REPLICA,
};
use anyscan_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.5;
const MU: u32 = 4;

fn test_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(200, 3));
    g
}

struct Daemon {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    stop: RunControl,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    feed: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// A dynamic primary with an in-memory shipping log.
    fn start_primary(config: ServerConfig) -> Daemon {
        Daemon::start(config, None)
    }

    /// A dynamic replica following `primary`'s address.
    fn start_replica_of(primary: &Daemon) -> Daemon {
        Daemon::start(ServerConfig::default(), Some(primary.addr.to_string()))
    }

    fn start(config: ServerConfig, replica_of: Option<String>) -> Daemon {
        let g = test_graph();
        let engine = DynamicIndex::new(&g, 2).unwrap();
        let server =
            Arc::new(Server::new_dynamic(engine, None, config, Telemetry::enabled()).unwrap());
        let (listener, addr) = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let stop = RunControl::new();
        let join = {
            let server = Arc::clone(&server);
            let stop = stop.clone();
            std::thread::spawn(move || server.serve(listener, &stop))
        };
        let feed = replica_of.map(|primary| {
            server.become_replica(&primary);
            run_replica_feed(Arc::clone(&server), ReplicaFeedConfig::new(primary))
        });
        Daemon {
            server,
            addr,
            stop,
            join: Some(join),
            feed,
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.cancel();
        if let Some(join) = self.join.take() {
            join.join().unwrap().unwrap();
        }
        // The feed notices the drain within its read-timeout tick.
        if let Some(feed) = self.feed.take() {
            feed.join().unwrap();
        }
    }
}

fn call<S: Read + Write>(stream: &mut S, request: &Request) -> Response {
    write_frame(stream, &request.encode()).unwrap();
    let payload = read_frame(stream, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .expect("daemon closed the connection");
    Response::decode(&payload).unwrap()
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Two mutation batches: inserts, a remove, and a relaxed no-op remove.
fn batches() -> Vec<Vec<WireUpdate>> {
    vec![
        vec![
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 0,
                v: 199,
                w: 0.9,
            },
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 1,
                v: 150,
                w: 0.8,
            },
        ],
        vec![
            WireUpdate {
                kind: UPDATE_REMOVE,
                u: 0,
                v: 199,
                w: 0.0,
            },
            WireUpdate {
                kind: UPDATE_REMOVE,
                u: 7,
                v: 123,
                w: 0.0,
            }, // likely absent: relaxed no-op
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 50,
                v: 51,
                w: 1.5,
            },
        ],
    ]
}

fn labels_of<S: Read + Write>(conn: &mut S) -> Vec<u32> {
    match call(
        conn,
        &Request::Query {
            eps: EPS,
            mu: MU,
            want_labels: true,
        },
    ) {
        Response::Query {
            labels: Some(block),
            ..
        } => block.labels,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn replica_follows_primary_and_serves_identical_reads() {
    let primary = Daemon::start_primary(ServerConfig::default());
    let replica = Daemon::start_replica_of(&primary);

    // Health probes identify the roles before any traffic.
    let mut pconn = primary.connect();
    let mut rconn = replica.connect();
    match call(&mut pconn, &Request::Ping) {
        Response::Ping(h) => {
            assert_eq!(h.role, ROLE_PRIMARY);
            assert_eq!(h.watermark, 0);
        }
        other => panic!("unexpected response {other:?}"),
    }
    match call(&mut rconn, &Request::Ping) {
        Response::Ping(h) => assert_eq!(h.role, ROLE_REPLICA),
        other => panic!("unexpected response {other:?}"),
    }

    // Write through the primary; the stream carries every committed entry.
    let mut expect_seq = 0u64;
    for batch in batches() {
        expect_seq += batch.len() as u64;
        match call(&mut pconn, &Request::ApplyUpdates { updates: batch }) {
            Response::ApplyUpdates { seq, .. } => assert_eq!(seq, expect_seq),
            other => panic!("unexpected response {other:?}"),
        }
    }
    wait_for("replica catch-up", || {
        replica.server.durable_watermark() == expect_seq
    });

    // Reads at the applied epoch are bit-identical to the primary's.
    assert_eq!(labels_of(&mut pconn), labels_of(&mut rconn));
    match call(&mut rconn, &Request::Ping) {
        Response::Ping(h) => {
            assert_eq!(h.role, ROLE_REPLICA);
            assert_eq!(h.watermark, expect_seq);
            // The back-fill may arrive as one frame or batch-by-batch, so
            // only the bounds of the epoch counter are deterministic.
            assert!((1..=2).contains(&h.epoch), "epoch: {}", h.epoch);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Writes to the replica: typed refusal carrying the leader hint.
    match call(
        &mut rconn,
        &Request::ApplyUpdates {
            updates: vec![WireUpdate {
                kind: UPDATE_INSERT,
                u: 2,
                v: 3,
                w: 1.0,
            }],
        },
    ) {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert_eq!(message, primary.addr.to_string());
        }
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn promote_makes_replica_writable_and_fences_the_old_term() {
    let primary = Daemon::start_primary(ServerConfig::default());
    let replica = Daemon::start_replica_of(&primary);

    let mut pconn = primary.connect();
    let mut expect_seq = 0u64;
    for batch in batches() {
        expect_seq += batch.len() as u64;
        call(&mut pconn, &Request::ApplyUpdates { updates: batch });
    }
    wait_for("replica catch-up", || {
        replica.server.durable_watermark() == expect_seq
    });

    // Promote: term bumps past everything seen, role flips, feed exits.
    let mut rconn = replica.connect();
    match call(&mut rconn, &Request::Promote) {
        Response::Promoted {
            term, watermark, ..
        } => {
            assert_eq!(term, 1);
            assert_eq!(watermark, expect_seq);
        }
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(replica.server.role(), ROLE_PRIMARY);
    assert_eq!(replica.server.term(), 1);

    // Promote is idempotent on a primary: same coordinates, no term bump.
    match call(&mut rconn, &Request::Promote) {
        Response::Promoted { term, .. } => assert_eq!(term, 1),
        other => panic!("unexpected response {other:?}"),
    }

    // The new primary accepts writes and keeps the primary-assigned order.
    match call(
        &mut rconn,
        &Request::ApplyUpdates {
            updates: vec![WireUpdate {
                kind: UPDATE_INSERT,
                u: 10,
                v: 190,
                w: 0.6,
            }],
        },
    ) {
        Response::ApplyUpdates { seq, .. } => assert_eq!(seq, expect_seq + 1),
        other => panic!("unexpected response {other:?}"),
    }

    // A frame from the deposed term is fenced, never applied.
    let stale = [EdgeUpdate {
        seq: expect_seq + 2,
        u: 11,
        v: 12,
        op: EdgeOp::Insert(0.5),
    }];
    match replica.server.apply_replicated(0, &stale) {
        Err(ReplError::Fenced { seen: 0, ours: 1 }) => {}
        other => panic!("expected fencing, got {other:?}"),
    }
    assert_eq!(replica.server.durable_watermark(), expect_seq + 1);
}

#[test]
fn subscribe_ahead_of_the_durable_watermark_is_rejected_not_hung() {
    let primary = Daemon::start_primary(ServerConfig::default());
    let mut conn = primary.connect();
    // A subscriber claiming a watermark the primary never reached: the ASUL
    // tail can't satisfy it, so the answer is a typed rejection.
    write_frame(&mut conn, &Request::Subscribe { watermark: 999 }.encode()).unwrap();
    let payload = read_frame(&mut conn, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .expect("primary closed without a typed rejection");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("ahead of"), "message: {message}");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // ... and the connection is closed, not parked.
    assert!(read_frame(&mut conn, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .is_none());
}

#[test]
fn stalled_connections_get_a_typed_timeout_close() {
    let primary = Daemon::start_primary(ServerConfig {
        conn_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let mut idle = primary.connect();
    // Send nothing: the read deadline passes, the daemon answers a typed
    // Timeout (best-effort) and closes.
    let payload = read_frame(&mut idle, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .expect("daemon closed without the typed timeout");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("unexpected response {other:?}"),
    }
    assert!(read_frame(&mut idle, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .is_none());
    wait_for("timeout tally", || primary.server.stats().timeouts == 1);

    // The daemon itself is healthy: a fresh, prompt client gets answers.
    let mut fresh = primary.connect();
    match call(&mut fresh, &Request::Ping) {
        Response::Ping(h) => assert_eq!(h.stats.timeouts, 1),
        other => panic!("unexpected response {other:?}"),
    }
}
