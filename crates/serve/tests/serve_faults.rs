//! The `serve::read_frame` failpoint: an injected IO error on a daemon
//! connection read must kill only that connection — counted as a protocol
//! error — while the daemon keeps serving.
//!
//! This file is its own test binary (own process) because failpoints are
//! process-global; the client side deliberately frames by hand so the
//! daemon's `read_frame` is the only caller that can consume the fault.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anyscan::RunControl;
use anyscan_faults::FaultAction;
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
use anyscan_graph::VertexPermutation;
use anyscan_index::SimilarityIndex;
use anyscan_serve::protocol::{Request, Response};
use anyscan_serve::{Listener, Server, ServerConfig};
use anyscan_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Client-side framing without `protocol::read_frame`, so this process's
/// only `serve::read_frame` caller is the daemon.
fn raw_call(stream: &mut TcpStream, request: &Request) -> Option<Response> {
    let payload = request.encode();
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .ok()?;
    stream.write_all(&payload).ok()?;
    stream.flush().ok()?;
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    stream.read_exact(&mut body).ok()?;
    Some(Response::decode(&body).unwrap())
}

#[test]
fn injected_read_fault_kills_one_connection_not_the_daemon() {
    let mut rng = StdRng::seed_from_u64(7);
    let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(120, 3));
    let idx = SimilarityIndex::build(&g, 1);
    let perm = VertexPermutation::identity(g.num_vertices());
    let server =
        Arc::new(Server::new(g, perm, idx, ServerConfig::default(), Telemetry::enabled()).unwrap());
    let (listener, addr) = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let stop = RunControl::new();
    let join = {
        let server = Arc::clone(&server);
        let stop = stop.clone();
        std::thread::spawn(move || server.serve(listener, &stop))
    };

    // Arm the failpoint before the first connection, so the doomed client
    // is deterministically the only possible consumer of the fault (any
    // earlier connection's handler could re-enter read_frame and race for
    // the hit). The post-fault query below is the daemon-health baseline.
    anyscan_faults::configure("serve::read_frame", FaultAction::IoError, 1);
    let mut doomed = TcpStream::connect(addr).unwrap();
    // The handler's read_frame fires the fault at entry and closes the
    // connection; our ping gets EOF (or a reset), never a response.
    assert!(raw_call(&mut doomed, &Request::Ping).is_none());

    // Exactly one protocol error was counted, and the fault was consumed.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().protocol_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().protocol_errors, 1);
    assert!(anyscan_faults::injected() >= 1);

    // The daemon survives: fresh connections get real answers.
    let mut fresh = TcpStream::connect(addr).unwrap();
    match raw_call(
        &mut fresh,
        &Request::Query {
            eps: 0.5,
            mu: 4,
            want_labels: false,
        },
    ) {
        Some(Response::Query { summary, .. }) => assert!(summary.clusters > 0),
        other => panic!("daemon did not survive the fault: {other:?}"),
    }

    // Close client connections before stopping so the drain loop doesn't
    // sit out its full grace period waiting on their open handlers.
    drop(doomed);
    drop(fresh);
    anyscan_faults::clear();
    stop.cancel();
    join.join().unwrap().unwrap();
}
