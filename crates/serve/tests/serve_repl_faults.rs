//! The replication failpoints: injected IO errors on the primary's ack
//! (`repl::ack`), the primary's entry-stream write (`repl::send_entry`) and
//! the replica's frame read (`repl::recv_entry`) each kill one subscription
//! attempt — and the replica's backoff-and-retry loop recovers from all
//! three without losing or reordering a single entry.
//!
//! Own test binary (own process): failpoints are process-global.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anyscan::RunControl;
use anyscan_dynamic::DynamicIndex;
use anyscan_faults::FaultAction;
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
use anyscan_serve::protocol::{
    read_frame, write_frame, Request, Response, WireUpdate, RESPONSE_FRAME_LIMIT, UPDATE_INSERT,
};
use anyscan_serve::{run_replica_feed, Listener, ReplicaFeedConfig, Server, ServerConfig};
use anyscan_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Daemon {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    stop: RunControl,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    feed: Option<std::thread::JoinHandle<()>>,
}

fn start(replica_of: Option<String>) -> Daemon {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(150, 3));
    let engine = DynamicIndex::new(&g, 1).unwrap();
    let server = Arc::new(
        Server::new_dynamic(engine, None, ServerConfig::default(), Telemetry::enabled()).unwrap(),
    );
    let (listener, addr) = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let stop = RunControl::new();
    let join = {
        let server = Arc::clone(&server);
        let stop = stop.clone();
        std::thread::spawn(move || server.serve(listener, &stop))
    };
    let feed = replica_of.map(|primary| {
        server.become_replica(&primary);
        run_replica_feed(Arc::clone(&server), ReplicaFeedConfig::new(primary))
    });
    Daemon {
        server,
        addr,
        stop,
        join: Some(join),
        feed,
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.cancel();
        if let Some(join) = self.join.take() {
            join.join().unwrap().unwrap();
        }
        if let Some(feed) = self.feed.take() {
            feed.join().unwrap();
        }
    }
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn apply_one(conn: &mut TcpStream, u: u32, v: u32) -> u64 {
    let request = Request::ApplyUpdates {
        updates: vec![WireUpdate {
            kind: UPDATE_INSERT,
            u,
            v,
            w: 0.9,
        }],
    };
    write_frame(conn, &request.encode()).unwrap();
    let payload = read_frame(conn, RESPONSE_FRAME_LIMIT).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::ApplyUpdates { seq, .. } => seq,
        other => panic!("unexpected response {other:?}"),
    }
}

/// One sequential pass over all three fault sites. A single test function:
/// failpoints are global state, so concurrent #[test]s would race for hits.
#[test]
fn replica_feed_retries_through_every_replication_fault_site() {
    let primary = start(None);
    let mut conn = TcpStream::connect(primary.addr).unwrap();
    conn.set_nodelay(true).unwrap();

    // Site 1: the ack write fails — the first subscription dies before a
    // single entry ships; the retry succeeds and back-fills everything.
    anyscan_faults::configure("repl::ack", FaultAction::IoError, 1);
    let replica = start(Some(primary.addr.to_string()));
    let seq = apply_one(&mut conn, 0, 149);
    wait_for("catch-up after ack fault", || {
        replica.server.durable_watermark() == seq
    });
    assert!(anyscan_faults::injected() >= 1, "ack fault never consumed");

    // Site 2: the primary's stream write fails mid-subscription — the
    // replica sees a dead stream, reconnects, and resumes past its
    // watermark.
    anyscan_faults::configure("repl::send_entry", FaultAction::IoError, 1);
    let seq = apply_one(&mut conn, 1, 148);
    wait_for("catch-up after send fault", || {
        replica.server.durable_watermark() == seq
    });

    // Site 3: the replica's frame read fails — same recovery, other side.
    anyscan_faults::configure("repl::recv_entry", FaultAction::IoError, 1);
    let seq = apply_one(&mut conn, 2, 147);
    wait_for("catch-up after recv fault", || {
        replica.server.durable_watermark() == seq
    });

    // Nothing was lost or double-applied across the three recoveries.
    assert_eq!(replica.server.durable_watermark(), 3);
    assert_eq!(replica.server.num_edges(), primary.server.num_edges());
    anyscan_faults::clear();
}
