//! End-to-end tests of the dynamic daemon: `ApplyUpdates` batches mutate the
//! resident graph through the incremental engine while concurrent clients
//! keep querying, and every post-swap answer is bit-identical to a
//! from-scratch index on the mutated graph.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use anyscan::RunControl;
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate, UpdateLog};
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
use anyscan_graph::CsrGraph;
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::ScanParams;
use anyscan_serve::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireUpdate, RESPONSE_FRAME_LIMIT,
    UPDATE_INSERT, UPDATE_REMOVE, UPDATE_REWEIGHT,
};
use anyscan_serve::{Listener, Server, ServerConfig};
use anyscan_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.5;
const MU: u32 = 4;

fn test_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, _) = planted_partition(&mut rng, &PlantedPartitionParams::well_separated(200, 3));
    g
}

struct Daemon {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    stop: RunControl,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start_dynamic(log: Option<(UpdateLog, std::path::PathBuf)>) -> Daemon {
        let g = test_graph();
        let engine = DynamicIndex::new(&g, 2).unwrap();
        let server = Arc::new(
            Server::new_dynamic(engine, log, ServerConfig::default(), Telemetry::enabled())
                .unwrap(),
        );
        let (listener, addr) = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let stop = RunControl::new();
        let join = {
            let server = Arc::clone(&server);
            let stop = stop.clone();
            std::thread::spawn(move || server.serve(listener, &stop))
        };
        Daemon {
            server,
            addr,
            stop,
            join: Some(join),
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.cancel();
        if let Some(join) = self.join.take() {
            join.join().unwrap().unwrap();
        }
    }
}

fn call<S: Read + Write>(stream: &mut S, request: &Request) -> Response {
    write_frame(stream, &request.encode()).unwrap();
    let payload = read_frame(stream, RESPONSE_FRAME_LIMIT)
        .unwrap()
        .expect("daemon closed the connection");
    Response::decode(&payload).unwrap()
}

/// Three batches that exercise all three ops, including relaxed no-ops.
fn batches() -> Vec<Vec<WireUpdate>> {
    vec![
        vec![
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 0,
                v: 199,
                w: 0.9,
            },
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 1,
                v: 150,
                w: 0.8,
            },
            WireUpdate {
                kind: UPDATE_REMOVE,
                u: 0,
                v: 199,
                w: 0.0,
            },
        ],
        vec![
            WireUpdate {
                kind: UPDATE_REWEIGHT,
                u: 1,
                v: 150,
                w: 0.3,
            },
            WireUpdate {
                kind: UPDATE_REMOVE,
                u: 7,
                v: 123,
                w: 0.0,
            }, // likely absent
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 50,
                v: 51,
                w: 1.5,
            },
        ],
        vec![
            WireUpdate {
                kind: UPDATE_INSERT,
                u: 60,
                v: 170,
                w: 0.7,
            },
            WireUpdate {
                kind: UPDATE_REWEIGHT,
                u: 60,
                v: 170,
                w: 0.2,
            },
        ],
    ]
}

/// Mirrors the daemon's mutations client-side (same seq assignment rule) so
/// the test can compute the expected final state independently.
fn mirror_engine(batches: &[Vec<WireUpdate>]) -> DynamicIndex {
    let g = test_graph();
    let mut engine = DynamicIndex::new(&g, 1).unwrap();
    let mut seq = 0u64;
    for batch in batches {
        let updates: Vec<EdgeUpdate> = batch
            .iter()
            .map(|up| {
                seq += 1;
                let op = match up.kind {
                    UPDATE_INSERT => EdgeOp::Insert(up.w),
                    UPDATE_REMOVE => EdgeOp::Remove,
                    _ => EdgeOp::Reweight(up.w),
                };
                EdgeUpdate {
                    seq,
                    u: up.u,
                    v: up.v,
                    op,
                }
            })
            .collect();
        engine
            .apply_batch(&updates, &Telemetry::disabled())
            .unwrap();
    }
    engine
}

#[test]
fn updates_apply_under_concurrent_queries_and_match_fresh_build() {
    let dir = std::env::temp_dir().join(format!("serve-dyn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("daemon.asul");
    let log = UpdateLog::new(&test_graph());
    let daemon = Daemon::start_dynamic(Some((log, log_path.clone())));

    // Background clients hammer queries for the whole update sequence; every
    // answer must decode and be internally consistent, whatever epoch it saw.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let mut conn = daemon.connect();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match call(
                        &mut conn,
                        &Request::Query {
                            eps: EPS,
                            mu: MU,
                            want_labels: false,
                        },
                    ) {
                        Response::Query { .. } => served += 1,
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            ..
                        } => {}
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                served
            })
        })
        .collect();

    let mut writer = daemon.connect();
    let mut expect_seq = 0u64;
    for (i, batch) in batches().into_iter().enumerate() {
        let len = batch.len() as u64;
        expect_seq += len;
        match call(&mut writer, &Request::ApplyUpdates { updates: batch }) {
            Response::ApplyUpdates {
                applied,
                skipped,
                seq,
                epoch,
            } => {
                assert_eq!(
                    seq, expect_seq,
                    "daemon assigns contiguous sequence numbers"
                );
                assert_eq!(epoch, (i + 1) as u64, "every batch installs a new epoch");
                assert_eq!(applied + skipped, len, "every update is accounted for");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let served = r.join().unwrap();
        assert!(served > 0, "readers must have been answered during updates");
    }

    // The served snapshot now equals a from-scratch index on the mirrored
    // final graph, bit for bit.
    let mirror = mirror_engine(&batches());
    let final_csr = mirror.to_csr().unwrap();
    let fresh = SimilarityIndex::build(&final_csr, 1);
    let expected = fresh.query(&final_csr, ScanParams::new(EPS, MU as usize));
    let mut conn = daemon.connect();
    match call(
        &mut conn,
        &Request::Query {
            eps: EPS,
            mu: MU,
            want_labels: true,
        },
    ) {
        Response::Query {
            labels: Some(block),
            ..
        } => {
            assert_eq!(block.labels, expected.labels);
            let expected_roles: Vec<u8> = expected
                .roles
                .iter()
                .map(|&r| anyscan_serve::role_code(r))
                .collect();
            assert_eq!(block.roles, expected_roles);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Ping reports the accepted batches; the durable log carries them all.
    match call(&mut conn, &Request::Ping) {
        Response::Ping(health) => assert_eq!(health.stats.updates, 3),
        other => panic!("unexpected response {other:?}"),
    }
    let durable = UpdateLog::load(&log_path).unwrap();
    assert_eq!(durable.applied_seq(), expect_seq);
    assert_eq!(durable.entries().len(), expect_seq as usize);
    assert_eq!(daemon.server.current_epoch(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_batches_are_rejected_without_an_epoch_swap() {
    let daemon = Daemon::start_dynamic(None);
    let mut conn = daemon.connect();

    // Out-of-range endpoint: typed BadRequest, nothing applied.
    match call(
        &mut conn,
        &Request::ApplyUpdates {
            updates: vec![WireUpdate {
                kind: UPDATE_INSERT,
                u: 0,
                v: 100_000,
                w: 1.0,
            }],
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(daemon.server.current_epoch(), 0);

    // Empty batch: a no-op success echoing the current state.
    match call(&mut conn, &Request::ApplyUpdates { updates: vec![] }) {
        Response::ApplyUpdates {
            applied: 0,
            skipped: 0,
            seq: 0,
            epoch: 0,
        } => {}
        other => panic!("unexpected response {other:?}"),
    }

    // A valid batch still lands after the rejection.
    match call(
        &mut conn,
        &Request::ApplyUpdates {
            updates: vec![WireUpdate {
                kind: UPDATE_INSERT,
                u: 0,
                v: 1,
                w: 1.0,
            }],
        },
    ) {
        Response::ApplyUpdates {
            applied: 1,
            seq: 1,
            epoch: 1,
            ..
        } => {}
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn static_daemon_rejects_apply_updates() {
    let g = test_graph();
    let idx = SimilarityIndex::build(&g, 1);
    let perm = anyscan_graph::VertexPermutation::identity(g.num_vertices());
    let server = Arc::new(
        Server::new(g, perm, idx, ServerConfig::default(), Telemetry::disabled()).unwrap(),
    );
    assert!(!server.is_dynamic());
    let resp = server.dispatch(Request::ApplyUpdates {
        updates: vec![WireUpdate {
            kind: UPDATE_REMOVE,
            u: 0,
            v: 1,
            w: 0.0,
        }],
    });
    match resp {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("dynamic"), "got: {message}");
        }
        other => panic!("unexpected response {other:?}"),
    }
}
