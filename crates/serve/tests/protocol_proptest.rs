//! Corrupt-input robustness for the serve wire protocol, in the same style
//! as the ASIX corrupt-input suite: any mutation, truncation or garbage
//! payload must yield a typed error, never a panic — and valid encodings
//! must round-trip exactly.

use proptest::prelude::*;
use proptest::strategy::Strategy;

use anyscan_serve::protocol::{
    read_frame, write_frame, DecodeError, FrameError, Request, Response,
};

/// All five request shapes, driven off one field tuple (the vendored
/// proptest facade has no `prop_oneof`, so a selector field picks the arm).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..5,
        0.0f64..=1.0,
        0u32..10_000,
        0u32..100_000,
        0u64..10_000,
        0u32..2,
    )
        .prop_map(|(kind, eps, mu, vertex, max_blocks, flag)| match kind {
            0 => Request::Query {
                eps,
                mu,
                want_labels: flag == 1,
            },
            1 => Request::Membership { vertex, eps, mu },
            2 => Request::Run {
                eps,
                mu,
                deadline_ms: vertex,
                max_blocks,
            },
            3 => Request::Ping,
            _ => Request::Shutdown,
        })
}

proptest! {
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn truncated_requests_are_typed_errors(req in arb_request(), cut_frac in 0.0f64..1.0) {
        let full = req.encode();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        // Every opcode has a fixed layout, so any strict prefix is a typed
        // Truncated error (never a panic, never a bogus success).
        prop_assert_eq!(Request::decode(&full[..cut]), Err(DecodeError::Truncated));
    }

    #[test]
    fn mutated_requests_never_panic(req in arb_request(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut raw = req.encode();
        let byte = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[byte] ^= 1 << bit;
        // Any outcome is fine except a panic; a successful decode must
        // re-encode to the mutated bytes (no silent canonicalization).
        if let Ok(decoded) = Request::decode(&raw) {
            prop_assert_eq!(decoded.encode(), raw);
        }
    }

    #[test]
    fn garbage_requests_never_panic(raw in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = Request::decode(&raw);
    }

    #[test]
    fn garbage_responses_never_panic(raw in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Response::decode(&raw);
    }

    #[test]
    fn frame_layer_rejects_bad_lengths(len in 0u32..=u32::MAX, max in 0usize..1024) {
        // A lone header claiming `len` bytes with no payload behind it:
        // oversized beyond `max`, truncated otherwise (unless len == 0).
        let wire = len.to_le_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor, max) {
            Ok(Some(payload)) => prop_assert!(len == 0 && payload.is_empty()),
            Ok(None) => prop_assert!(false, "header read as clean EOF"),
            Err(FrameError::Oversized { len: l, max: m }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(m, max);
                prop_assert!(l > m);
            }
            Err(FrameError::Truncated { needed, got }) => {
                prop_assert_eq!(needed, len as usize);
                prop_assert_eq!(got, 0);
                prop_assert!(len as usize <= max);
            }
            Err(FrameError::Io(e)) => prop_assert!(false, "unexpected io error: {}", e),
        }
    }

    #[test]
    fn framed_payloads_roundtrip(payload in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let back = read_frame(&mut cursor, 512).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        prop_assert!(read_frame(&mut cursor, 512).unwrap().is_none());
    }
}
