//! Corrupt-input robustness for the serve wire protocol, in the same style
//! as the ASIX corrupt-input suite: any mutation, truncation or garbage
//! payload must yield a typed error, never a panic — and valid encodings
//! must round-trip exactly.

use anyscan_dynamic::{EdgeOp, EdgeUpdate};
use proptest::prelude::*;
use proptest::strategy::Strategy;

use anyscan_serve::protocol::{
    read_frame, write_frame, DecodeError, FrameError, Health, Request, Response, ServeStats,
    WireUpdate,
};

/// All eight request shapes, driven off one field tuple (the vendored
/// proptest facade has no `prop_oneof`, so a selector field picks the arm).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        (
            0usize..8,
            0.0f64..=1.0,
            0u32..10_000,
            0u32..100_000,
            0u64..10_000,
            0u32..2,
        ),
        proptest::collection::vec((0u8..3, 0u32..1000, 0u32..1000, 0.0f64..2.0), 0..4),
    )
        .prop_map(
            |((kind, eps, mu, vertex, max_blocks, flag), ups)| match kind {
                0 => Request::Query {
                    eps,
                    mu,
                    want_labels: flag == 1,
                },
                1 => Request::Membership { vertex, eps, mu },
                2 => Request::Run {
                    eps,
                    mu,
                    deadline_ms: vertex,
                    max_blocks,
                },
                3 => Request::Ping,
                4 => Request::Shutdown,
                5 => Request::ApplyUpdates {
                    updates: ups
                        .into_iter()
                        .map(|(k, u, v, w)| WireUpdate { kind: k, u, v, w })
                        .collect(),
                },
                6 => Request::Subscribe {
                    watermark: max_blocks,
                },
                _ => Request::Promote,
            },
        )
}

/// The replication-facing response frames (the frames PR 9 added), again
/// selector-driven: `Ping(Health)`, `Subscribed`, `LogEntries`, `Promoted`.
fn arb_repl_response() -> impl Strategy<Value = Response> {
    (
        (0usize..4, 0u64..1000, 0u64..1000, 0u64..10_000, 0u32..2),
        proptest::collection::vec(
            (1u64..10_000, 0u8..3, 0u32..1000, 0u32..1000, 0.0f64..2.0),
            0..5,
        ),
    )
        .prop_map(
            |((kind, term, epoch, watermark, role), entries)| match kind {
                0 => Response::Ping(Health {
                    role: role as u8,
                    term,
                    epoch,
                    watermark,
                    inflight: role,
                    queued: epoch as u32,
                    stats: ServeStats {
                        requests: term,
                        queries: epoch,
                        lookups: watermark,
                        runs: 0,
                        overloaded: 1,
                        protocol_errors: 2,
                        updates: 3,
                        timeouts: 4,
                    },
                }),
                1 => Response::Subscribed { term, watermark },
                2 => Response::LogEntries {
                    term,
                    entries: entries
                        .into_iter()
                        .map(|(seq, code, u, v, w)| EdgeUpdate {
                            seq,
                            u,
                            v,
                            op: match code {
                                0 => EdgeOp::Insert(w),
                                1 => EdgeOp::Remove,
                                _ => EdgeOp::Reweight(w),
                            },
                        })
                        .collect(),
                },
                _ => Response::Promoted {
                    term,
                    epoch,
                    watermark,
                },
            },
        )
}

proptest! {
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn truncated_requests_are_typed_errors(req in arb_request(), cut_frac in 0.0f64..1.0) {
        let full = req.encode();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        // Every opcode has a fixed layout, so any strict prefix is a typed
        // Truncated error (never a panic, never a bogus success).
        prop_assert_eq!(Request::decode(&full[..cut]), Err(DecodeError::Truncated));
    }

    #[test]
    fn mutated_requests_never_panic(req in arb_request(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut raw = req.encode();
        let byte = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[byte] ^= 1 << bit;
        // Any outcome is fine except a panic; a successful decode must
        // re-encode to the mutated bytes (no silent canonicalization).
        if let Ok(decoded) = Request::decode(&raw) {
            prop_assert_eq!(decoded.encode(), raw);
        }
    }

    #[test]
    fn garbage_requests_never_panic(raw in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = Request::decode(&raw);
    }

    #[test]
    fn repl_responses_roundtrip(resp in arb_repl_response()) {
        let decoded = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn truncated_repl_responses_are_typed_errors(
        resp in arb_repl_response(),
        cut_frac in 0.0f64..1.0,
    ) {
        let full = resp.encode();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        // Every layout is need()-guarded (including the count-prefixed
        // LogEntries entry block), so a strict prefix is always a typed
        // Truncated error — the ASUL-tail contract at the byte level.
        prop_assert_eq!(Response::decode(&full[..cut]), Err(DecodeError::Truncated));
    }

    #[test]
    fn mutated_repl_responses_never_panic(
        resp in arb_repl_response(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut raw = resp.encode();
        let byte = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[byte] ^= 1 << bit;
        // Any outcome but a panic. A successful decode must be stable:
        // re-encoding and re-decoding reproduces the same value (a Remove
        // entry's weight byte is canonicalized away, so byte-identity is
        // deliberately not required).
        if let Ok(decoded) = Response::decode(&raw) {
            prop_assert_eq!(Response::decode(&decoded.encode()).unwrap(), decoded);
        }
    }

    #[test]
    fn garbage_responses_never_panic(raw in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Response::decode(&raw);
    }

    #[test]
    fn frame_layer_rejects_bad_lengths(len in 0u32..=u32::MAX, max in 0usize..1024) {
        // A lone header claiming `len` bytes with no payload behind it:
        // oversized beyond `max`, truncated otherwise (unless len == 0).
        let wire = len.to_le_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor, max) {
            Ok(Some(payload)) => prop_assert!(len == 0 && payload.is_empty()),
            Ok(None) => prop_assert!(false, "header read as clean EOF"),
            Err(FrameError::Oversized { len: l, max: m }) => {
                prop_assert_eq!(l, len as usize);
                prop_assert_eq!(m, max);
                prop_assert!(l > m);
            }
            Err(FrameError::Truncated { needed, got }) => {
                prop_assert_eq!(needed, len as usize);
                prop_assert_eq!(got, 0);
                prop_assert!(len as usize <= max);
            }
            Err(FrameError::Io(e)) => prop_assert!(false, "unexpected io error: {}", e),
        }
    }

    #[test]
    fn framed_payloads_roundtrip(payload in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let back = read_frame(&mut cursor, 512).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        prop_assert!(read_frame(&mut cursor, 512).unwrap().is_none());
    }
}
