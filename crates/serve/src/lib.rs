//! Clustering as a service: the `anyscan serve` daemon.
//!
//! The paper's headline claim is *interactive* structural clustering —
//! re-answer any `(ε, μ)` from a prebuilt similarity index in milliseconds.
//! This crate turns that query path into a trafficked system: a daemon that
//! loads a graph + ASIX index once and answers concurrent requests over a
//! length-framed TCP or unix-domain socket protocol.
//!
//! Three request shapes cover the serving workloads of the related work:
//!
//! - **Query** — full `(ε, μ)` index re-cluster (the all-parameter serving
//!   workload of index-based structural clustering);
//! - **Membership** — per-vertex label/role point lookup (the local-cluster
//!   shape that dominates real traffic);
//! - **Run** — a full anytime run under a per-request [`RunControl`]
//!   deadline/budget, answering with the Lemma-1 best-so-far snapshot.
//!
//! Admission is a bounded queue ([`admission::AdmissionQueue`]): a fixed
//! number of requests execute, a fixed number wait, and the rest are shed
//! with a typed `Overloaded` protocol error. See `DESIGN.md` §12 for the
//! wire format and backpressure semantics.
//!
//! [`RunControl`]: anyscan::RunControl

pub mod admission;
pub mod protocol;
pub mod repl;
pub mod server;

pub use admission::{AdmissionQueue, Overloaded, Permit};
pub use protocol::{
    completion_name, read_frame, role_name, server_role_name, write_frame, DecodeError, ErrorCode,
    FrameError, Health, LabelBlock, QuerySummary, Request, Response, ServeStats, WireUpdate,
    REQUEST_FRAME_LIMIT, RESPONSE_FRAME_LIMIT, ROLE_PRIMARY, ROLE_REPLICA, UPDATE_INSERT,
    UPDATE_REMOVE, UPDATE_REWEIGHT,
};
pub use repl::{run_replica_feed, ReplicaFeedConfig};
pub use server::{completion_code, role_code, Conn, Listener, ReplError, Server, ServerConfig};
