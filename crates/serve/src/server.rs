//! The daemon: accept loop, per-connection dispatch, admission and caching.
//!
//! A [`Server`] owns one graph + similarity index pair, loaded once at
//! startup. Connections each get an OS thread (request parsing is cheap and
//! the expensive work — index sweeps, anytime runs — is bounded by the
//! admission queue, not by connection count). Every admitted request runs
//! under a [`Permit`](crate::admission::Permit); anytime runs are further
//! serialized by the process-wide worker pool, which allows one parallel
//! region at a time.
//!
//! The accept loop is nonblocking and polls a [`RunControl`] stop token —
//! the same cooperative cancellation primitive the anytime driver uses — so
//! SIGINT and `Shutdown` requests both drain the daemon at a safe boundary.
//!
//! Identical-to-serial guarantee: queries are answered exactly like the
//! `index query` CLI path — the index's recorded reorder is applied by the
//! caller before [`Server::new`], and per-vertex output is mapped back to
//! original ids (with the same canonicalization rule: only when the
//! permutation is non-identity). A daemon response and a serial CLI run on
//! the same ASIX file are therefore bit-identical.
//!
//! Dynamic daemons ([`Server::new_dynamic`]) additionally accept
//! `ApplyUpdates` batches. Reads and writes coexist through an **epoch
//! swap**: the read path clones an `Arc` snapshot (graph + index + epoch
//! counter) under a briefly-held read lock, the single writer applies the
//! batch through the incremental engine *outside* any lock queries touch,
//! then installs the new snapshot (and clears the memoized-query cache)
//! under the write lock. Queries in flight keep their old snapshot — they
//! answer for the epoch they started in — and every query admitted after
//! the swap sees the repaired index. The mutation log, when configured, is
//! saved *before* the swap: an update is never visible to readers unless it
//! is durable.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use anyscan::{AnyScan, AnyScanConfig, Completion, RunControl};
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate, UpdateLog};
use anyscan_graph::{CsrGraph, VertexPermutation};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::{Clustering, Role, ScanParams};
use anyscan_telemetry::{Counter, Recorder, Telemetry};

use crate::admission::AdmissionQueue;
use crate::protocol::{
    read_frame, write_frame, DecodeError, ErrorCode, FrameError, Health, LabelBlock, QuerySummary,
    Request, Response, ServeStats, WireUpdate, REQUEST_FRAME_LIMIT, ROLE_PRIMARY, ROLE_REPLICA,
    UPDATE_INSERT, UPDATE_REMOVE, UPDATE_REWEIGHT,
};

/// Tuning knobs of a [`Server`]; see field docs for defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads for anytime `Run` requests (default 1).
    pub threads: usize,
    /// Concurrent requests executing (admission slots, default 4).
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot before `Overloaded` (default 16).
    pub queue_depth: usize,
    /// Memoized `(eps, mu)` clusterings kept for queries/lookups
    /// (default 16, 0 disables the cache).
    pub cache_entries: usize,
    /// Per-connection read/write timeout (`--conn-timeout-ms`); `None`
    /// (the default) keeps connections blocking forever. When set, a
    /// stalled or half-open client is answered with a typed
    /// [`ErrorCode::Timeout`] (best-effort) and its connection closed, so
    /// it can no longer pin daemon resources indefinitely.
    pub conn_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            max_inflight: 4,
            queue_depth: 16,
            cache_entries: 16,
            conn_timeout: None,
        }
    }
}

/// Always-on request tallies (independent of the telemetry handle) so
/// `Ping` can answer health probes even on an untraced daemon.
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    queries: AtomicU64,
    lookups: AtomicU64,
    runs: AtomicU64,
    overloaded: AtomicU64,
    protocol_errors: AtomicU64,
    updates: AtomicU64,
    timeouts: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// The immutable state one generation of readers shares: the graph, the
/// index over it, and a monotonically increasing generation counter. Static
/// daemons live in epoch 0 forever; dynamic daemons install a new epoch per
/// applied batch.
struct Epoch {
    graph: CsrGraph,
    index: SimilarityIndex,
    epoch: u64,
}

/// Writer-side state of a dynamic daemon, serialized by its mutex: the
/// incremental engine (graph mirror + repaired index) and the mutation log.
/// The log is always present in dynamic mode — it is the back-fill source
/// for replica subscriptions — but only persisted when a path is
/// configured; without one the "durability point" degrades to the in-memory
/// append.
struct DynamicState {
    engine: DynamicIndex,
    log: UpdateLog,
    log_path: Option<PathBuf>,
}

/// Publication point of the replication stream: the sequence number of the
/// last *durable* update plus the condvar subscription threads park on.
/// Advanced (and notified) after the log save, before the epoch swap — so
/// an entry is shipped to replicas only once the primary's disk has it.
struct Durability {
    seq: Mutex<u64>,
    advanced: Condvar,
}

/// One loaded graph + index pair answering requests (see module docs).
pub struct Server {
    epoch: RwLock<Arc<Epoch>>,
    perm: VertexPermutation,
    config: ServerConfig,
    admission: AdmissionQueue,
    telemetry: Telemetry,
    stats: Stats,
    stopping: AtomicBool,
    active_conns: AtomicUsize,
    /// Writer state; `None` for static daemons (`ApplyUpdates` rejected).
    dynamic: Option<Mutex<DynamicState>>,
    /// [`ROLE_PRIMARY`] (accepts writes) or [`ROLE_REPLICA`] (rejects them
    /// with `NotPrimary`). Static daemons are nominally primary.
    role: AtomicU8,
    /// Monotonic replication term; bumped by promotion, adopted from higher
    /// terms seen on the replication stream, carried in every shipped frame.
    term: AtomicU64,
    /// Where a replica believes its primary lives — the `NotPrimary` hint.
    leader_hint: Mutex<String>,
    /// Durable-watermark publication point for subscription threads.
    durability: Durability,
    /// Tiny LRU of query results keyed `(eps.to_bits(), mu)`, stored in
    /// original vertex ids; hits move to the back, evictions pop the front.
    /// Cleared on every epoch swap, so entries always describe the epoch
    /// being served.
    cache: Mutex<Vec<(CacheKey, Arc<Clustering>)>>,
}

/// Query-cache key: `(eps.to_bits(), mu, epoch)`. The epoch component makes
/// a slow reader's late insert (computed against a pre-swap snapshot)
/// unreachable to post-swap readers; the swap's cache clear just frees the
/// memory.
type CacheKey = (u64, u32, u64);

impl Server {
    /// Builds a server over a graph already relabeled by the index's
    /// recorded reorder (the caller applies it, exactly as `index query`
    /// does) and the permutation that maps labels back to original ids.
    pub fn new(
        graph: CsrGraph,
        perm: VertexPermutation,
        index: SimilarityIndex,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> Result<Server, String> {
        index.check_graph(&graph)?;
        Ok(Server {
            admission: AdmissionQueue::new(config.max_inflight, config.queue_depth),
            epoch: RwLock::new(Arc::new(Epoch {
                graph,
                index,
                epoch: 0,
            })),
            perm,
            config,
            telemetry,
            stats: Stats::default(),
            stopping: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            dynamic: None,
            role: AtomicU8::new(ROLE_PRIMARY),
            term: AtomicU64::new(0),
            leader_hint: Mutex::new(String::new()),
            durability: Durability {
                seq: Mutex::new(0),
                advanced: Condvar::new(),
            },
            cache: Mutex::new(Vec::new()),
        })
    }

    /// Builds a *dynamic* daemon around an incremental engine (and an
    /// optional durable mutation log saved to `log`'s path after every
    /// accepted batch). The engine may already carry replayed updates — the
    /// first epoch snapshots its current state. Dynamic mode runs in
    /// original vertex ids (the engine rejects reordered indexes), so the
    /// permutation is the identity.
    pub fn new_dynamic(
        engine: DynamicIndex,
        log: Option<(UpdateLog, PathBuf)>,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> Result<Server, String> {
        let graph = engine.to_csr().map_err(|e| e.to_string())?;
        let (log, log_path) = match log {
            Some((l, path)) => {
                if l.applied_seq() != engine.applied_seq() {
                    return Err(format!(
                        "update log watermark {} disagrees with engine watermark {}",
                        l.applied_seq(),
                        engine.applied_seq()
                    ));
                }
                (l, Some(path))
            }
            // No durable log configured: keep an in-memory shipping log
            // anchored at the engine's watermark so replication still works
            // (back-fill reaches only as far back as this process's own
            // commits).
            None => (UpdateLog::new_at(&graph, engine.applied_seq()), None),
        };
        let term = log.term();
        let watermark = engine.applied_seq();
        let index = engine.index().clone();
        let perm = VertexPermutation::identity(graph.num_vertices());
        let mut server = Server::new(graph, perm, index, config, telemetry)?;
        server.term.store(term, Ordering::Relaxed);
        *server.durability.seq.get_mut().unwrap() = watermark;
        server.dynamic = Some(Mutex::new(DynamicState {
            engine,
            log,
            log_path,
        }));
        Ok(server)
    }

    /// Turns this (not-yet-serving) daemon into a replica of `primary`: all
    /// write opcodes answer [`ErrorCode::NotPrimary`] with the given
    /// address as the leader hint, until a `Promote` arrives.
    pub fn become_replica(&self, primary: &str) {
        self.role.store(ROLE_REPLICA, Ordering::Release);
        *self.leader_hint.lock().unwrap() = primary.to_string();
    }

    /// The daemon's current replication role ([`ROLE_PRIMARY`] /
    /// [`ROLE_REPLICA`]).
    pub fn role(&self) -> u8 {
        self.role.load(Ordering::Acquire)
    }

    /// The replication term the daemon currently serves under.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Sequence number of the last durable update (0 on a static daemon).
    pub fn durable_watermark(&self) -> u64 {
        *self.durability.seq.lock().unwrap()
    }

    /// Whether this daemon accepts `ApplyUpdates`.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic.is_some()
    }

    /// The generation counter of the snapshot currently serving queries.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.read().unwrap().epoch
    }

    /// The admission queue (exposed so tests can saturate it directly).
    pub fn admission(&self) -> &AdmissionQueue {
        &self.admission
    }

    /// The telemetry handle requests record into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current request tallies (what `Ping` answers with).
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Number of vertices served (original = reordered count).
    pub fn num_vertices(&self) -> usize {
        self.epoch.read().unwrap().graph.num_vertices()
    }

    /// Number of undirected edges served (of the current epoch).
    pub fn num_edges(&self) -> u64 {
        self.epoch.read().unwrap().graph.num_edges()
    }

    /// The snapshot the read path uses: cloned out of the lock so queries
    /// never hold it while working.
    fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&self.epoch.read().unwrap())
    }

    /// True once a `Shutdown` request (or the stop token) began draining.
    pub fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Accepts and serves connections until `ctl` cancels or a `Shutdown`
    /// request arrives, then drains active connections (bounded wait).
    pub fn serve(self: &Arc<Self>, listener: Listener, ctl: &RunControl) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if ctl.is_canceled() || self.is_stopping() {
                self.stopping.store(true, Ordering::Release);
                break;
            }
            match listener.accept() {
                Ok(conn) => {
                    let server = Arc::clone(self);
                    server.active_conns.fetch_add(1, Ordering::AcqRel);
                    std::thread::spawn(move || {
                        server.handle_conn(conn);
                        server.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        // Drain: in-flight requests finish (bounded by the run deadline cap
        // a client can request); hung clients are abandoned after 5s.
        let drain_deadline = Instant::now() + Duration::from_secs(5);
        while self.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    fn handle_conn(self: &Arc<Self>, mut conn: Conn) {
        if let Err(e) = conn.set_timeouts(self.config.conn_timeout) {
            eprintln!("serve: setting connection timeouts failed: {e}");
            return;
        }
        loop {
            let payload = match read_frame(&mut conn, REQUEST_FRAME_LIMIT) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(FrameError::Io(e)) if is_timeout(&e) => {
                    // The peer stalled past --conn-timeout-ms: typed close
                    // (best-effort — a half-open peer won't read it) so it
                    // can no longer pin daemon resources.
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.add(Counter::ServeTimeouts, 1);
                    let resp = Response::Error {
                        code: ErrorCode::Timeout,
                        message: "connection timed out".into(),
                    };
                    let _ = write_frame(&mut conn, &resp.encode());
                    return;
                }
                Err(e) => {
                    self.note_protocol_error(&e.to_string());
                    // Oversized leaves the stream positioned before the
                    // payload; the connection cannot be resynchronized, so
                    // answer (best-effort) and close either way.
                    if matches!(e, FrameError::Oversized { .. }) {
                        let resp = Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        };
                        let _ = write_frame(&mut conn, &resp.encode());
                    }
                    return;
                }
            };
            let request = match Request::decode(&payload) {
                Ok(request) => request,
                Err(e) => {
                    // The frame layer stayed in sync; reject just this
                    // request and keep the connection.
                    self.note_protocol_error(&e.to_string());
                    let resp = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: decode_error_message(&e),
                    };
                    if write_frame(&mut conn, &resp.encode()).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if let Request::Subscribe { watermark } = request {
                // The connection becomes a one-way replication stream and
                // never returns to request/response framing.
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add(Counter::ServeRequests, 1);
                self.serve_subscription(&mut conn, watermark);
                return;
            }
            let close = matches!(request, Request::Shutdown);
            let response = self.dispatch(request);
            if write_frame(&mut conn, &response.encode()).is_err() || close {
                return;
            }
        }
    }

    /// Streams committed log entries to one subscribed replica until the
    /// daemon drains, the peer drops, or this daemon stops being primary.
    fn serve_subscription(&self, conn: &mut Conn, watermark: u64) {
        let refuse = |conn: &mut Conn, resp: Response| {
            let _ = write_frame(conn, &resp.encode());
        };
        if self.dynamic.is_none() {
            return refuse(
                conn,
                bad_request("daemon is not in dynamic mode (start with --dynamic)".into()),
            );
        }
        if self.role() != ROLE_PRIMARY {
            return refuse(
                conn,
                Response::Error {
                    code: ErrorCode::NotPrimary,
                    message: self.leader_hint.lock().unwrap().clone(),
                },
            );
        }
        let durable = self.durable_watermark();
        if watermark > durable {
            // ASUL-tail edge case: a subscriber from the future gets a
            // typed rejection, never a hang waiting for entries that can't
            // exist.
            return refuse(
                conn,
                bad_request(format!(
                    "subscribe watermark {watermark} is ahead of the primary's durable \
                     watermark {durable}"
                )),
            );
        }
        let ack = anyscan_faults::inject_io("repl::ack").and_then(|()| {
            write_frame(
                conn,
                &Response::Subscribed {
                    term: self.term(),
                    watermark: durable,
                }
                .encode(),
            )
        });
        if let Err(e) = ack {
            eprintln!("serve: replication ack failed: {e}");
            return;
        }
        self.telemetry.add(Counter::ReplSubscribes, 1);

        // Back-fill from the log, then push each batch as its durability
        // point passes. `sent` tracks the last shipped sequence number.
        let mut sent = watermark;
        loop {
            if self.is_stopping() || self.role() != ROLE_PRIMARY {
                return;
            }
            let batch: Vec<EdgeUpdate> = {
                let durable = self.durable_watermark();
                let state = self.dynamic.as_ref().unwrap().lock().unwrap();
                state
                    .log
                    .entries_after(sent)
                    .iter()
                    .take_while(|e| e.seq <= durable)
                    .copied()
                    .collect()
            };
            if !batch.is_empty() {
                let last = batch.last().unwrap().seq;
                let count = batch.len() as u64;
                let frame = Response::LogEntries {
                    term: self.term(),
                    entries: batch,
                };
                let sent_ok = anyscan_faults::inject_io("repl::send_entry")
                    .and_then(|()| write_frame(conn, &frame.encode()));
                if let Err(e) = sent_ok {
                    eprintln!("serve: replication stream write failed: {e}");
                    return;
                }
                self.telemetry.add(Counter::ReplEntriesShipped, count);
                sent = last;
                continue;
            }
            // Nothing to ship: park until the durable watermark advances
            // (bounded, so stop/demotion is noticed promptly).
            let guard = self.durability.seq.lock().unwrap();
            if *guard <= sent {
                let _ = self
                    .durability
                    .advanced
                    .wait_timeout(guard, Duration::from_millis(100))
                    .unwrap();
            }
        }
    }

    fn note_protocol_error(&self, detail: &str) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        self.telemetry.add(Counter::ServeProtocolErrors, 1);
        eprintln!("serve: protocol error: {detail}");
    }

    /// The health/readiness probe `Ping` answers with.
    pub fn health(&self) -> Health {
        Health {
            role: self.role(),
            term: self.term(),
            epoch: self.current_epoch(),
            watermark: self.durable_watermark(),
            inflight: self.admission.inflight() as u32,
            queued: self.admission.queued() as u32,
            stats: self.stats.snapshot(),
        }
    }

    /// Executes one decoded request. `Ping`/`Shutdown`/`Promote` bypass
    /// admission (health checks and failover must answer *especially* under
    /// overload); everything else holds an admission permit for the
    /// duration.
    pub fn dispatch(&self, request: Request) -> Response {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.telemetry.add(Counter::ServeRequests, 1);
        match request {
            Request::Ping => Response::Ping(self.health()),
            Request::Shutdown => {
                self.stopping.store(true, Ordering::Release);
                Response::Shutdown
            }
            Request::Promote => self.promote(),
            Request::Subscribe { .. } => {
                bad_request("subscribe must be the only request on its connection".into())
            }
            _ if self.is_stopping() => Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "daemon is draining".into(),
            },
            work => {
                let permit = match self.admission.acquire() {
                    Ok(permit) => permit,
                    Err(overloaded) => {
                        self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.add(Counter::ServeOverloaded, 1);
                        return Response::Error {
                            code: ErrorCode::Overloaded,
                            message: overloaded.to_string(),
                        };
                    }
                };
                let response = self.execute(work);
                drop(permit);
                response
            }
        }
    }

    fn execute(&self, request: Request) -> Response {
        match request {
            Request::Query {
                eps,
                mu,
                want_labels,
            } => {
                let params = match self.check_params(eps, mu) {
                    Ok(params) => params,
                    Err(resp) => return resp,
                };
                let _span = self.telemetry.span("serve_query");
                self.stats.queries.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add(Counter::ServeQueries, 1);
                let c = self.cached_query(&self.snapshot(), params);
                Response::Query {
                    summary: summarize(&c),
                    labels: want_labels.then(|| LabelBlock {
                        labels: c.labels.clone(),
                        roles: c.roles.iter().copied().map(role_code).collect(),
                    }),
                }
            }
            Request::Membership { vertex, eps, mu } => {
                let params = match self.check_params(eps, mu) {
                    Ok(params) => params,
                    Err(resp) => return resp,
                };
                let ep = self.snapshot();
                if vertex as usize >= ep.graph.num_vertices() {
                    return bad_request(format!(
                        "vertex {vertex} out of range (|V| = {})",
                        ep.graph.num_vertices()
                    ));
                }
                let _span = self.telemetry.span("serve_lookup");
                self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add(Counter::ServeLookups, 1);
                let c = self.cached_query(&ep, params);
                Response::Membership {
                    label: c.labels[vertex as usize],
                    role: role_code(c.roles[vertex as usize]),
                }
            }
            Request::ApplyUpdates { updates } => self.apply_updates(&updates),
            Request::Run {
                eps,
                mu,
                deadline_ms,
                max_blocks,
            } => {
                let params = match self.check_params(eps, mu) {
                    Ok(params) => params,
                    Err(resp) => return resp,
                };
                let ep = self.snapshot();
                let _span = self.telemetry.span("serve_run");
                self.stats.runs.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add(Counter::ServeRuns, 1);
                let config = AnyScanConfig::new(params)
                    .with_auto_block_size(ep.graph.num_vertices())
                    .with_threads(self.config.threads);
                let mut ctl = RunControl::new();
                if deadline_ms > 0 {
                    ctl = ctl.with_deadline(Duration::from_millis(u64::from(deadline_ms)));
                }
                if max_blocks > 0 {
                    ctl = ctl.with_max_blocks(max_blocks);
                }
                // Per-block snapshot indices restart at 0 every run, so each
                // run records into its own child handle: counters fold back
                // into the daemon trace below, snapshots stay per-run (the
                // daemon trace keeps a schema-valid snapshot sequence).
                let run_telemetry = if self.telemetry.is_enabled() {
                    Telemetry::enabled()
                } else {
                    Telemetry::disabled()
                };
                let mut algo =
                    AnyScan::new(&ep.graph, config).with_telemetry(run_telemetry.clone());
                let outcome = algo.run_controlled(&ctl);
                if let Some(report) = run_telemetry.report() {
                    for &c in Counter::ALL.iter() {
                        let total = report.counters[c as usize];
                        if total > 0 {
                            self.telemetry.add(c, total);
                        }
                    }
                }
                match outcome {
                    Ok(partial) => {
                        let c = self.to_original(partial.clustering);
                        Response::Run {
                            summary: summarize(&c),
                            completion: completion_code(partial.completion),
                            blocks: partial.blocks,
                        }
                    }
                    Err(e) => Response::Error {
                        code: ErrorCode::Internal,
                        message: e.to_string(),
                    },
                }
            }
            // Ping/Shutdown/Promote/Subscribe are handled before admission
            // in `dispatch` (Subscribe in the connection loop itself).
            Request::Ping => Response::Ping(self.health()),
            Request::Shutdown => Response::Shutdown,
            Request::Promote => self.promote(),
            Request::Subscribe { .. } => {
                bad_request("subscribe must be the only request on its connection".into())
            }
        }
    }

    /// `Promote`: make this daemon a writable primary. Idempotent on a
    /// primary (answers its current coordinates without bumping the term);
    /// on a replica, bumps the term past everything it has seen — fencing
    /// the old primary, whose frames now carry a stale term — persists it,
    /// and flips the role (the replica feed notices and exits).
    pub fn promote(&self) -> Response {
        let Some(dynamic) = &self.dynamic else {
            return bad_request("daemon is not in dynamic mode (start with --dynamic)".into());
        };
        let mut state = dynamic.lock().unwrap();
        if self.role() == ROLE_PRIMARY {
            return Response::Promoted {
                term: self.term(),
                epoch: self.current_epoch(),
                watermark: self.durable_watermark(),
            };
        }
        let new_term = self.term() + 1;
        state.log.set_term(new_term);
        if let Some(path) = &state.log_path {
            // Fence durably: a restart after promotion must come back with
            // the bumped term, not the old primary's.
            if let Err(e) = state.log.save(path) {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("persisting promoted term failed: {e}"),
                };
            }
        }
        self.term.store(new_term, Ordering::Release);
        self.leader_hint.lock().unwrap().clear();
        self.role.store(ROLE_PRIMARY, Ordering::Release);
        Response::Promoted {
            term: new_term,
            epoch: self.current_epoch(),
            watermark: self.durable_watermark(),
        }
    }

    fn check_params(&self, eps: f64, mu: u32) -> Result<ScanParams, Response> {
        if !(eps.is_finite() && eps > 0.0 && eps <= 1.0) {
            return Err(bad_request(format!("eps must be in (0,1], got {eps}")));
        }
        if mu == 0 {
            return Err(bad_request("mu must be >= 1".into()));
        }
        Ok(ScanParams::new(eps, mu as usize))
    }

    /// Applies one `ApplyUpdates` batch through the incremental engine and
    /// epoch-swaps the repaired snapshot in. Single-writer: the dynamic
    /// mutex serializes batches; queries keep reading the previous epoch
    /// until the swap (see module docs).
    fn apply_updates(&self, updates: &[WireUpdate]) -> Response {
        let Some(dynamic) = &self.dynamic else {
            return bad_request("daemon is not in dynamic mode (start with --dynamic)".into());
        };
        if self.role() != ROLE_PRIMARY {
            // Writes belong to the primary: the typed rejection carries the
            // leader hint so a failover-aware client can follow it.
            return Response::Error {
                code: ErrorCode::NotPrimary,
                message: self.leader_hint.lock().unwrap().clone(),
            };
        }
        let _span = self.telemetry.span("serve_apply_updates");
        let mut state = dynamic.lock().unwrap();
        if updates.is_empty() {
            return Response::ApplyUpdates {
                applied: 0,
                skipped: 0,
                seq: state.engine.applied_seq(),
                epoch: self.current_epoch(),
            };
        }

        // The primary owns the global mutation order: sequence numbers are
        // assigned here, contiguously after the engine's watermark.
        let mut seq = state.engine.applied_seq();
        let batch: Vec<EdgeUpdate> = updates
            .iter()
            .map(|up| {
                seq += 1;
                let op = match up.kind {
                    UPDATE_INSERT => EdgeOp::Insert(up.w),
                    UPDATE_REMOVE => EdgeOp::Remove,
                    UPDATE_REWEIGHT => EdgeOp::Reweight(up.w),
                    // Unreachable: the decoder rejects unknown kinds.
                    other => unreachable!("wire kind {other} survived decoding"),
                };
                EdgeUpdate {
                    seq,
                    u: up.u,
                    v: up.v,
                    op,
                }
            })
            .collect();

        match self.commit_batch(&mut state, &batch) {
            Ok((stats, epoch)) => {
                self.stats.updates.fetch_add(1, Ordering::Relaxed);
                Response::ApplyUpdates {
                    applied: stats.applied,
                    skipped: stats.skipped,
                    seq: stats.last_seq,
                    epoch,
                }
            }
            Err(CommitError::Rejected(msg)) => bad_request(msg),
            Err(CommitError::Internal(msg)) => Response::Error {
                code: ErrorCode::Internal,
                message: msg,
            },
        }
    }

    /// Applies one replicated batch on a replica, exactly as the primary
    /// committed it (primary-assigned sequence numbers, primary's term).
    /// Entries at or below the replica's watermark — back-fill overlap
    /// after a reconnect — are skipped. Term fencing: a frame from a lower
    /// term is refused (the sender was deposed); a higher term is adopted.
    pub fn apply_replicated(&self, term: u64, entries: &[EdgeUpdate]) -> Result<(), ReplError> {
        let Some(dynamic) = &self.dynamic else {
            return Err(ReplError::Apply("daemon is not in dynamic mode".into()));
        };
        let current = self.term();
        if term < current {
            return Err(ReplError::Fenced {
                seen: term,
                ours: current,
            });
        }
        let mut state = dynamic.lock().unwrap();
        if term > current {
            state.log.set_term(term);
            self.term.store(term, Ordering::Release);
        }
        let floor = state.engine.applied_seq();
        let fresh: Vec<EdgeUpdate> = entries.iter().filter(|e| e.seq > floor).copied().collect();
        if fresh.is_empty() {
            return Ok(());
        }
        let count = fresh.len() as u64;
        match self.commit_batch(&mut state, &fresh) {
            Ok(_) => {
                self.telemetry.add(Counter::ReplEntriesApplied, count);
                Ok(())
            }
            Err(CommitError::Rejected(msg)) | Err(CommitError::Internal(msg)) => {
                Err(ReplError::Apply(msg))
            }
        }
    }

    /// The shared commit tail of both write paths: engine apply, log
    /// append + save (durability), durable-watermark publication (wakes
    /// subscription streams), then the epoch swap (visibility). Returns the
    /// batch stats and the new epoch.
    fn commit_batch(
        &self,
        state: &mut DynamicState,
        batch: &[EdgeUpdate],
    ) -> Result<(anyscan_dynamic::BatchStats, u64), CommitError> {
        let stats = state
            .engine
            .apply_batch(batch, &self.telemetry)
            // apply_batch only fails validation here, and rejection is
            // atomic — engine state (and therefore the served epoch) is
            // untouched.
            .map_err(|e| CommitError::Rejected(e.to_string()))?;

        // Durability before shipping and before visibility: the log is
        // saved before replicas can be sent the entries and before readers
        // can observe the new epoch. A failed save is an internal error;
        // the engine has advanced but neither the watermark nor the epoch
        // has — the daemon keeps serving (and shipping) the last durable
        // state and the batch reports failure.
        state
            .log
            .append_batch(batch)
            .map_err(|e| CommitError::Internal(format!("update log write failed: {e}")))?;
        if let Some(path) = &state.log_path {
            state
                .log
                .save(path)
                .map_err(|e| CommitError::Internal(format!("update log write failed: {e}")))?;
        }

        let snapshot = state
            .engine
            .to_csr()
            .map_err(|e| CommitError::Internal(format!("epoch snapshot failed: {e}")))?;
        let index = state.engine.index().clone();

        // Publish durability: subscription threads may ship the batch from
        // this point on.
        {
            let mut durable = self.durability.seq.lock().unwrap();
            *durable = stats.last_seq;
            self.durability.advanced.notify_all();
        }

        // The swap: writer excludes readers only for the Arc replacement
        // and cache clear, never for the repair work above.
        let new_epoch;
        {
            let mut ep = self.epoch.write().unwrap();
            new_epoch = ep.epoch + 1;
            *ep = Arc::new(Epoch {
                graph: snapshot,
                index,
                epoch: new_epoch,
            });
            self.cache.lock().unwrap().clear();
        }
        Ok((stats, new_epoch))
    }

    /// An index query in original vertex ids, memoized. Concurrent misses
    /// on the same key may compute twice; the results are identical (the
    /// sweep is deterministic), so last-insert-wins is harmless. Keys carry
    /// the snapshot's epoch, so a slow pre-swap reader can never poison
    /// post-swap answers.
    fn cached_query(&self, ep: &Epoch, params: ScanParams) -> Arc<Clustering> {
        let key = (params.epsilon.to_bits(), params.mu as u32, ep.epoch);
        if self.config.cache_entries > 0 {
            let mut cache = self.cache.lock().unwrap();
            if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
                let hit = cache.remove(pos);
                let c = Arc::clone(&hit.1);
                cache.push(hit);
                return c;
            }
        }
        let c =
            Arc::new(self.to_original(ep.index.query_traced(&ep.graph, params, &self.telemetry)));
        if self.config.cache_entries > 0 {
            let mut cache = self.cache.lock().unwrap();
            if !cache.iter().any(|(k, _)| *k == key) {
                cache.push((key, Arc::clone(&c)));
                if cache.len() > self.config.cache_entries {
                    cache.remove(0);
                }
            }
        }
        c
    }

    /// Same mapping as the CLI's `to_original_ids`: only a non-identity
    /// permutation relabels (and canonicalizes), keeping daemon output
    /// bit-identical to serial `index query --labels-out`.
    fn to_original(&self, mut c: Clustering) -> Clustering {
        if !self.perm.is_identity() {
            c.labels = self.perm.to_original(&c.labels);
            c.roles = self.perm.to_original(&c.roles);
            c.canonicalize();
        }
        c
    }
}

/// Why a commit failed, split by whose fault it is: `Rejected` is the
/// client's batch (validation; engine untouched), `Internal` is the
/// daemon's own persistence/snapshot machinery.
enum CommitError {
    Rejected(String),
    Internal(String),
}

/// Replica-side failure applying a replicated frame.
#[derive(Debug)]
pub enum ReplError {
    /// The frame carried a term below ours: its sender was deposed. The
    /// feed must drop the connection rather than apply fenced writes.
    Fenced { seen: u64, ours: u64 },
    /// The batch failed to apply or persist locally.
    Apply(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Fenced { seen, ours } => {
                write!(f, "fenced: frame term {seen} below local term {ours}")
            }
            ReplError::Apply(msg) => write!(f, "replicated apply failed: {msg}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// Whether an I/O error is a read/write timeout (both kinds occur in the
/// wild: unix sockets report `WouldBlock`, TCP reports `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn bad_request(message: String) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message,
    }
}

fn decode_error_message(e: &DecodeError) -> String {
    format!("undecodable request: {e}")
}

fn summarize(c: &Clustering) -> QuerySummary {
    let rc = c.role_counts();
    QuerySummary {
        clusters: c.num_clusters() as u32,
        cores: rc.cores as u32,
        borders: rc.borders as u32,
        hubs: rc.hubs as u32,
        outliers: rc.outliers as u32,
    }
}

/// [`Role`] → wire code (see `protocol::role_name`).
pub fn role_code(role: Role) -> u8 {
    match role {
        Role::Core => 0,
        Role::Border => 1,
        Role::Hub => 2,
        Role::Outlier => 3,
        Role::Unclassified => 4,
    }
}

/// [`Completion`] → wire code (see `protocol::completion_name`).
pub fn completion_code(completion: Completion) -> u8 {
    match completion {
        Completion::Complete => 0,
        Completion::Canceled => 1,
        Completion::DeadlineExpired => 2,
        Completion::BudgetExhausted => 3,
        Completion::Suspended => 4,
    }
}

/// A bound listening socket: TCP everywhere, unix-domain where available.
pub enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener; `addr` may use port 0 for an OS-chosen port
    /// (read it back from the returned address).
    pub fn bind_tcp(addr: &str) -> std::io::Result<(Listener, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((Listener::Tcp(listener), local))
    }

    /// Binds a unix-domain socket, replacing a stale socket file.
    #[cfg(unix)]
    pub fn bind_unix(path: &str) -> std::io::Result<Listener> {
        if std::fs::metadata(path).is_ok() {
            std::fs::remove_file(path)?;
        }
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted connection (blocking mode).
pub enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Applies the per-connection read/write timeout (`None` = blocking
    /// forever, the pre-hardening behavior).
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}
