//! Bounded admission control for daemon requests.
//!
//! The daemon multiplexes every admitted request onto one process-wide
//! worker pool, so unbounded concurrency would only queue work invisibly
//! inside the pool and blow latency tails. Instead, admission is a counting
//! semaphore with a *bounded waiting room*: up to `max_inflight` requests
//! execute, up to `queue_depth` more block waiting for a slot, and anything
//! beyond that is rejected immediately with a typed [`Overloaded`] — the
//! backpressure signal clients see as an `overloaded` protocol error and
//! retry at their own pace. Rejection is load shedding, not failure: the
//! connection stays open.

use std::sync::{Condvar, Mutex};

/// Typed rejection: the waiting room was full at arrival time. Carries the
/// queue's occupancy at the moment of rejection for telemetry/messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Requests executing when the rejection happened.
    pub inflight: usize,
    /// Requests already waiting for a slot.
    pub queued: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "overloaded: {} in flight, {} queued; retry later",
            self.inflight, self.queued
        )
    }
}

impl std::error::Error for Overloaded {}

#[derive(Debug, Default)]
struct QueueState {
    inflight: usize,
    queued: usize,
}

/// Counting semaphore with a bounded waiting room (see module docs).
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    slot_freed: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

impl AdmissionQueue {
    /// `max_inflight` ≥ 1 requests execute concurrently; `queue_depth` more
    /// may wait (0 = reject as soon as all slots are busy).
    pub fn new(max_inflight: usize, queue_depth: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState::default()),
            slot_freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    /// Acquires an execution slot, blocking in the waiting room if all slots
    /// are busy. Fails fast with [`Overloaded`] when the waiting room is
    /// also full. The slot is held until the returned [`Permit`] drops.
    pub fn acquire(&self) -> Result<Permit<'_>, Overloaded> {
        let mut state = self.state.lock().unwrap();
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(Permit { queue: self });
        }
        if state.queued >= self.queue_depth {
            return Err(Overloaded {
                inflight: state.inflight,
                queued: state.queued,
            });
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            state = self.slot_freed.wait(state).unwrap();
        }
        state.queued -= 1;
        state.inflight += 1;
        Ok(Permit { queue: self })
    }

    /// Requests currently holding an execution slot.
    pub fn inflight(&self) -> usize {
        self.state.lock().unwrap().inflight
    }

    /// Requests currently blocked in the waiting room.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().queued
    }

    /// Configured concurrent-execution ceiling.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Configured waiting-room capacity.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }
}

/// RAII execution slot; dropping it wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.queue.state.lock().unwrap();
        state.inflight -= 1;
        drop(state);
        self.queue.slot_freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_max_inflight_without_waiting() {
        let q = AdmissionQueue::new(2, 0);
        let a = q.acquire().unwrap();
        let b = q.acquire().unwrap();
        assert_eq!(q.inflight(), 2);
        drop(a);
        assert_eq!(q.inflight(), 1);
        drop(b);
        assert_eq!(q.inflight(), 0);
    }

    #[test]
    fn rejects_with_typed_overloaded_when_queue_full() {
        let q = AdmissionQueue::new(1, 0);
        let held = q.acquire().unwrap();
        let err = q.acquire().unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                inflight: 1,
                queued: 0
            }
        );
        assert!(err.to_string().contains("overloaded"));
        drop(held);
        // A freed slot admits again.
        assert!(q.acquire().is_ok());
    }

    #[test]
    fn waiting_room_blocks_then_admits_in_turn() {
        let q = Arc::new(AdmissionQueue::new(1, 4));
        let held = q.acquire().unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            joins.push(std::thread::spawn(move || {
                let permit = q.acquire().unwrap();
                done.fetch_add(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        // Wait until all four are parked in the waiting room.
        for _ in 0..400 {
            if q.queued() == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(q.queued(), 4);
        assert_eq!(done.load(Ordering::SeqCst), 0);
        // A fifth arrival overflows the room.
        assert!(q.acquire().is_err());
        drop(held);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert_eq!(q.inflight(), 0);
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn zero_max_inflight_is_clamped_to_one() {
        let q = AdmissionQueue::new(0, 0);
        assert_eq!(q.max_inflight(), 1);
        let _p = q.acquire().unwrap();
        assert!(q.acquire().is_err());
    }
}
