//! The replica side of the replication stream.
//!
//! [`run_replica_feed`] is a daemon-internal background thread a replica
//! runs next to its accept loop: it dials the primary, subscribes with the
//! replica's durable watermark, and applies every [`Response::LogEntries`]
//! frame through [`Server::apply_replicated`] — the same commit tail the
//! primary's own writes take, so a replica is bit-identical to a
//! single-node daemon fed the same trace.
//!
//! The feed is deliberately crash-tolerant rather than clever: any error —
//! refused connect, mid-stream disconnect, a fenced or malformed frame —
//! tears the connection down and retries from the replica's *durable*
//! watermark under capped exponential backoff with jitter. Because the
//! primary back-fills from its log and [`Server::apply_replicated`] skips
//! entries at or below the local watermark, reconnect overlap is harmless.
//!
//! The thread exits when the server starts draining or stops being a
//! replica (a `Promote` arrived). Fault site: `repl::recv_entry` (io style)
//! fires in the frame-read path, modeling a stream that dies mid-entry.

use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, RESPONSE_FRAME_LIMIT, ROLE_REPLICA,
};
use crate::server::{Conn, ReplError, Server};

/// Tuning of the replica feed's reconnect behavior.
#[derive(Debug, Clone)]
pub struct ReplicaFeedConfig {
    /// The primary's address: `host:port`, or `unix:PATH`.
    pub primary: String,
    /// First backoff after a failure (default 50ms).
    pub min_backoff: Duration,
    /// Backoff ceiling (default 2s).
    pub max_backoff: Duration,
    /// Read timeout on the subscription stream — the granularity at which
    /// a parked replica notices drain/promotion (default 200ms).
    pub read_timeout: Duration,
}

impl ReplicaFeedConfig {
    /// Defaults for everything but the primary address.
    pub fn new(primary: impl Into<String>) -> ReplicaFeedConfig {
        ReplicaFeedConfig {
            primary: primary.into(),
            min_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// Spawns the feed thread. The server must already be a replica
/// ([`Server::become_replica`]); the thread exits on drain or promotion.
pub fn run_replica_feed(server: Arc<Server>, config: ReplicaFeedConfig) -> JoinHandle<()> {
    std::thread::spawn(move || feed_loop(&server, &config))
}

fn feed_done(server: &Server) -> bool {
    server.is_stopping() || server.role() != ROLE_REPLICA
}

fn feed_loop(server: &Server, config: &ReplicaFeedConfig) {
    // Deterministic per-process jitter source; the spread across *processes*
    // is what prevents reconnect stampedes.
    let mut rng = StdRng::seed_from_u64(std::process::id() as u64 ^ 0x5eed_ab1e);
    let mut backoff = config.min_backoff;
    while !feed_done(server) {
        match follow_once(server, config) {
            FeedOutcome::Done => return,
            FeedOutcome::Caught => backoff = config.min_backoff, // made progress: reset
            FeedOutcome::Failed(detail) => {
                eprintln!("repl: feed error ({detail}); retrying");
            }
        }
        if feed_done(server) {
            return;
        }
        // Capped exponential backoff, jittered to 50–100% of nominal.
        let jittered = backoff.mul_f64(rng.gen_range(0.5..1.0));
        std::thread::sleep(jittered);
        backoff = (backoff * 2).min(config.max_backoff);
    }
}

enum FeedOutcome {
    /// The server is draining or was promoted; stop for good.
    Done,
    /// The subscription made progress before the stream ended (primary
    /// drained, or a clean disconnect): reset the backoff.
    Caught,
    /// Connect/subscribe/stream failed; retry after backoff.
    Failed(String),
}

/// One full subscribe-and-follow attempt against the primary.
fn follow_once(server: &Server, config: &ReplicaFeedConfig) -> FeedOutcome {
    let mut conn = match dial(&config.primary, config.read_timeout) {
        Ok(conn) => conn,
        Err(e) => return FeedOutcome::Failed(format!("connect {}: {e}", config.primary)),
    };
    let watermark = server.durable_watermark();
    let subscribe = Request::Subscribe { watermark }.encode();
    if let Err(e) = write_frame(&mut conn, &subscribe) {
        return FeedOutcome::Failed(format!("subscribe: {e}"));
    }

    // The ack: Subscribed{term, watermark}, or a typed refusal.
    let ack = match read_entry_frame(&mut conn) {
        Ok(Some(frame)) => frame,
        Ok(None) => return FeedOutcome::Failed("primary closed before ack".into()),
        Err(e) => return FeedOutcome::Failed(format!("ack: {e}")),
    };
    match ack {
        Response::Subscribed { term, .. } => {
            if term < server.term() {
                // A deposed primary. Keep retrying: it may catch up with
                // the new term, or we may be promoted ourselves.
                return FeedOutcome::Failed(format!(
                    "primary term {term} below ours {}",
                    server.term()
                ));
            }
        }
        Response::Error { code, message } => {
            return FeedOutcome::Failed(format!("subscribe refused: {}: {message}", code.label()))
        }
        other => return FeedOutcome::Failed(format!("unexpected ack frame: {other:?}")),
    }

    // Follow the stream until it ends or we are told to stop.
    let mut progressed = false;
    loop {
        if feed_done(server) {
            return FeedOutcome::Done;
        }
        let frame = match read_entry_frame(&mut conn) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                // Clean close: the primary drained. Retry (it may restart).
                return if progressed {
                    FeedOutcome::Caught
                } else {
                    FeedOutcome::Failed("stream closed".into())
                };
            }
            Err(ReadError::Idle) => continue, // timeout tick: re-check flags
            Err(e) => return FeedOutcome::Failed(format!("stream: {e}")),
        };
        match frame {
            Response::LogEntries { term, entries } => {
                match server.apply_replicated(term, &entries) {
                    Ok(()) => progressed = true,
                    Err(e @ ReplError::Fenced { .. }) => {
                        // The sender was deposed; drop its connection.
                        return FeedOutcome::Failed(e.to_string());
                    }
                    Err(e) => return FeedOutcome::Failed(e.to_string()),
                }
            }
            other => return FeedOutcome::Failed(format!("unexpected stream frame: {other:?}")),
        }
    }
}

/// Stream-read failures, separating the idle-timeout tick (benign; the
/// loop re-checks stop/promotion flags) from real errors.
enum ReadError {
    Idle,
    Frame(FrameError),
    Decode(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Idle => write!(f, "idle"),
            ReadError::Frame(e) => write!(f, "{e}"),
            ReadError::Decode(e) => write!(f, "{e}"),
        }
    }
}

/// Reads and decodes one replication frame. Fault site: `repl::recv_entry`.
fn read_entry_frame(conn: &mut Conn) -> Result<Option<Response>, ReadError> {
    anyscan_faults::inject_io("repl::recv_entry")
        .map_err(|e| ReadError::Frame(FrameError::Io(e)))?;
    match read_frame(conn, RESPONSE_FRAME_LIMIT) {
        Ok(Some(payload)) => Response::decode(&payload)
            .map(Some)
            .map_err(|e| ReadError::Decode(e.to_string())),
        Ok(None) => Ok(None),
        Err(FrameError::Io(e)) if is_idle_timeout(&e) => Err(ReadError::Idle),
        Err(e) => Err(ReadError::Frame(e)),
    }
}

fn is_idle_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Dials `addr` (`host:port` or `unix:PATH`) with a read timeout so the
/// follow loop can poll its stop conditions.
fn dial(addr: &str, read_timeout: Duration) -> std::io::Result<Conn> {
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let stream = UnixStream::connect(path)?;
            stream.set_read_timeout(Some(read_timeout))?;
            return Ok(Conn::Unix(stream));
        }
        #[cfg(not(unix))]
        return Err(std::io::Error::other(format!(
            "unix sockets unsupported on this platform: {path}"
        )));
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    Ok(Conn::Tcp(stream))
}
