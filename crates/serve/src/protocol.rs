//! The length-framed wire protocol of the clustering daemon.
//!
//! Every message — request or response — is one *frame*: a little-endian
//! `u32` payload length followed by that many payload bytes. Inside a frame
//! the payload is a fixed little-endian layout selected by a leading opcode
//! (requests) or status byte (responses); see [`Request`] and [`Response`].
//! The framing layer enforces a hard payload ceiling so a hostile or corrupt
//! length prefix is rejected with a typed [`FrameError::Oversized`] before a
//! single payload byte is allocated.
//!
//! The protocol is deliberately binary and versionless-per-connection: a
//! client speaks to exactly the daemon build it was shipped with (both ends
//! live in this workspace), so the frame layer carries no negotiation —
//! malformed input surfaces as a typed [`DecodeError`], never a panic.
//!
//! Failpoint: `serve::read_frame` (io style) fires inside [`read_frame`],
//! modeling a connection that dies mid-frame.

use std::io::{Read, Write};

use anyscan_dynamic::{EdgeOp, EdgeUpdate};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Ceiling on request payloads the daemon will read. Requests are a few
/// dozen bytes; anything larger is garbage or abuse.
pub const REQUEST_FRAME_LIMIT: usize = 64 * 1024;

/// Ceiling on response payloads a client will read. Label blocks carry
/// ~5 bytes per vertex, so this admits graphs beyond 10^7 vertices.
pub const RESPONSE_FRAME_LIMIT: usize = 64 * 1024 * 1024;

/// Errors of the framing layer itself (beneath request decoding).
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection mid-frame (header or payload).
    Truncated { needed: usize, got: usize },
    /// The length prefix exceeds the frame ceiling.
    Oversized { len: usize, max: usize },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte limit"
                )
            }
            FrameError::Io(e) => write!(f, "frame io: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly at a frame
/// boundary); EOF anywhere inside a frame is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    anyscan_faults::inject_io("serve::read_frame").map_err(FrameError::Io)?;
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    needed: header.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated { needed: len, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::other("frame payload exceeds u32::MAX"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Structural errors decoding a frame payload into a [`Request`] or
/// [`Response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Empty payload, or an opcode/status byte outside the protocol.
    UnknownOpcode(u8),
    /// The payload ended before the opcode's fixed layout was complete.
    Truncated,
    /// Bytes remained after the opcode's layout was fully consumed.
    TrailingBytes(usize),
    /// A field value is structurally impossible (e.g. a non-UTF-8 error
    /// message, a label block longer than the frame).
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            DecodeError::BadValue(what) => write!(f, "bad value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn finish(buf: &Bytes) -> Result<(), DecodeError> {
    if buf.remaining() > 0 {
        Err(DecodeError::TrailingBytes(buf.remaining()))
    } else {
        Ok(())
    }
}

/// One edge mutation on the wire: a kind byte ([`UPDATE_INSERT`],
/// [`UPDATE_REMOVE`], [`UPDATE_REWEIGHT`]), the unordered endpoints and the
/// weight payload (ignored for removals). Sequence numbers are assigned by
/// the daemon — clients describe *what* to mutate, the writer decides the
/// global order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireUpdate {
    pub kind: u8,
    pub u: u32,
    pub v: u32,
    pub w: f64,
}

/// [`WireUpdate::kind`]: upsert the edge with weight `w`.
pub const UPDATE_INSERT: u8 = 0;
/// [`WireUpdate::kind`]: delete the edge (skipped when absent).
pub const UPDATE_REMOVE: u8 = 1;
/// [`WireUpdate::kind`]: set the weight of an existing edge.
pub const UPDATE_REWEIGHT: u8 = 2;

/// Bytes one [`WireUpdate`] occupies in an `ApplyUpdates` payload.
const WIRE_UPDATE_LEN: usize = 17;

/// A client request. Opcodes 1–8, fixed layouts, all little-endian.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Re-cluster the indexed graph at `(eps, mu)`; with `want_labels` the
    /// response carries the full per-vertex label/role arrays (in original
    /// vertex ids), otherwise just the role-count summary.
    Query {
        eps: f64,
        mu: u32,
        want_labels: bool,
    },
    /// Point lookup: the cluster label and role of one vertex (original id)
    /// at `(eps, mu)` — the highest-traffic query shape.
    Membership { vertex: u32, eps: f64, mu: u32 },
    /// A full anytime run at `(eps, mu)` under a per-request deadline
    /// (`deadline_ms`, 0 = none) and block budget (`max_blocks`, 0 = none);
    /// answers with the Lemma-1 best-so-far summary either way.
    Run {
        eps: f64,
        mu: u32,
        deadline_ms: u32,
        max_blocks: u64,
    },
    /// Health check; answered even when the admission queue is full.
    Ping,
    /// Ask the daemon to stop accepting connections and exit cleanly.
    Shutdown,
    /// Mutate the resident graph with one batch of edge updates (dynamic
    /// daemons only). Admission-controlled like `Run`; the daemon applies
    /// the batch through its incremental engine, repairs the index in place
    /// and epoch-swaps the snapshot its read path serves.
    ApplyUpdates { updates: Vec<WireUpdate> },
    /// A replica's subscription handshake: "stream me every committed ASUL
    /// entry with `seq > watermark`". Answered by [`Response::Subscribed`],
    /// after which the connection becomes a one-way primary→replica stream
    /// of [`Response::LogEntries`] frames; the replica never writes again.
    Subscribe { watermark: u64 },
    /// Turn a caught-up replica into a writable primary (fencing the old
    /// primary via the bumped term). Idempotent on a daemon that is already
    /// primary; a typed `BadRequest` on a static (non-dynamic) daemon.
    Promote,
}

const OP_QUERY: u8 = 1;
const OP_MEMBERSHIP: u8 = 2;
const OP_RUN: u8 = 3;
const OP_PING: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_APPLY_UPDATES: u8 = 6;
const OP_SUBSCRIBE: u8 = 7;
const OP_PROMOTE: u8 = 8;
/// Response-only code keying the unsolicited [`Response::LogEntries`]
/// stream frames a primary pushes to subscribed replicas.
const OP_LOG_ENTRIES: u8 = 9;

/// Bytes one replicated log entry occupies in a `LogEntries` payload
/// (same layout as an ASUL log entry: seq u64, u u32, v u32, op u8, w f64).
const LOG_ENTRY_LEN: usize = 25;

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        match *self {
            Request::Query {
                eps,
                mu,
                want_labels,
            } => {
                buf.put_u8(OP_QUERY);
                buf.put_f64_le(eps);
                buf.put_u32_le(mu);
                buf.put_u8(want_labels as u8);
            }
            Request::Membership { vertex, eps, mu } => {
                buf.put_u8(OP_MEMBERSHIP);
                buf.put_u32_le(vertex);
                buf.put_f64_le(eps);
                buf.put_u32_le(mu);
            }
            Request::Run {
                eps,
                mu,
                deadline_ms,
                max_blocks,
            } => {
                buf.put_u8(OP_RUN);
                buf.put_f64_le(eps);
                buf.put_u32_le(mu);
                buf.put_u32_le(deadline_ms);
                buf.put_u64_le(max_blocks);
            }
            Request::Ping => buf.put_u8(OP_PING),
            Request::Shutdown => buf.put_u8(OP_SHUTDOWN),
            Request::Subscribe { watermark } => {
                buf.put_u8(OP_SUBSCRIBE);
                buf.put_u64_le(watermark);
            }
            Request::Promote => buf.put_u8(OP_PROMOTE),
            Request::ApplyUpdates { ref updates } => {
                buf.put_u8(OP_APPLY_UPDATES);
                buf.put_u32_le(updates.len() as u32);
                for up in updates {
                    buf.put_u8(up.kind);
                    buf.put_u32_le(up.u);
                    buf.put_u32_le(up.v);
                    buf.put_f64_le(up.w);
                }
            }
        }
        buf.to_vec()
    }

    /// Parses a frame payload. Purely structural: parameter semantics
    /// (ε range, μ ≥ 1, vertex bounds) are the server's `BadRequest`.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut buf = Bytes::from(payload);
        need(&buf, 1)?;
        let op = buf.get_u8();
        let req = match op {
            OP_QUERY => {
                need(&buf, 13)?;
                Request::Query {
                    eps: buf.get_f64_le(),
                    mu: buf.get_u32_le(),
                    want_labels: buf.get_u8() != 0,
                }
            }
            OP_MEMBERSHIP => {
                need(&buf, 16)?;
                Request::Membership {
                    vertex: buf.get_u32_le(),
                    eps: buf.get_f64_le(),
                    mu: buf.get_u32_le(),
                }
            }
            OP_RUN => {
                need(&buf, 24)?;
                Request::Run {
                    eps: buf.get_f64_le(),
                    mu: buf.get_u32_le(),
                    deadline_ms: buf.get_u32_le(),
                    max_blocks: buf.get_u64_le(),
                }
            }
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            OP_APPLY_UPDATES => {
                need(&buf, 4)?;
                let n = buf.get_u32_le() as usize;
                let bytes = n
                    .checked_mul(WIRE_UPDATE_LEN)
                    .ok_or(DecodeError::BadValue("update batch length overflows"))?;
                need(&buf, bytes)?;
                let mut updates = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = buf.get_u8();
                    if kind > UPDATE_REWEIGHT {
                        return Err(DecodeError::BadValue("update kind"));
                    }
                    updates.push(WireUpdate {
                        kind,
                        u: buf.get_u32_le(),
                        v: buf.get_u32_le(),
                        w: buf.get_f64_le(),
                    });
                }
                Request::ApplyUpdates { updates }
            }
            OP_SUBSCRIBE => {
                need(&buf, 8)?;
                Request::Subscribe {
                    watermark: buf.get_u64_le(),
                }
            }
            OP_PROMOTE => Request::Promote,
            other => return Err(DecodeError::UnknownOpcode(other)),
        };
        finish(&buf)?;
        Ok(req)
    }
}

/// Typed rejection codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was structurally valid but semantically impossible
    /// (ε out of (0, 1], μ = 0, vertex out of range, undecodable payload).
    BadRequest,
    /// The admission queue is full; retry later. The connection stays open.
    Overloaded,
    /// The request was admitted but failed mid-execution (e.g. a worker
    /// panic surfaced as a typed pool error).
    Internal,
    /// The daemon is draining; no further requests will be admitted.
    ShuttingDown,
    /// A write (`ApplyUpdates` / `Shutdown`-adjacent mutation) reached a
    /// replica. The error *message* carries the leader hint — the primary's
    /// address as the replica knows it, empty when it has none — so a
    /// failover-aware client can retry against the right endpoint.
    NotPrimary,
    /// The connection sat idle (or stalled mid-frame) past the daemon's
    /// per-connection timeout (`--conn-timeout-ms`); the daemon sends this
    /// best-effort and closes.
    Timeout,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::Internal => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::NotPrimary => 4,
            ErrorCode::Timeout => 5,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, DecodeError> {
        Ok(match v {
            0 => ErrorCode::BadRequest,
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Internal,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::NotPrimary,
            5 => ErrorCode::Timeout,
            _ => return Err(DecodeError::BadValue("error code")),
        })
    }

    /// Stable lowercase label for human output and load reports.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::NotPrimary => "not_primary",
            ErrorCode::Timeout => "timeout",
        }
    }
}

/// Role-count summary of one clustering (the cheap response body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuerySummary {
    pub clusters: u32,
    pub cores: u32,
    pub borders: u32,
    pub hubs: u32,
    pub outliers: u32,
}

/// Per-vertex label/role arrays, in original vertex ids. `labels[v]` is
/// `u32::MAX` for noise; `roles[v]` is a [`role_name`] code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelBlock {
    pub labels: Vec<u32>,
    pub roles: Vec<u8>,
}

/// Daemon-side request counters returned by [`Request::Ping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    pub requests: u64,
    pub queries: u64,
    pub lookups: u64,
    pub runs: u64,
    pub overloaded: u64,
    pub protocol_errors: u64,
    /// `ApplyUpdates` batches accepted and applied (dynamic daemons).
    pub updates: u64,
    /// Connections closed for exceeding the per-connection read/write
    /// timeout (`--conn-timeout-ms`).
    pub timeouts: u64,
}

/// [`Health::role`]: the daemon accepts writes.
pub const ROLE_PRIMARY: u8 = 0;
/// [`Health::role`]: the daemon follows a primary and rejects writes with
/// [`ErrorCode::NotPrimary`].
pub const ROLE_REPLICA: u8 = 1;

/// Stable name of a [`Health::role`] code.
pub fn server_role_name(code: u8) -> Option<&'static str> {
    Some(match code {
        ROLE_PRIMARY => "primary",
        ROLE_REPLICA => "replica",
        _ => return None,
    })
}

/// The health/readiness probe body answered to [`Request::Ping`]. Carries
/// enough for an orchestrator (or the chaos harness) to tell *alive* from
/// *caught up*: the replication role and term, the epoch the read path
/// serves, the durable ASUL watermark, and live admission pressure —
/// followed by the cumulative [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Health {
    /// [`ROLE_PRIMARY`] or [`ROLE_REPLICA`].
    pub role: u8,
    /// Monotonic replication term the daemon is serving under.
    pub term: u64,
    /// Epoch counter of the snapshot answering reads.
    pub epoch: u64,
    /// Sequence number of the last durably applied update (0 when static).
    pub watermark: u64,
    /// Requests currently holding an admission slot.
    pub inflight: u32,
    /// Requests parked in the admission queue.
    pub queued: u32,
    /// Cumulative request counters.
    pub stats: ServeStats,
}

/// A daemon response. Status byte 0 = Ok (followed by the request's opcode
/// and its body), 1 = typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Query {
        summary: QuerySummary,
        labels: Option<LabelBlock>,
    },
    Membership {
        label: u32,
        role: u8,
    },
    Run {
        summary: QuerySummary,
        /// A [`completion_name`] code: how the anytime run ended.
        completion: u8,
        blocks: u64,
    },
    Ping(Health),
    Shutdown,
    /// Outcome of one applied batch: effective vs relaxed-no-op updates,
    /// the daemon-assigned watermark after the batch, and the epoch counter
    /// of the snapshot now serving queries.
    ApplyUpdates {
        applied: u64,
        skipped: u64,
        seq: u64,
        epoch: u64,
    },
    /// Subscription accepted: the primary's current term and its durable
    /// watermark at accept time. [`Response::LogEntries`] frames follow.
    Subscribed {
        term: u64,
        watermark: u64,
    },
    /// One primary→replica stream frame: committed ASUL entries (sequence
    /// numbers assigned by the primary, strictly ascending), stamped with
    /// the term they were committed under. Only ever pushed after the
    /// entries' durability point, so a replica is never ahead of the
    /// primary's disk.
    LogEntries {
        term: u64,
        entries: Vec<EdgeUpdate>,
    },
    /// Promotion outcome: the new term plus the epoch/watermark the fresh
    /// primary serves at.
    Promoted {
        term: u64,
        epoch: u64,
        watermark: u64,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
}

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

fn put_summary(buf: &mut BytesMut, s: &QuerySummary) {
    buf.put_u32_le(s.clusters);
    buf.put_u32_le(s.cores);
    buf.put_u32_le(s.borders);
    buf.put_u32_le(s.hubs);
    buf.put_u32_le(s.outliers);
}

fn get_summary(buf: &mut Bytes) -> Result<QuerySummary, DecodeError> {
    need(buf, 20)?;
    Ok(QuerySummary {
        clusters: buf.get_u32_le(),
        cores: buf.get_u32_le(),
        borders: buf.get_u32_le(),
        hubs: buf.get_u32_le(),
        outliers: buf.get_u32_le(),
    })
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Response::Query { summary, labels } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_QUERY);
                put_summary(&mut buf, summary);
                match labels {
                    None => buf.put_u8(0),
                    Some(block) => {
                        buf.put_u8(1);
                        buf.put_u32_le(block.labels.len() as u32);
                        for &l in &block.labels {
                            buf.put_u32_le(l);
                        }
                        buf.put_slice(&block.roles);
                    }
                }
            }
            Response::Membership { label, role } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_MEMBERSHIP);
                buf.put_u32_le(*label);
                buf.put_u8(*role);
            }
            Response::Run {
                summary,
                completion,
                blocks,
            } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_RUN);
                put_summary(&mut buf, summary);
                buf.put_u8(*completion);
                buf.put_u64_le(*blocks);
            }
            Response::Ping(health) => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_PING);
                buf.put_u8(health.role);
                buf.put_u64_le(health.term);
                buf.put_u64_le(health.epoch);
                buf.put_u64_le(health.watermark);
                buf.put_u32_le(health.inflight);
                buf.put_u32_le(health.queued);
                buf.put_u64_le(health.stats.requests);
                buf.put_u64_le(health.stats.queries);
                buf.put_u64_le(health.stats.lookups);
                buf.put_u64_le(health.stats.runs);
                buf.put_u64_le(health.stats.overloaded);
                buf.put_u64_le(health.stats.protocol_errors);
                buf.put_u64_le(health.stats.updates);
                buf.put_u64_le(health.stats.timeouts);
            }
            Response::Shutdown => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_SHUTDOWN);
            }
            Response::ApplyUpdates {
                applied,
                skipped,
                seq,
                epoch,
            } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_APPLY_UPDATES);
                buf.put_u64_le(*applied);
                buf.put_u64_le(*skipped);
                buf.put_u64_le(*seq);
                buf.put_u64_le(*epoch);
            }
            Response::Subscribed { term, watermark } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_SUBSCRIBE);
                buf.put_u64_le(*term);
                buf.put_u64_le(*watermark);
            }
            Response::LogEntries { term, entries } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_LOG_ENTRIES);
                buf.put_u64_le(*term);
                buf.put_u32_le(entries.len() as u32);
                for e in entries {
                    buf.put_u64_le(e.seq);
                    buf.put_u32_le(e.u);
                    buf.put_u32_le(e.v);
                    buf.put_u8(e.op.code());
                    buf.put_f64_le(e.op.weight());
                }
            }
            Response::Promoted {
                term,
                epoch,
                watermark,
            } => {
                buf.put_u8(STATUS_OK);
                buf.put_u8(OP_PROMOTE);
                buf.put_u64_le(*term);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*watermark);
            }
            Response::Error { code, message } => {
                buf.put_u8(STATUS_ERR);
                buf.put_u8(code.to_u8());
                buf.put_u32_le(message.len() as u32);
                buf.put_slice(message.as_bytes());
            }
        }
        buf.to_vec()
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut buf = Bytes::from(payload);
        need(&buf, 1)?;
        let resp = match buf.get_u8() {
            STATUS_OK => {
                need(&buf, 1)?;
                match buf.get_u8() {
                    OP_QUERY => {
                        let summary = get_summary(&mut buf)?;
                        need(&buf, 1)?;
                        let labels = match buf.get_u8() {
                            0 => None,
                            1 => {
                                need(&buf, 4)?;
                                let n = buf.get_u32_le() as usize;
                                // 5 bytes per vertex must still fit in the
                                // remaining payload, or the count is a lie.
                                if buf
                                    .remaining()
                                    .checked_sub(n.checked_mul(5).ok_or(DecodeError::BadValue(
                                        "label block length overflows",
                                    ))?)
                                    .is_none()
                                {
                                    return Err(DecodeError::Truncated);
                                }
                                let mut labels = Vec::with_capacity(n);
                                for _ in 0..n {
                                    labels.push(buf.get_u32_le());
                                }
                                let mut roles = vec![0u8; n];
                                buf.copy_to_slice(&mut roles);
                                if roles.iter().any(|&r| role_name(r).is_none()) {
                                    return Err(DecodeError::BadValue("role code"));
                                }
                                Some(LabelBlock { labels, roles })
                            }
                            _ => return Err(DecodeError::BadValue("label-block flag")),
                        };
                        Response::Query { summary, labels }
                    }
                    OP_MEMBERSHIP => {
                        need(&buf, 5)?;
                        let label = buf.get_u32_le();
                        let role = buf.get_u8();
                        if role_name(role).is_none() {
                            return Err(DecodeError::BadValue("role code"));
                        }
                        Response::Membership { label, role }
                    }
                    OP_RUN => {
                        let summary = get_summary(&mut buf)?;
                        need(&buf, 9)?;
                        let completion = buf.get_u8();
                        if completion_name(completion).is_none() {
                            return Err(DecodeError::BadValue("completion code"));
                        }
                        Response::Run {
                            summary,
                            completion,
                            blocks: buf.get_u64_le(),
                        }
                    }
                    OP_PING => {
                        need(&buf, 97)?;
                        let role = buf.get_u8();
                        if server_role_name(role).is_none() {
                            return Err(DecodeError::BadValue("server role code"));
                        }
                        Response::Ping(Health {
                            role,
                            term: buf.get_u64_le(),
                            epoch: buf.get_u64_le(),
                            watermark: buf.get_u64_le(),
                            inflight: buf.get_u32_le(),
                            queued: buf.get_u32_le(),
                            stats: ServeStats {
                                requests: buf.get_u64_le(),
                                queries: buf.get_u64_le(),
                                lookups: buf.get_u64_le(),
                                runs: buf.get_u64_le(),
                                overloaded: buf.get_u64_le(),
                                protocol_errors: buf.get_u64_le(),
                                updates: buf.get_u64_le(),
                                timeouts: buf.get_u64_le(),
                            },
                        })
                    }
                    OP_SHUTDOWN => Response::Shutdown,
                    OP_APPLY_UPDATES => {
                        need(&buf, 32)?;
                        Response::ApplyUpdates {
                            applied: buf.get_u64_le(),
                            skipped: buf.get_u64_le(),
                            seq: buf.get_u64_le(),
                            epoch: buf.get_u64_le(),
                        }
                    }
                    OP_SUBSCRIBE => {
                        need(&buf, 16)?;
                        Response::Subscribed {
                            term: buf.get_u64_le(),
                            watermark: buf.get_u64_le(),
                        }
                    }
                    OP_LOG_ENTRIES => {
                        need(&buf, 12)?;
                        let term = buf.get_u64_le();
                        let n = buf.get_u32_le() as usize;
                        let bytes = n
                            .checked_mul(LOG_ENTRY_LEN)
                            .ok_or(DecodeError::BadValue("log entry count overflows"))?;
                        need(&buf, bytes)?;
                        let mut entries = Vec::with_capacity(n);
                        for _ in 0..n {
                            let seq = buf.get_u64_le();
                            let u = buf.get_u32_le();
                            let v = buf.get_u32_le();
                            let code = buf.get_u8();
                            let w = buf.get_f64_le();
                            let Some(op) = EdgeOp::from_wire(code, w) else {
                                return Err(DecodeError::BadValue("log entry op code"));
                            };
                            entries.push(EdgeUpdate { seq, u, v, op });
                        }
                        Response::LogEntries { term, entries }
                    }
                    OP_PROMOTE => {
                        need(&buf, 24)?;
                        Response::Promoted {
                            term: buf.get_u64_le(),
                            epoch: buf.get_u64_le(),
                            watermark: buf.get_u64_le(),
                        }
                    }
                    other => return Err(DecodeError::UnknownOpcode(other)),
                }
            }
            STATUS_ERR => {
                need(&buf, 5)?;
                let code = ErrorCode::from_u8(buf.get_u8())?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let mut raw = vec![0u8; len];
                buf.copy_to_slice(&mut raw);
                let message = String::from_utf8(raw)
                    .map_err(|_| DecodeError::BadValue("error message is not UTF-8"))?;
                Response::Error { code, message }
            }
            other => return Err(DecodeError::UnknownOpcode(other)),
        };
        finish(&buf)?;
        Ok(resp)
    }
}

/// Role wire codes, matching `anyscan_scan_common::Role`'s `Debug` names so
/// a client can reproduce the CLI's `--labels-out` format byte for byte.
pub fn role_name(code: u8) -> Option<&'static str> {
    Some(match code {
        0 => "Core",
        1 => "Border",
        2 => "Hub",
        3 => "Outlier",
        4 => "Unclassified",
        _ => return None,
    })
}

/// Completion wire codes, matching `anyscan::Completion::label`.
pub fn completion_name(code: u8) -> Option<&'static str> {
    Some(match code {
        0 => "complete",
        1 => "canceled",
        2 => "deadline_expired",
        3 => "budget_exhausted",
        4 => "suspended",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Query {
            eps: 0.5,
            mu: 4,
            want_labels: true,
        });
        roundtrip_request(Request::Membership {
            vertex: 17,
            eps: 0.25,
            mu: 2,
        });
        roundtrip_request(Request::Run {
            eps: 0.75,
            mu: 8,
            deadline_ms: 250,
            max_blocks: 10,
        });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Subscribe { watermark: 42 });
        roundtrip_request(Request::Promote);
        roundtrip_request(Request::ApplyUpdates { updates: vec![] });
        roundtrip_request(Request::ApplyUpdates {
            updates: vec![
                WireUpdate {
                    kind: UPDATE_INSERT,
                    u: 0,
                    v: 9,
                    w: 1.25,
                },
                WireUpdate {
                    kind: UPDATE_REMOVE,
                    u: 3,
                    v: 4,
                    w: 0.0,
                },
                WireUpdate {
                    kind: UPDATE_REWEIGHT,
                    u: 7,
                    v: 2,
                    w: 0.5,
                },
            ],
        });
    }

    #[test]
    fn apply_updates_rejects_bad_kind_and_lying_count() {
        let mut raw = Request::ApplyUpdates {
            updates: vec![WireUpdate {
                kind: UPDATE_INSERT,
                u: 1,
                v: 2,
                w: 1.0,
            }],
        }
        .encode();
        raw[5] = 9; // kind byte of the first update
        assert_eq!(
            Request::decode(&raw),
            Err(DecodeError::BadValue("update kind"))
        );

        let mut raw = Request::ApplyUpdates { updates: vec![] }.encode();
        raw[1] = 200; // count says 200 updates, payload has none
        assert_eq!(Request::decode(&raw), Err(DecodeError::Truncated));
    }

    #[test]
    fn responses_roundtrip() {
        let summary = QuerySummary {
            clusters: 3,
            cores: 10,
            borders: 5,
            hubs: 1,
            outliers: 2,
        };
        for resp in [
            Response::Query {
                summary,
                labels: None,
            },
            Response::Query {
                summary,
                labels: Some(LabelBlock {
                    labels: vec![0, 0, u32::MAX, 1],
                    roles: vec![0, 1, 3, 0],
                }),
            },
            Response::Membership { label: 7, role: 1 },
            Response::Run {
                summary,
                completion: 2,
                blocks: 99,
            },
            Response::Ping(Health {
                role: ROLE_REPLICA,
                term: 3,
                epoch: 9,
                watermark: 27,
                inflight: 2,
                queued: 1,
                stats: ServeStats {
                    requests: 6,
                    queries: 3,
                    lookups: 1,
                    runs: 1,
                    overloaded: 1,
                    protocol_errors: 0,
                    updates: 2,
                    timeouts: 1,
                },
            }),
            Response::Shutdown,
            Response::ApplyUpdates {
                applied: 12,
                skipped: 3,
                seq: 15,
                epoch: 4,
            },
            Response::Subscribed {
                term: 2,
                watermark: 17,
            },
            Response::LogEntries {
                term: 2,
                entries: vec![],
            },
            Response::LogEntries {
                term: 2,
                entries: vec![
                    EdgeUpdate {
                        seq: 18,
                        u: 0,
                        v: 9,
                        op: EdgeOp::Insert(1.25),
                    },
                    EdgeUpdate {
                        seq: 19,
                        u: 3,
                        v: 4,
                        op: EdgeOp::Remove,
                    },
                    EdgeUpdate {
                        seq: 23,
                        u: 7,
                        v: 2,
                        op: EdgeOp::Reweight(0.5),
                    },
                ],
            },
            Response::Promoted {
                term: 3,
                epoch: 9,
                watermark: 23,
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "admission queue full".into(),
            },
            Response::Error {
                code: ErrorCode::NotPrimary,
                message: "127.0.0.1:9999".into(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(
            Request::decode(&[0x7f]),
            Err(DecodeError::UnknownOpcode(0x7f))
        );
        // Query payload cut short.
        let mut q = Request::Query {
            eps: 0.5,
            mu: 4,
            want_labels: false,
        }
        .encode();
        q.truncate(q.len() - 1);
        assert_eq!(Request::decode(&q), Err(DecodeError::Truncated));
        // Trailing garbage after a complete layout.
        let mut p = Request::Ping.encode();
        p.push(0xaa);
        assert_eq!(Request::decode(&p), Err(DecodeError::TrailingBytes(1)));
        // A label block whose count exceeds the payload.
        let resp = Response::Query {
            summary: QuerySummary::default(),
            labels: Some(LabelBlock {
                labels: vec![1, 2],
                roles: vec![0, 0],
            }),
        };
        let mut raw = resp.encode();
        // Bump the count field (status, op, 20-byte summary, flag => offset 23).
        raw[23] = 200;
        assert_eq!(Response::decode(&raw), Err(DecodeError::Truncated));
    }

    #[test]
    fn replication_frames_reject_malformed_payloads() {
        // Subscribe cut short.
        let mut raw = Request::Subscribe { watermark: 7 }.encode();
        raw.truncate(raw.len() - 1);
        assert_eq!(Request::decode(&raw), Err(DecodeError::Truncated));
        // Trailing bytes after Promote.
        let mut raw = Request::Promote.encode();
        raw.push(0x55);
        assert_eq!(Request::decode(&raw), Err(DecodeError::TrailingBytes(1)));
        // LogEntries whose count exceeds the payload.
        let mut raw = Response::LogEntries {
            term: 1,
            entries: vec![],
        }
        .encode();
        raw[10] = 77; // count field (status, op, 8-byte term => offset 10)
        assert_eq!(Response::decode(&raw), Err(DecodeError::Truncated));
        // LogEntries with an undecodable op code.
        let mut raw = Response::LogEntries {
            term: 1,
            entries: vec![EdgeUpdate {
                seq: 1,
                u: 0,
                v: 1,
                op: EdgeOp::Insert(1.0),
            }],
        }
        .encode();
        raw[30] = 9; // op byte of the first entry (14 header + seq + u + v)
        assert_eq!(
            Response::decode(&raw),
            Err(DecodeError::BadValue("log entry op code"))
        );
        // Ping with an unknown role byte.
        let mut raw = Response::Ping(Health::default()).encode();
        raw[2] = 7;
        assert_eq!(
            Response::decode(&raw),
            Err(DecodeError::BadValue("server role code"))
        );
    }

    #[test]
    fn frames_roundtrip_and_enforce_the_ceiling() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());

        // Oversized length prefix: rejected before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(wire);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }

        // EOF mid-header and mid-payload are both Truncated.
        let mut r = std::io::Cursor::new(vec![1u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated { .. })
        ));
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated { needed: 6, got: 4 })
        ));
    }
}
