//! Clustering-agreement metrics.
//!
//! The paper scores intermediate anytime results against SCAN's final result
//! with NMI [18], "defined as the geometric mean of shared information
//! between the clustering result C and the ground truth T", with noise
//! treated as one special cluster. [`nmi`] implements exactly that
//! normalization; [`adjusted_rand_index`], [`purity`] and [`pair_f1`] are
//! companion metrics used by the examples and tests.
//!
//! All metrics take two dense label slices of equal length; labels are
//! arbitrary `u32`s (callers map noise into a synthetic cluster first, e.g.
//! via `Clustering::labels_with_noise_cluster`).

pub mod contingency;
pub mod modularity;

pub use contingency::ContingencyTable;
pub use modularity::modularity;

/// Normalized mutual information with geometric-mean normalization:
/// `NMI(X,Y) = I(X;Y) / sqrt(H(X)·H(Y))`, in `[0, 1]`; 1 iff the partitions
/// are identical (up to relabeling).
///
/// Degenerate cases: two identical single-cluster partitions score 1; if
/// exactly one side is a single cluster (zero entropy) the score is 0.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label slices must align");
    if a.is_empty() {
        return 1.0;
    }
    let t = ContingencyTable::new(a, b);
    let (hx, hy) = (t.entropy_rows(), t.entropy_cols());
    if hx == 0.0 && hy == 0.0 {
        return 1.0; // both trivial partitions — and identical by construction
    }
    if hx == 0.0 || hy == 0.0 {
        return 0.0;
    }
    (t.mutual_information() / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Adjusted Rand index (Hubert–Arabie): 1 for identical partitions, ~0 for
/// independent ones, can be negative for adversarial ones.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label slices must align");
    let n = a.len();
    if n <= 1 {
        return 1.0;
    }
    let t = ContingencyTable::new(a, b);
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_ij: f64 = t.cells().map(|(_, _, c)| choose2(c)).sum();
    let sum_a: f64 = t.row_sums().iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = t.col_sums().iter().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial in the same way
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Purity of `a` against ground truth `b`: each cluster of `a` votes for its
/// dominant `b`-class; in `(0, 1]`.
pub fn purity(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label slices must align");
    if a.is_empty() {
        return 1.0;
    }
    let t = ContingencyTable::new(a, b);
    let mut correct = 0u64;
    for row in 0..t.num_rows() {
        correct += t.row(row).iter().copied().max().unwrap_or(0);
    }
    correct as f64 / a.len() as f64
}

/// Pair-counting F1: precision/recall over the set of same-cluster pairs.
pub fn pair_f1(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label slices must align");
    let t = ContingencyTable::new(a, b);
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let tp: f64 = t.cells().map(|(_, _, c)| choose2(c)).sum();
    let pairs_a: f64 = t.row_sums().iter().map(|&c| choose2(c)).sum();
    let pairs_b: f64 = t.col_sums().iter().map(|&c| choose2(c)).sum();
    if pairs_a == 0.0 && pairs_b == 0.0 {
        return 1.0; // both all-singletons
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / pairs_a;
    let recall = tp / pairs_b;
    2.0 * precision * recall / (precision + recall)
}

/// Pair-counting precision and recall of a prediction against a ground
/// truth: over the set of same-cluster vertex pairs, precision = the
/// fraction of `pred`'s pairs that `truth` also co-clusters, recall = the
/// fraction of `truth`'s pairs that `pred` recovers (the two components
/// [`pair_f1`] combines). A side with no co-clustered pairs scores 1.0 on
/// its own ratio (nothing claimed / nothing to recover).
pub fn pair_precision_recall(pred: &[u32], truth: &[u32]) -> (f64, f64) {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    let t = ContingencyTable::new(pred, truth);
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let tp: f64 = t.cells().map(|(_, _, c)| choose2(c)).sum();
    let pairs_pred: f64 = t.row_sums().iter().map(|&c| choose2(c)).sum();
    let pairs_truth: f64 = t.col_sums().iter().map(|&c| choose2(c)).sum();
    let precision = if pairs_pred == 0.0 {
        1.0
    } else {
        tp / pairs_pred
    };
    let recall = if pairs_truth == 0.0 {
        1.0
    } else {
        tp / pairs_truth
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((purity(&a, &a) - 1.0).abs() < 1e-12);
        assert!((pair_f1(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_is_invisible() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_are_directional() {
        // pred splits truth's one cluster of 4 into two pairs: every pred
        // pair is correct (precision 1) but only 2 of 6 truth pairs are
        // recovered (recall 1/3).
        let pred = vec![0, 0, 1, 1];
        let truth = vec![0, 0, 0, 0];
        let (p, r) = pair_precision_recall(&pred, &truth);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((r - 2.0 / 6.0).abs() < 1e-12);
        // Swapped roles flip the two numbers.
        let (p, r) = pair_precision_recall(&truth, &pred);
        assert!((p - 2.0 / 6.0).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
        // All-singleton prediction: nothing claimed, nothing recovered.
        let single = vec![0, 1, 2, 3];
        let (p, r) = pair_precision_recall(&single, &truth);
        assert!((p - 1.0).abs() < 1e-12);
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // a splits front/back, b splits even/odd — independent.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 0.01);
        // ARI is zero only in expectation over permutations; this particular
        // pairing lands slightly negative.
        assert!(adjusted_rand_index(&a, &b) < 0.05);
    }

    #[test]
    fn partial_agreement_is_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let s = nmi(&a, &b);
        assert!(s > 0.2 && s < 0.95, "nmi = {s}");
        let r = adjusted_rand_index(&a, &b);
        assert!(r > 0.1 && r < 0.95, "ari = {r}");
    }

    #[test]
    fn known_nmi_value() {
        // Hand-computed 2x2 example: n=4, a=[0,0,1,1], b=[0,1,1,1].
        // P(a=0)=1/2, P(b=0)=1/4; cells: (0,0)=1,(0,1)=1,(1,1)=2.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        let ln = |x: f64| x.ln();
        let i = 0.25 * ln(0.25 / (0.5 * 0.25))
            + 0.25 * ln(0.25 / (0.5 * 0.75))
            + 0.5 * ln(0.5 / (0.5 * 0.75));
        let hx = -(0.5f64.ln());
        let hy = -(0.25 * ln(0.25) + 0.75 * ln(0.75));
        let expect = i / (hx * hy).sqrt();
        assert!((nmi(&a, &b) - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(nmi(&[], &[]), 1.0);
        assert_eq!(nmi(&[0, 0, 0], &[1, 1, 1]), 1.0);
        // One side trivial, other not.
        assert_eq!(nmi(&[0, 0, 0, 0], &[0, 0, 1, 1]), 0.0);
        assert_eq!(adjusted_rand_index(&[7], &[3]), 1.0);
        assert_eq!(pair_f1(&[0, 1, 2], &[5, 6, 7]), 1.0);
    }

    #[test]
    fn purity_is_directional() {
        // Singletons are perfectly pure against anything.
        let a = vec![0, 1, 2, 3];
        let b = vec![0, 0, 1, 1];
        assert!((purity(&a, &b) - 1.0).abs() < 1e-12);
        assert!(purity(&b, &a) >= 0.49);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = nmi(&[0, 1], &[0]);
    }

    proptest! {
        #[test]
        fn nmi_is_symmetric_and_bounded(
            a in proptest::collection::vec(0u32..5, 1..60),
        ) {
            let b: Vec<u32> = a.iter().map(|&x| (x * 7 + 1) % 5).collect();
            let ab = nmi(&a, &b);
            let ba = nmi(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn refinement_scores_high_purity(
            labels in proptest::collection::vec(0u32..4, 2..60),
        ) {
            // Splitting every cluster in two keeps purity at 1 (refinements
            // are pure) and NMI below/equal 1.
            let refined: Vec<u32> = labels.iter().enumerate()
                .map(|(i, &l)| l * 2 + (i % 2) as u32).collect();
            prop_assert!((purity(&refined, &labels) - 1.0).abs() < 1e-9);
            prop_assert!(nmi(&refined, &labels) <= 1.0 + 1e-9);
        }
    }
}
