//! Newman–Girvan modularity of a labeling.
//!
//! SCAN-family results are often sanity-checked against modularity-based
//! methods (the paper's related-work §V); this implementation scores any
//! labeling over a weighted edge list without needing a graph type:
//!
//! `Q = Σ_c ( w_in(c)/W  −  (deg(c)/2W)² )`
//!
//! where `W` is the total edge weight, `w_in(c)` the intra-cluster weight
//! and `deg(c)` the weighted degree mass of cluster `c`. Noise/singleton
//! labels participate as their own (usually worthless) clusters, so callers
//! typically pass labels with noise folded into one special cluster or
//! filtered out.

use std::collections::HashMap;

/// Computes modularity from an iterator of undirected weighted edges
/// (`(u, v, w)`, each edge once; self-loops ignored) and per-vertex labels.
/// Returns 0 for an empty edge set.
pub fn modularity(edges: impl IntoIterator<Item = (u32, u32, f64)>, labels: &[u32]) -> f64 {
    let mut total = 0.0f64;
    let mut intra: HashMap<u32, f64> = HashMap::new();
    let mut degree: HashMap<u32, f64> = HashMap::new();
    for (u, v, w) in edges {
        if u == v {
            continue;
        }
        let (lu, lv) = (labels[u as usize], labels[v as usize]);
        total += w;
        *degree.entry(lu).or_insert(0.0) += w;
        *degree.entry(lv).or_insert(0.0) += w;
        if lu == lv {
            *intra.entry(lu).or_insert(0.0) += w;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    let two_w = 2.0 * total;
    degree
        .iter()
        .map(|(c, &d)| {
            let win = intra.get(c).copied().unwrap_or(0.0);
            win / total - (d / two_w) * (d / two_w)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_edges() -> Vec<(u32, u32, f64)> {
        let mut e = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    e.push((base + i, base + j, 1.0));
                }
            }
        }
        e.push((3, 4, 1.0)); // bridge
        e
    }

    #[test]
    fn separated_cliques_score_high() {
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q = modularity(two_cliques_edges(), &labels);
        assert!(q > 0.4, "q = {q}");
    }

    #[test]
    fn single_cluster_scores_zero() {
        let labels = vec![0; 8];
        let q = modularity(two_cliques_edges(), &labels);
        assert!(q.abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn adversarial_split_scores_negative() {
        // Put each clique's vertices in alternating clusters.
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let q = modularity(two_cliques_edges(), &labels);
        assert!(q < 0.0, "q = {q}");
    }

    #[test]
    fn weights_matter() {
        // Heavy intra, light bridge: higher q than uniform.
        let mut e = two_cliques_edges();
        for (u, v, w) in e.iter_mut() {
            *w = if (*u < 4) == (*v < 4) { 2.0 } else { 0.1 };
        }
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q_weighted = modularity(e, &labels);
        let q_uniform = modularity(two_cliques_edges(), &labels);
        assert!(q_weighted > q_uniform);
    }

    #[test]
    fn empty_and_self_loops() {
        assert_eq!(modularity(Vec::new(), &[]), 0.0);
        let q = modularity(vec![(0u32, 0u32, 5.0)], &[0]);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn hand_computed_value() {
        // Triangle + isolated edge, all unit: W = 4.
        // Clusters: {0,1,2} (the triangle), {3,4} (the edge).
        let edges = vec![(0u32, 1u32, 1.0), (1, 2, 1.0), (2, 0, 1.0), (3, 4, 1.0)];
        let labels = vec![0, 0, 0, 1, 1];
        // Q = (3/4 - (6/8)^2) + (1/4 - (2/8)^2) = 0.75-0.5625 + 0.25-0.0625 = 0.375
        let q = modularity(edges, &labels);
        assert!((q - 0.375).abs() < 1e-12, "q = {q}");
    }
}
