//! Contingency tables over pairs of labelings.

use std::collections::HashMap;

/// A dense contingency table built from two aligned label slices: cell
/// `(i, j)` counts items labeled `i` by the first partition and `j` by the
/// second (labels are remapped to dense indices internally).
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    cells: Vec<u64>,
    rows: usize,
    cols: usize,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    total: u64,
}

impl ContingencyTable {
    /// Builds the table in `O(n)` expected time.
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len());
        let mut row_ids: HashMap<u32, usize> = HashMap::new();
        let mut col_ids: HashMap<u32, usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(a.len());
        for (&la, &lb) in a.iter().zip(b) {
            let next_r = row_ids.len();
            let r = *row_ids.entry(la).or_insert(next_r);
            let next_c = col_ids.len();
            let c = *col_ids.entry(lb).or_insert(next_c);
            pairs.push((r, c));
        }
        let rows = row_ids.len();
        let cols = col_ids.len();
        let mut cells = vec![0u64; rows * cols];
        let mut row_sums = vec![0u64; rows];
        let mut col_sums = vec![0u64; cols];
        for (r, c) in pairs {
            cells[r * cols + c] += 1;
            row_sums[r] += 1;
            col_sums[c] += 1;
        }
        ContingencyTable {
            cells,
            rows,
            cols,
            row_sums,
            col_sums,
            total: a.len() as u64,
        }
    }

    /// Number of distinct labels in the first partition.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct labels in the second partition.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Total number of items.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// One row of counts.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.cells[r * self.cols..(r + 1) * self.cols]
    }

    /// Marginal counts of the first partition.
    pub fn row_sums(&self) -> &[u64] {
        &self.row_sums
    }

    /// Marginal counts of the second partition.
    pub fn col_sums(&self) -> &[u64] {
        &self.col_sums
    }

    /// Iterator over non-empty cells `(row, col, count)`.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(move |(idx, &c)| (idx / self.cols, idx % self.cols, c))
    }

    /// Shannon entropy (nats) of the first partition's marginal.
    pub fn entropy_rows(&self) -> f64 {
        entropy(&self.row_sums, self.total)
    }

    /// Shannon entropy (nats) of the second partition's marginal.
    pub fn entropy_cols(&self) -> f64 {
        entropy(&self.col_sums, self.total)
    }

    /// Mutual information (nats) between the two partitions.
    pub fn mutual_information(&self) -> f64 {
        let n = self.total as f64;
        let mut mi = 0.0;
        for (r, c, count) in self.cells() {
            let pij = count as f64 / n;
            let pi = self.row_sums[r] as f64 / n;
            let pj = self.col_sums[c] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
        mi.max(0.0)
    }
}

fn entropy(counts: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counts_and_marginals() {
        let a = [0, 0, 1, 1, 1];
        let b = [9, 8, 8, 8, 8];
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.total(), 5);
        assert_eq!(t.row_sums(), &[2, 3]);
        assert_eq!(t.col_sums(), &[1, 4]);
        let cells: Vec<_> = t.cells().collect();
        assert_eq!(cells, vec![(0, 0, 1), (0, 1, 1), (1, 1, 3)]);
    }

    #[test]
    fn entropy_of_uniform_marginal() {
        let a = [0, 1, 2, 3];
        let b = [0, 0, 0, 0];
        let t = ContingencyTable::new(&a, &b);
        assert!((t.entropy_rows() - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(t.entropy_cols(), 0.0);
        assert_eq!(t.mutual_information(), 0.0);
    }

    #[test]
    fn mi_of_identical_partitions_equals_entropy() {
        let a = [0, 0, 1, 1, 2, 2, 2];
        let t = ContingencyTable::new(&a, &a);
        assert!((t.mutual_information() - t.entropy_rows()).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let t = ContingencyTable::new(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.entropy_rows(), 0.0);
        assert_eq!(t.mutual_information(), 0.0);
    }
}
