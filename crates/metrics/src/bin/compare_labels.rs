//! `anyscan-compare-labels` — scores one labels file against another.
//!
//! Both files use the CLI's `--labels-out` format (`# vertex cluster role`
//! header, then `v label role` lines, `-` = noise). Noise vertices become
//! unique singleton clusters before scoring, so a noise/cluster disagreement
//! costs exactly the pairs it breaks. Prints ARI and pairwise
//! precision/recall of the first file against the second, and exits non-zero
//! when any `--min-*` gate fails — the CI sketch-smoke job's quality gate.
//!
//! ```text
//! anyscan-compare-labels PRED_FILE TRUTH_FILE \
//!     [--min-ari X] [--min-precision X] [--min-recall X]
//! ```

use std::process::ExitCode;

use anyscan_metrics::{adjusted_rand_index, pair_precision_recall};

/// Parses a `--labels-out` file into dense labels, mapping each noise
/// vertex (`-`) to a fresh singleton cluster.
fn read_labels(path: &str) -> Result<Vec<u32>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut rows: Vec<(usize, Option<u32>)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(v), Some(label)) = (it.next(), it.next()) else {
            return Err(format!(
                "{path}:{}: expected `vertex label role`",
                lineno + 1
            ));
        };
        let v: usize = v
            .parse()
            .map_err(|_| format!("{path}:{}: bad vertex id {v:?}", lineno + 1))?;
        let label = match label {
            "-" => None,
            raw => Some(
                raw.parse::<u32>()
                    .map_err(|_| format!("{path}:{}: bad cluster label {raw:?}", lineno + 1))?,
            ),
        };
        rows.push((v, label));
    }
    rows.sort_unstable_by_key(|&(v, _)| v);
    for (i, &(v, _)) in rows.iter().enumerate() {
        if v != i {
            return Err(format!("{path}: vertex ids are not dense at {v}"));
        }
    }
    // Noise → unique singletons above every real label.
    let mut next = rows
        .iter()
        .filter_map(|&(_, l)| l)
        .max()
        .map_or(0, |m| m + 1);
    Ok(rows
        .into_iter()
        .map(|(_, l)| {
            l.unwrap_or_else(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect())
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut gates: Vec<(String, f64)> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            flag @ ("--min-ari" | "--min-precision" | "--min-recall") => {
                let raw = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                let min: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad value for {flag}: {raw:?}"))?;
                gates.push((flag.to_string(), min));
                i += 2;
            }
            other => {
                files.push(other.to_string());
                i += 1;
            }
        }
    }
    let [pred_path, truth_path] = files.as_slice() else {
        return Err("usage: anyscan-compare-labels PRED_FILE TRUTH_FILE \
             [--min-ari X] [--min-precision X] [--min-recall X]"
            .into());
    };
    let pred = read_labels(pred_path)?;
    let truth = read_labels(truth_path)?;
    if pred.len() != truth.len() {
        return Err(format!(
            "{pred_path} has {} vertices, {truth_path} has {}",
            pred.len(),
            truth.len()
        ));
    }
    let ari = adjusted_rand_index(&pred, &truth);
    let (precision, recall) = pair_precision_recall(&pred, &truth);
    println!("vertices  {}", pred.len());
    println!("ari       {ari:.6}");
    println!("precision {precision:.6}");
    println!("recall    {recall:.6}");
    let mut ok = true;
    for (flag, min) in gates {
        let got = match flag.as_str() {
            "--min-ari" => ari,
            "--min-precision" => precision,
            _ => recall,
        };
        if got < min {
            eprintln!("FAIL: {flag} {min} not met (got {got:.6})");
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
