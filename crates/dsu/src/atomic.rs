//! Lock-free concurrent union-find.
//!
//! Parents live in `AtomicU32`s; `find` applies path halving with benign-race
//! CAS updates, and `union` links roots by rank with a CAS retry loop — the
//! classic wait-free-find design of Anderson & Woll, also used by the
//! parallel DBSCAN of Patwary et al. [28] that the paper cites as prior art
//! for disjoint-set-based parallel clustering.
//!
//! Linearizability argument (informal): a root is only ever modified by the
//! CAS in `union`, which succeeds exactly once per root (a node stops being a
//! root forever afterwards). Path-halving CASes only replace a node's parent
//! with its current grandparent, which preserves the set structure. Ranks are
//! updated racily, which can only cost balance, never correctness.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::{DsuCounters, SharedDsu};

/// Concurrent disjoint-set structure with lock-free `find` and `union`.
#[derive(Debug)]
pub struct AtomicDsu {
    parent: Vec<AtomicU32>,
    rank: Vec<AtomicU32>,
    unions: AtomicU64,
    finds: AtomicU64,
}

impl AtomicDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        AtomicDsu {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            rank: (0..n).map(|_| AtomicU32::new(0)).collect(),
            unions: AtomicU64::new(0),
            finds: AtomicU64::new(0),
        }
    }

    /// Builds from an existing sequential structure (set partition is
    /// preserved; counters restart at the sequential structure's values).
    pub fn from_seq(seq: &crate::DsuSeq) -> Self {
        let n = seq.len();
        let d = AtomicDsu::new(n);
        for x in 0..n as u32 {
            let r = seq.find_immutable(x);
            d.parent[x as usize].store(r, Ordering::Relaxed);
        }
        d.unions.store(seq.counters().unions, Ordering::Relaxed);
        d.finds.store(seq.counters().finds, Ordering::Relaxed);
        d
    }

    /// Number of distinct sets (linear scan; call it outside hot loops).
    pub fn num_sets(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&x| self.parent[x as usize].load(Ordering::Acquire) == x)
            .count()
    }

    /// Canonical labeling: each element mapped to the smallest member of its
    /// set. Only meaningful while no concurrent mutation is in flight.
    pub fn labeling(&self) -> Vec<u32> {
        let n = self.parent.len();
        let mut smallest = vec![u32::MAX; n];
        let roots: Vec<u32> = (0..n as u32).map(|x| self.find(x)).collect();
        for x in 0..n as u32 {
            let r = roots[x as usize] as usize;
            if smallest[r] > x {
                smallest[r] = x;
            }
        }
        roots.into_iter().map(|r| smallest[r as usize]).collect()
    }
}

impl SharedDsu for AtomicDsu {
    fn find(&self, mut x: u32) -> u32 {
        self.finds.fetch_add(1, Ordering::Relaxed);
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path halving; failure is benign (someone else helped).
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    fn union(&self, x: u32, y: u32) -> bool {
        let mut x = x;
        let mut y = y;
        loop {
            x = self.find(x);
            y = self.find(y);
            if x == y {
                return false;
            }
            let rx = self.rank[x as usize].load(Ordering::Relaxed);
            let ry = self.rank[y as usize].load(Ordering::Relaxed);
            // Link the lower-rank root under the higher-rank one; tie-break
            // by id so both sides attempt the same orientation.
            let (lo, hi, r_lo, r_hi) = if (rx, x) < (ry, y) {
                (x, y, rx, ry)
            } else {
                (y, x, ry, rx)
            };
            match self.parent[lo as usize].compare_exchange(
                lo,
                hi,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if r_lo == r_hi {
                        // Racy rank bump: affects balance only.
                        let _ = self.rank[hi as usize].compare_exchange(
                            r_hi,
                            r_hi + 1,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                    }
                    self.unions.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(_) => {
                    // `lo` stopped being a root underneath us; retry from the
                    // new roots.
                    continue;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn counters(&self) -> DsuCounters {
        DsuCounters {
            finds: self.finds.load(Ordering::Relaxed),
            unions: self.unions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DsuSeq;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let d = AtomicDsu::new(5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(3, 4));
        assert!(d.union(0, 4));
        assert!(d.same_set(1, 3));
        assert!(!d.same_set(1, 2));
        assert_eq!(d.num_sets(), 2);
        assert_eq!(d.counters().unions, 3);
    }

    #[test]
    fn from_seq_preserves_partition() {
        let mut s = DsuSeq::new(8);
        s.union(0, 3);
        s.union(3, 7);
        s.union(1, 2);
        let d = AtomicDsu::from_seq(&s);
        for x in 0..8u32 {
            for y in 0..8u32 {
                assert_eq!(d.same_set(x, y), s.same_set(x, y), "({x},{y})");
            }
        }
        assert_eq!(d.counters().unions, s.counters().unions);
    }

    #[test]
    fn labeling_matches_seq() {
        let mut s = DsuSeq::new(6);
        let d = AtomicDsu::new(6);
        for (a, b) in [(4u32, 2u32), (2, 5), (0, 1)] {
            s.union(a, b);
            d.union(a, b);
        }
        assert_eq!(d.labeling(), s.labeling());
    }

    #[test]
    fn concurrent_stress_agrees_with_sequential() {
        // Same random operation multiset applied concurrently and
        // sequentially must yield the same partition (unions commute).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 2_000u32;
        let mut rng = StdRng::seed_from_u64(99);
        let ops: Vec<(u32, u32)> = (0..5_000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();

        let mut seq = DsuSeq::new(n as usize);
        for &(a, b) in &ops {
            seq.union(a, b);
        }

        for threads in [2usize, 4, 8] {
            let d = Arc::new(AtomicDsu::new(n as usize));
            let merged = std::sync::atomic::AtomicU64::new(0);
            crossbeam::thread::scope(|s| {
                for t in 0..threads {
                    let d = Arc::clone(&d);
                    let ops = &ops;
                    let merged = &merged;
                    s.spawn(move |_| {
                        let mut local = 0u64;
                        for &(a, b) in ops.iter().skip(t).step_by(threads) {
                            if d.union(a, b) {
                                local += 1;
                            }
                        }
                        merged.fetch_add(local, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            // Exactly (n - num_sets) successful unions can ever happen.
            assert_eq!(
                merged.load(Ordering::Relaxed),
                (n as usize - d.num_sets()) as u64
            );
            assert_eq!(d.counters().unions, merged.load(Ordering::Relaxed));
            // Partition equality with the sequential run.
            let mut seq_labels = seq.labeling();
            let atomic_labels = d.labeling();
            seq_labels.iter_mut().for_each(|_| {}); // same canonical form already
            assert_eq!(
                atomic_labels, seq_labels,
                "partition mismatch at {threads} threads"
            );
        }
    }

    proptest! {
        #[test]
        fn matches_seq_on_random_ops(ops in proptest::collection::vec((0u32..30, 0u32..30), 0..150)) {
            let d = AtomicDsu::new(30);
            let mut s = DsuSeq::new(30);
            for (a, b) in ops {
                prop_assert_eq!(d.union(a, b), s.union(a, b));
            }
            prop_assert_eq!(d.labeling(), s.labeling());
            prop_assert_eq!(d.num_sets(), s.num_sets());
        }
    }
}
