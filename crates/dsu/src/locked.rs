//! Mutex-protected union-find: the paper's `#pragma omp critical` analogue.

use parking_lot::Mutex;

use crate::seq::DsuSeq;
use crate::{DsuCounters, SharedDsu};

/// [`DsuSeq`] behind a [`parking_lot::Mutex`].
///
/// This mirrors the paper's parallelization exactly: every `Union` (and here
/// also `Find`) executes inside a critical section. The paper argues the
/// number of Union operations is small enough that this does not hurt
/// scalability (§III-B, Fig. 12); the DSU ablation bench compares this
/// against the lock-free [`crate::AtomicDsu`] to check that claim.
#[derive(Debug)]
pub struct LockedDsu {
    inner: Mutex<DsuSeq>,
}

impl LockedDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        LockedDsu {
            inner: Mutex::new(DsuSeq::new(n)),
        }
    }

    /// Wraps an existing sequential structure (preserving its counters).
    pub fn from_seq(seq: DsuSeq) -> Self {
        LockedDsu {
            inner: Mutex::new(seq),
        }
    }

    /// Unwraps back into the sequential structure.
    pub fn into_seq(self) -> DsuSeq {
        self.inner.into_inner()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.inner.lock().num_sets()
    }
}

impl SharedDsu for LockedDsu {
    fn find(&self, x: u32) -> u32 {
        self.inner.lock().find(x)
    }

    fn union(&self, x: u32, y: u32) -> bool {
        self.inner.lock().union(x, y)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn counters(&self) -> DsuCounters {
        self.inner.lock().counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wraps_and_unwraps() {
        let mut seq = DsuSeq::new(3);
        seq.union(0, 1);
        let locked = LockedDsu::from_seq(seq);
        assert!(locked.same_set(0, 1));
        assert!(locked.union(1, 2));
        let mut seq = locked.into_seq();
        assert!(seq.same_set(0, 2));
        assert_eq!(seq.counters().unions, 2);
    }

    #[test]
    fn concurrent_unions_produce_single_set() {
        let n = 1_000;
        let d = Arc::new(LockedDsu::new(n));
        let threads = 4;
        crossbeam::thread::scope(|s| {
            for t in 0..threads {
                let d = Arc::clone(&d);
                s.spawn(move |_| {
                    // Each thread links a strided chain; together they chain
                    // every element to element 0.
                    let mut i = t;
                    while i + threads < n {
                        d.union(i as u32, (i + threads) as u32);
                        i += threads;
                    }
                    d.union(0, t as u32);
                });
            }
        })
        .unwrap();
        assert_eq!(d.num_sets(), 1);
        let root = d.find(0);
        for x in 0..n as u32 {
            assert_eq!(d.find(x), root);
        }
    }
}
