//! Disjoint-set (union-find) substrates for the anySCAN reproduction.
//!
//! anySCAN tracks cluster membership of *super-nodes* in a disjoint-set
//! structure (paper §III-A); the parallel version executes `Union` inside a
//! critical section (paper §III-B, Fig. 4 lines 41/60). This crate provides:
//!
//! * [`DsuSeq`] — the textbook sequential structure (union by rank, path
//!   halving) with `Find`/`Union` operation counters, used by the sequential
//!   algorithms and by pSCAN. The counters feed Fig. 12.
//! * [`LockedDsu`] — [`DsuSeq`] behind a [`parking_lot::Mutex`]; the direct
//!   analogue of the paper's `#pragma omp critical` around `Union`.
//! * [`AtomicDsu`] — a lock-free union-find (CAS parent updates, union by
//!   rank, path halving) usable concurrently from many threads without any
//!   critical section; the default for the parallel driver and one leg of
//!   the DSU ablation bench.
//!
//! Both shared variants implement [`SharedDsu`], so the parallel driver is
//! generic over the synchronization strategy.

pub mod atomic;
pub mod locked;
pub mod seq;

pub use atomic::AtomicDsu;
pub use locked::LockedDsu;
pub use seq::DsuSeq;

/// Operation counts of a disjoint-set structure (Fig. 12's y-axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsuCounters {
    /// Number of `find` calls.
    pub finds: u64,
    /// Number of `union` calls that actually merged two distinct sets.
    pub unions: u64,
}

/// A disjoint-set structure shareable across threads.
pub trait SharedDsu: Sync + Send {
    /// Returns the current representative of `x`'s set.
    fn find(&self, x: u32) -> u32;
    /// Merges the sets of `x` and `y`; returns true if they were distinct.
    fn union(&self, x: u32, y: u32) -> bool;
    /// True if `x` and `y` are currently in the same set.
    fn same_set(&self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }
    /// Number of elements.
    fn len(&self) -> usize;
    /// True if the structure tracks no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Snapshot of the operation counters.
    fn counters(&self) -> DsuCounters;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(d: &dyn SharedDsu) {
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.same_set(0, 1));
        assert!(!d.same_set(0, 2));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        for a in 0..4 {
            for b in 0..4 {
                assert!(d.same_set(a, b));
            }
        }
        assert_eq!(d.counters().unions, 3);
    }

    #[test]
    fn both_shared_variants_agree() {
        exercise(&AtomicDsu::new(4));
        exercise(&LockedDsu::new(4));
    }
}
