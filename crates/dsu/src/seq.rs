//! Sequential union-find with union by rank and path halving.

use crate::DsuCounters;

/// The textbook disjoint-set structure [CLRS, ch. 21] used by the sequential
/// algorithms. `Find`/`Union` run in amortized `O(α(n))`.
///
/// Operation counters are maintained so the harness can reproduce Fig. 12
/// (number of Union operations of anySCAN vs pSCAN vs |V|).
#[derive(Debug, Clone)]
pub struct DsuSeq {
    parent: Vec<u32>,
    rank: Vec<u8>,
    counters: DsuCounters,
    /// Number of disjoint sets currently tracked.
    num_sets: usize,
}

impl DsuSeq {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        DsuSeq {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            counters: DsuCounters::default(),
            num_sets: n,
        }
    }

    /// Rebuilds a structure from a parent forest snapshot (e.g. loaded from
    /// a checkpoint) and previously accumulated counters. The snapshot must
    /// be *canonical*: every entry points directly at its set's root
    /// (`parent[parent[x]] == parent[x]`), which is how
    /// [`find_immutable`](Self::find_immutable) flattens one. Ranks restart
    /// at zero — union-by-rank stays correct, only tree shapes differ.
    pub fn from_parts(parent: Vec<u32>, counters: DsuCounters) -> Result<DsuSeq, String> {
        let n = parent.len();
        if n > u32::MAX as usize {
            return Err(format!("{n} elements exceed u32 ids"));
        }
        let mut num_sets = 0;
        for (x, &p) in parent.iter().enumerate() {
            if p as usize >= n {
                return Err(format!("element {x}: parent {p} out of range"));
            }
            if p == x as u32 {
                num_sets += 1;
            } else if parent[p as usize] != p {
                return Err(format!(
                    "element {x}: parent {p} is not a root (snapshot not canonical)"
                ));
            }
        }
        Ok(DsuSeq {
            parent,
            rank: vec![0; n],
            counters,
            num_sets,
        })
    }

    /// The canonical parent forest: every element mapped to its root
    /// (a snapshot accepted by [`from_parts`](Self::from_parts)).
    pub fn roots(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|x| self.find_immutable(x))
            .collect()
    }

    /// Appends a fresh singleton set and returns its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.num_sets += 1;
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no elements are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set, halving the path on the way.
    pub fn find(&mut self, mut x: u32) -> u32 {
        self.counters.finds += 1;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no path compression, no counter bump); useful from
    /// contexts holding only a shared borrow.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merges the sets containing `x` and `y`; returns true if they were
    /// distinct (only such calls count toward [`DsuCounters::unions`]).
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        self.counters.unions += 1;
        self.num_sets -= 1;
        let (hi, lo) = if self.rank[rx as usize] >= self.rank[ry as usize] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// True if `x` and `y` share a set.
    pub fn same_set(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Snapshot of the operation counters.
    pub fn counters(&self) -> DsuCounters {
        self.counters
    }

    /// Resets the operation counters (e.g. between experiment phases).
    pub fn reset_counters(&mut self) {
        self.counters = DsuCounters::default();
    }

    /// Canonical labeling: `labels[x]` is the smallest element of `x`'s set.
    /// Useful to compare two structures for set-partition equality.
    pub fn labeling(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut smallest = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if smallest[r] > x {
                smallest[r] = x;
            }
        }
        (0..n as u32)
            .map(|x| smallest[self.find_immutable(x) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_at_start() {
        let mut d = DsuSeq::new(5);
        assert_eq!(d.num_sets(), 5);
        for x in 0..5 {
            assert_eq!(d.find(x), x);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DsuSeq::new(4);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0), "repeat union must be a no-op");
        assert!(d.union(0, 2));
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.counters().unions, 3);
        assert!(d.same_set(1, 3));
    }

    #[test]
    fn push_adds_singletons() {
        let mut d = DsuSeq::new(2);
        let id = d.push();
        assert_eq!(id, 2);
        assert_eq!(d.len(), 3);
        assert!(!d.same_set(0, 2));
        d.union(0, 2);
        assert!(d.same_set(0, 2));
    }

    #[test]
    fn labeling_is_canonical() {
        let mut d = DsuSeq::new(6);
        d.union(4, 2);
        d.union(2, 5);
        d.union(0, 1);
        assert_eq!(d.labeling(), vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut d = DsuSeq::new(10);
        for i in 0..9 {
            d.union(i, i + 1);
        }
        for x in 0..10 {
            assert_eq!(d.find_immutable(x), d.find(x));
        }
    }

    #[test]
    fn empty() {
        let d = DsuSeq::new(0);
        assert!(d.is_empty());
        assert_eq!(d.num_sets(), 0);
    }

    #[test]
    fn roots_from_parts_roundtrip() {
        let mut d = DsuSeq::new(6);
        d.union(0, 3);
        d.union(3, 5);
        d.union(1, 2);
        let restored = DsuSeq::from_parts(d.roots(), d.counters()).unwrap();
        assert_eq!(restored.num_sets(), d.num_sets());
        assert_eq!(restored.counters(), d.counters());
        let mut a = restored;
        assert_eq!(a.labeling(), d.labeling());

        // Invalid snapshots are rejected.
        assert!(DsuSeq::from_parts(vec![5, 0, 0], DsuCounters::default()).is_err());
        assert!(DsuSeq::from_parts(vec![1, 2, 2], DsuCounters::default()).is_err());
    }

    proptest! {
        /// The DSU partition must equal a naive reference labeling under any
        /// operation sequence.
        #[test]
        fn matches_naive_reference(ops in proptest::collection::vec((0u32..40, 0u32..40), 0..200)) {
            let n = 40;
            let mut d = DsuSeq::new(n);
            let mut naive: Vec<u32> = (0..n as u32).collect();
            for (a, b) in ops {
                let (la, lb) = (naive[a as usize], naive[b as usize]);
                let merged_distinct = la != lb;
                if merged_distinct {
                    for l in naive.iter_mut() {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
                prop_assert_eq!(d.union(a, b), merged_distinct);
            }
            for x in 0..n as u32 {
                for y in 0..n as u32 {
                    prop_assert_eq!(
                        d.same_set(x, y),
                        naive[x as usize] == naive[y as usize],
                        "disagree on ({}, {})", x, y
                    );
                }
            }
            // num_sets must equal the number of distinct naive labels.
            let mut labels: Vec<u32> = naive.clone();
            labels.sort_unstable();
            labels.dedup();
            prop_assert_eq!(d.num_sets(), labels.len());
        }

        /// Rank union keeps trees shallow: find never loops excessively.
        #[test]
        fn long_union_chains_stay_fast(n in 1usize..500) {
            let mut d = DsuSeq::new(n);
            for i in 0..n as u32 - 1 {
                d.union(i, i + 1);
            }
            prop_assert_eq!(d.num_sets(), 1);
            let root = d.find(0);
            for x in 0..n as u32 {
                prop_assert_eq!(d.find(x), root);
            }
        }
    }
}
