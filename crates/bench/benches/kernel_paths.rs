//! Microbenchmarks of the σ kernel paths — classic merge-join, hash
//! probing, hub bitmaps, MinHash sketches, and batched source-major range
//! queries — on a uniform (Erdős–Rényi) and a skewed (R-MAT power-law)
//! degree distribution. The bitmap path only pays off when heavy rows
//! exist, so the two shapes bracket its best and worst case; the sketch
//! path's cost is degree-independent, so the same bracket shows where the
//! approximation starts to win.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use anyscan_graph::gen::{erdos_renyi, rmat, RmatParams, WeightModel};
use anyscan_graph::CsrGraph;
use anyscan_scan_common::{BatchScratch, Kernel, NeighborIndex, ScanParams, SketchMode};

fn shapes() -> Vec<(&'static str, CsrGraph)> {
    let n = 4_096;
    let mut rng = StdRng::seed_from_u64(11);
    let uniform = erdos_renyi(&mut rng, n, n * 16, WeightModel::uniform_default());
    let mut p = RmatParams::graph500(12, 16);
    p.weights = WeightModel::uniform_default();
    let skewed = rmat(&mut rng, &p);
    vec![("uniform", uniform), ("skewed", skewed)]
}

fn bench_kernel_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_paths");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    let params = ScanParams::paper_defaults();
    for (shape, g) in shapes() {
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).take(4_096).collect();
        // Edge cache off everywhere: measure the evaluation, not the memo.
        let merge = Kernel::new(&g, params).with_edge_cache(false);
        let bitmap = Kernel::new(&g, params)
            .with_edge_cache(false)
            .with_hub_bitmaps(true);
        let probe = NeighborIndex::new(&g);
        // Sketch build cost is excluded: it is paid once per run and the
        // question here is the steady-state per-decision price.
        let sketch = Kernel::new(&g, params)
            .with_edge_cache(false)
            .with_sketch_params(SketchMode::Approx, 128, 8, 11, 1);

        group.bench_function(format!("merge/{shape}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &(u, v) in &edges {
                    acc += merge.is_eps_neighbor(black_box(u), v) as usize;
                }
                acc
            })
        });
        group.bench_function(format!("probe/{shape}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(u, v) in &edges {
                    acc += probe.sigma(black_box(&g), u, v);
                }
                acc
            })
        });
        group.bench_function(format!("bitmap/{shape}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &(u, v) in &edges {
                    acc += bitmap.is_eps_neighbor(black_box(u), v) as usize;
                }
                acc
            })
        });
        group.bench_function(format!("sketch/{shape}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &(u, v) in &edges {
                    acc += sketch.is_eps_neighbor(black_box(u), v) as usize;
                }
                acc
            })
        });

        // Range queries: per-pair baseline vs batched dense scratch, over
        // the same source vertices.
        let sources: Vec<u32> = (0..256u32).collect();
        group.bench_function(format!("range_per_pair/{shape}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut acc = 0usize;
                for &v in &sources {
                    merge.eps_neighborhood_into(black_box(v), &mut out);
                    acc += out.len();
                }
                acc
            })
        });
        group.bench_function(format!("range_batched/{shape}"), |b| {
            let mut scratch = BatchScratch::new(g.num_vertices());
            let mut out = Vec::new();
            b.iter(|| {
                let mut acc = 0usize;
                for &v in &sources {
                    merge.eps_neighborhood_batched(black_box(v), &mut scratch, &mut out);
                    acc += out.len();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_paths);
criterion_main!(benches);
