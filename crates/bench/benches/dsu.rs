//! Disjoint-set variants: sequential vs mutex-protected vs lock-free, under
//! the union/find mix anySCAN produces.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use anyscan_dsu::{AtomicDsu, DsuSeq, LockedDsu, SharedDsu};

fn op_mix(n: u32, ops: usize, seed: u64) -> Vec<(bool, u32, u32)> {
    // ~20% unions, 80% finds — anySCAN is find-heavy (pruning checks).
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| (rng.gen_bool(0.2), rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

fn bench_dsu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsu");
    group.sample_size(30);
    let n = 10_000u32;
    let ops = op_mix(n, 50_000, 3);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut d = DsuSeq::new(n as usize);
            for &(is_union, x, y) in &ops {
                if is_union {
                    d.union(x, y);
                } else {
                    black_box(d.find(x));
                }
            }
            d.num_sets()
        })
    });

    group.bench_function("locked_single_thread", |b| {
        b.iter(|| {
            let d = LockedDsu::new(n as usize);
            for &(is_union, x, y) in &ops {
                if is_union {
                    d.union(x, y);
                } else {
                    black_box(d.find(x));
                }
            }
            d.num_sets()
        })
    });

    group.bench_function("atomic_single_thread", |b| {
        b.iter(|| {
            let d = AtomicDsu::new(n as usize);
            for &(is_union, x, y) in &ops {
                if is_union {
                    d.union(x, y);
                } else {
                    black_box(d.find(x));
                }
            }
            d.num_sets()
        })
    });

    for threads in [2usize, 4] {
        group.bench_function(format!("atomic_{threads}_threads"), |b| {
            b.iter(|| {
                let d = AtomicDsu::new(n as usize);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let d = &d;
                        let ops = &ops;
                        s.spawn(move || {
                            for &(is_union, x, y) in ops.iter().skip(t).step_by(threads) {
                                if is_union {
                                    d.union(x, y);
                                } else {
                                    black_box(d.find(x));
                                }
                            }
                        });
                    }
                });
                d.num_sets()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dsu);
criterion_main!(benches);
