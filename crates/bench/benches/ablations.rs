//! Ablations of anySCAN's design choices (DESIGN.md §6): the Lemma-5
//! filter, the Step-2/3 sorting heuristics, skipping Step 2 entirely, the
//! role-resolution pass, and the shared-DSU implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use anyscan::{AnyScan, AnyScanConfig, DsuKind};
use anyscan_graph::gen::{lfr, LfrParams};
use anyscan_scan_common::ScanParams;

fn bench_ablations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(3_000, 24.0));
    let params = ScanParams::new(0.45, 5);
    let base = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3));

    let run = |config: AnyScanConfig| {
        let mut algo = AnyScan::new(&g, config);
        algo.run().num_clusters()
    };

    group.bench_function("baseline", |b| b.iter(|| run(base)));
    group.bench_function("no_lemma5_filter", |b| {
        let mut cfg = base;
        cfg.optimizations = false;
        b.iter(|| run(cfg))
    });
    group.bench_function("no_sorting", |b| {
        let mut cfg = base;
        cfg.sort_step2 = false;
        cfg.sort_step3 = false;
        b.iter(|| run(cfg))
    });
    group.bench_function("skip_step2", |b| {
        let mut cfg = base;
        cfg.skip_step2 = true;
        b.iter(|| run(cfg))
    });
    group.bench_function("no_role_resolution", |b| {
        let mut cfg = base;
        cfg.resolve_roles = false;
        b.iter(|| run(cfg))
    });
    group.bench_function("locked_dsu_4_threads", |b| {
        let mut cfg = base.with_threads(4);
        cfg.dsu = DsuKind::Locked;
        b.iter(|| run(cfg))
    });
    group.bench_function("atomic_dsu_4_threads", |b| {
        let cfg = base.with_threads(4);
        b.iter(|| run(cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
