//! Microbenchmarks of the structural-similarity kernel: merge-join cost vs
//! degree, and the effect of the Section III-D optimizations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::{Kernel, ScanParams};

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));

    for &avg_deg in &[8usize, 32, 128] {
        let n = 2_000;
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(&mut rng, n, n * avg_deg / 2, WeightModel::uniform_default());
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).take(4_096).collect();

        group.bench_function(format!("sigma_raw/deg{avg_deg}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(u, v) in &edges {
                    acc += sigma_raw(black_box(&g), u, v);
                }
                acc
            })
        });

        let params = ScanParams::paper_defaults();
        let opt = Kernel::with_optimizations(&g, params, true);
        let plain = Kernel::with_optimizations(&g, params, false);
        group.bench_function(format!("eps_decision_optimized/deg{avg_deg}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &(u, v) in &edges {
                    acc += opt.is_eps_neighbor(u, v) as usize;
                }
                acc
            })
        });
        group.bench_function(format!("eps_decision_plain/deg{avg_deg}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &(u, v) in &edges {
                    acc += plain.is_eps_neighbor(u, v) as usize;
                }
                acc
            })
        });
        group.bench_function(format!("range_query/deg{avg_deg}"), |b| {
            let kernel = Kernel::new(&g, params);
            b.iter(|| {
                let mut acc = 0usize;
                for v in 0..256u32 {
                    acc += kernel.eps_neighborhood(v).len();
                }
                acc
            })
        });
        // The O(min(|N_p|,|N_q|)) hash-probing alternative (§II-A).
        let index = anyscan_scan_common::NeighborIndex::new(&g);
        group.bench_function(format!("sigma_hash_index/deg{avg_deg}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(u, v) in &edges {
                    acc += index.sigma(black_box(&g), u, v);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
