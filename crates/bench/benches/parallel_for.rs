//! Overhead of the dynamic-scheduled parallel-for (worker-pool dispatch +
//! chunk claiming) relative to a plain sequential loop and to the
//! spawn-threads-per-call strategy it replaced, plus the effect of the
//! symmetric edge-decision cache on repeated ε-decisions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_parallel::{parallel_for_adaptive, parallel_for_dynamic, parallel_reduce_dynamic};
use anyscan_scan_common::{Kernel, ScanParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

fn work(i: usize) -> u64 {
    // A few hundred ns of arithmetic, like a small merge-join.
    let mut acc = i as u64;
    for k in 0..64u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

/// The strategy the pool replaced: spawn `threads` scoped OS threads per
/// call, all claiming fixed chunks from a shared cursor.
fn spawn_per_call_for(
    threads: usize,
    n: usize,
    chunk: usize,
    body: impl Fn(std::ops::Range<usize>) + Sync,
) {
    if threads <= 1 || n == 0 {
        if n > 0 {
            body(0..n);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                body(start..(start + chunk).min(n));
            });
        }
    });
}

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_for");
    group.sample_size(20);
    for &n in &[1_024usize, 32_768] {
        group.bench_function(format!("sequential/n{n}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    acc ^= work(i);
                }
                black_box(acc)
            })
        });
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("dynamic_t{threads}/n{n}"), |b| {
                b.iter(|| {
                    let accs =
                        parallel_reduce_dynamic(threads, n, 16, || 0u64, |acc, i| *acc ^= work(i));
                    black_box(accs.into_iter().fold(0, |a, b| a ^ b))
                })
            });
        }
        for chunk in [1usize, 16, 256] {
            group.bench_function(format!("chunk{chunk}_t2/n{n}"), |b| {
                b.iter(|| {
                    parallel_for_dynamic(2, n, chunk, |range| {
                        let mut acc = 0u64;
                        for i in range {
                            acc ^= work(i);
                        }
                        black_box(acc);
                    })
                })
            });
        }
        group.bench_function(format!("adaptive_t2/n{n}"), |b| {
            b.iter(|| {
                parallel_for_adaptive(2, n, |range| {
                    let mut acc = 0u64;
                    for i in range {
                        acc ^= work(i);
                    }
                    black_box(acc);
                })
            })
        });
    }
    group.finish();
}

/// Pool dispatch vs per-call thread spawning, at the small block sizes
/// anySCAN actually issues (one parallel region per phase per α/β block).
fn bench_pool_vs_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_vs_spawn");
    group.sample_size(20);
    for &n in &[256usize, 4_096] {
        for threads in [2usize, 4] {
            group.bench_function(format!("pool_t{threads}/n{n}"), |b| {
                b.iter(|| {
                    parallel_for_dynamic(threads, n, 16, |range| {
                        let mut acc = 0u64;
                        for i in range {
                            acc ^= work(i);
                        }
                        black_box(acc);
                    })
                })
            });
            group.bench_function(format!("spawn_t{threads}/n{n}"), |b| {
                b.iter(|| {
                    spawn_per_call_for(threads, n, 16, |range| {
                        let mut acc = 0u64;
                        for i in range {
                            acc ^= work(i);
                        }
                        black_box(acc);
                    })
                })
            });
        }
    }
    group.finish();
}

/// Repeated ε-decisions over every arc with and without the symmetric
/// edge-decision cache — the second sweep models Step 2/3 revisiting edges
/// Step 1 already decided.
fn bench_edge_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(99);
    let g = erdos_renyi(&mut rng, 2_000, 24_000, WeightModel::uniform_default());
    let params = ScanParams::paper_defaults();

    let mut group = c.benchmark_group("edge_cache");
    group.sample_size(10);
    for (label, cached) in [("off", false), ("on", true)] {
        group.bench_function(format!("two_sweeps_{label}"), |b| {
            b.iter(|| {
                let k = Kernel::new(&g, params).with_edge_cache(cached);
                let mut similar = 0u64;
                for _sweep in 0..2 {
                    for u in g.vertices() {
                        for &v in g.neighbor_ids(u) {
                            if v != u && k.is_eps_neighbor(u, v) {
                                similar += 1;
                            }
                        }
                    }
                }
                black_box(similar)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_for,
    bench_pool_vs_spawn,
    bench_edge_cache
);
criterion_main!(benches);
