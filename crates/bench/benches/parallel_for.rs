//! Overhead of the dynamic-scheduled parallel-for (thread spawn + chunk
//! claiming) relative to a plain sequential loop — the cost the paper
//! amortizes with block sizes α = β ≥ 8192.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use anyscan_parallel::{parallel_for_dynamic, parallel_reduce_dynamic};

fn work(i: usize) -> u64 {
    // A few hundred ns of arithmetic, like a small merge-join.
    let mut acc = i as u64;
    for k in 0..64u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_for");
    group.sample_size(20);
    for &n in &[1_024usize, 32_768] {
        group.bench_function(format!("sequential/n{n}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    acc ^= work(i);
                }
                black_box(acc)
            })
        });
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("dynamic_t{threads}/n{n}"), |b| {
                b.iter(|| {
                    let accs = parallel_reduce_dynamic(
                        threads,
                        n,
                        16,
                        || 0u64,
                        |acc, i| *acc ^= work(i),
                    );
                    black_box(accs.into_iter().fold(0, |a, b| a ^ b))
                })
            });
        }
        for chunk in [1usize, 16, 256] {
            group.bench_function(format!("chunk{chunk}_t2/n{n}"), |b| {
                b.iter(|| {
                    parallel_for_dynamic(2, n, chunk, |range| {
                        let mut acc = 0u64;
                        for i in range {
                            acc ^= work(i);
                        }
                        black_box(acc);
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_for);
criterion_main!(benches);
