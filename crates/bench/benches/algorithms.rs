//! End-to-end comparison of the five algorithms on a small clustered graph
//! (the microbench companion of Fig. 6).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use anyscan_bench::{run_algo, Algo};
use anyscan_graph::gen::{planted_partition, PlantedPartitionParams, WeightModel};
use anyscan_scan_common::ScanParams;

fn bench_algorithms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 2_000,
            num_communities: 20,
            p_in: 0.35,
            p_out: 0.005,
            weights: WeightModel::uniform_default(),
        },
    );
    let mut group = c.benchmark_group("algorithms");
    group
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3));
    for algo in Algo::ALL {
        for eps in [0.3, 0.5] {
            group.bench_function(format!("{}/eps{eps}", algo.name()), |b| {
                let params = ScanParams::new(eps, 5);
                b.iter(|| run_algo(algo, &g, params).clustering.num_clusters())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
