//! Per-step cost profile of anySCAN: how much of the runtime each of the
//! four steps (plus role resolution) consumes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use anyscan::{AnyScan, AnyScanConfig, Phase};
use anyscan_graph::gen::{lfr, LfrParams};
use anyscan_scan_common::ScanParams;

fn run_until(g: &anyscan_graph::CsrGraph, config: AnyScanConfig, until: Phase) -> usize {
    let mut algo = AnyScan::new(g, config);
    let mut steps = 0;
    while algo.phase() != until && algo.phase() != Phase::Done {
        algo.step();
        steps += 1;
    }
    steps
}

fn bench_steps(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(3_000, 24.0));
    let params = ScanParams::new(0.45, 5);
    let config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());

    let mut group = c.benchmark_group("anyscan_steps");
    group
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("construct", |b| b.iter(|| AnyScan::new(&g, config).phase()));
    group.bench_function("through_step1", |b| {
        b.iter(|| run_until(&g, config, Phase::MergeStrong))
    });
    group.bench_function("through_step2", |b| {
        b.iter(|| run_until(&g, config, Phase::MergeWeak))
    });
    group.bench_function("through_step3", |b| {
        b.iter(|| run_until(&g, config, Phase::Borders))
    });
    group.bench_function("full_run", |b| {
        b.iter(|| {
            let mut algo = AnyScan::new(&g, config);
            algo.run().num_clusters()
        })
    });
    group.bench_function("snapshot_mid_run", |b| {
        let mut algo = AnyScan::new(&g, config);
        while algo.phase() == Phase::Summarize {
            algo.step();
        }
        b.iter(|| algo.snapshot().num_clusters())
    });
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
