//! Anytime-curve measurement: NMI of every intermediate snapshot against a
//! ground-truth labeling, with cumulative wall time — the data behind
//! Figs. 5, 8 and 10 (left).

use std::time::Duration;

use anyscan::{AnyScan, AnyScanConfig, Phase};
use anyscan_graph::CsrGraph;
use anyscan_metrics::nmi;

/// One sampled point of an anytime run.
#[derive(Debug, Clone, Copy)]
pub struct AnytimePoint {
    pub iteration: usize,
    pub phase: Phase,
    /// Cumulative algorithm time (snapshot/NMI cost excluded).
    pub cumulative: Duration,
    /// NMI of the current snapshot vs. the supplied ground truth
    /// (noise mapped to one special cluster, as the paper scores it).
    pub nmi: f64,
}

/// Runs anySCAN to completion, sampling at most `max_samples` snapshots
/// (evenly over iterations) plus the final state. `truth` must already have
/// noise folded into a special cluster
/// (`Clustering::labels_with_noise_cluster`).
pub fn anytime_curve(
    g: &CsrGraph,
    config: AnyScanConfig,
    truth: &[u32],
    max_samples: usize,
) -> Vec<AnytimePoint> {
    // Estimate the iteration count to choose a sampling stride: step 1
    // dominates (≈ |V|/α blocks); steps 2–4 add a comparable amount.
    let est_iters = (2 * g.num_vertices() / config.alpha.max(1)).max(8);
    let stride = (est_iters / max_samples.max(1)).max(1);

    let mut algo = AnyScan::new(g, config);
    let mut points = Vec::new();
    let mut iter = 0usize;
    let mut last_phase = Phase::Summarize;
    while algo.phase() != Phase::Done {
        let rec = algo.step();
        let phase_boundary = rec.phase != last_phase;
        last_phase = rec.phase;
        if iter.is_multiple_of(stride) || phase_boundary || algo.phase() == Phase::Done {
            let snap = algo.snapshot();
            points.push(AnytimePoint {
                iteration: iter,
                phase: rec.phase,
                cumulative: algo.cumulative_time(),
                nmi: nmi(&snap.labels_with_noise_cluster(), truth),
            });
        }
        iter += 1;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_baselines::scan;
    use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
    use anyscan_scan_common::ScanParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn curve_ends_at_one() {
        let mut rng = StdRng::seed_from_u64(77);
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 400,
                num_communities: 8,
                p_in: 0.4,
                p_out: 0.01,
                weights: anyscan_graph::gen::WeightModel::Unit,
            },
        );
        let params = ScanParams::new(0.4, 5);
        let truth = scan(&g, params).clustering.labels_with_noise_cluster();
        let config = AnyScanConfig::new(params).with_block_size(32);
        let curve = anytime_curve(&g, config, &truth, 10);
        assert!(!curve.is_empty());
        let last = curve.last().unwrap();
        assert!(last.nmi > 0.999, "final NMI {}", last.nmi);
        // Cumulative time is monotone.
        for w in curve.windows(2) {
            assert!(w[1].cumulative >= w[0].cumulative);
            assert!(w[1].iteration > w[0].iteration);
        }
    }
}
