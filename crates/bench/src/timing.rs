//! Timing helpers for the harness binaries.

use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Runs `f` `reps` times and returns the median wall time together with the
/// last output (the harness reports medians to damp single-core noise).
pub fn median_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (d, out) = time(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("reps >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_and_returns() {
        let (d, v) = time(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn median_of_returns_middle() {
        let mut calls = 0;
        let (_, out) = median_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(out, 3);
        assert_eq!(calls, 3);
    }
}
