//! Figure 7 — work accounting and vertex roles.
//!
//! Left: structural-similarity evaluation counts for every algorithm, with
//! SCAN++'s split into *true* (pivot queries) and *shared* evaluations.
//! Right: core / border / hub+outlier counts per dataset (from the SCAN
//! ground truth).
//!
//! Shape to check: SCAN ≈ 2|E|; pSCAN and anySCAN lowest and close;
//! SCAN++'s shared evaluations track the number of cores.

use anyscan_bench::{load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    println!("== Fig. 7 (left): similarity evaluations (eps=0.5, mu=5) ==\n");
    let mut evals = Table::new(&[
        "dataset",
        "2|E|",
        "SCAN",
        "SCAN-B",
        "pSCAN",
        "SCANpp-true",
        "SCANpp-shared",
        "anySCAN",
    ]);
    let mut roles = Table::new(&["dataset", "cores", "borders", "hubs+outliers", "clusters"]);
    for d in Dataset::real_graphs() {
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let mut row = vec![d.id.short(), (2 * g.num_edges()).to_string()];
        let mut truth = None;
        for algo in Algo::ALL {
            let out = run_algo(algo, &g, params);
            match algo {
                Algo::ScanPP => {
                    row.push(out.stats.sigma_evals.to_string());
                    row.push(out.stats.shared_evals.to_string());
                }
                _ => row.push(out.stats.sigma_evals.to_string()),
            }
            if algo == Algo::Scan {
                truth = Some(out.clustering);
            }
        }
        evals.row(row);
        let c = truth.expect("SCAN ran");
        let rc = c.role_counts();
        roles.row(vec![
            d.id.short(),
            rc.cores.to_string(),
            rc.borders.to_string(),
            rc.noise().to_string(),
            c.num_clusters().to_string(),
        ]);
    }
    evals.print();
    println!("\n== Fig. 7 (right): vertex roles under SCAN ==\n");
    roles.print();
}
