//! Ablation study of anySCAN's design choices (DESIGN.md §6): each knob is
//! switched off in isolation and the damage measured in runtime and in
//! similarity evaluations, on GR01 (dense) and GR02 (sparse).
//!
//! Knobs:
//! * `no-lemma5` — Section III-D similarity optimizations off;
//! * `no-sorting` — Step-2 (super-node count) and Step-3 (degree)
//!   orderings off;
//! * `skip-step2` — strongly-related merging disabled (Step 3 subsumes it
//!   at higher cost);
//! * `no-roles` — the role-resolution finish pass off (labels stay exact;
//!   roles of pruned vertices stay heuristic);
//! * `locked-dsu` — `omp critical`-style mutex DSU instead of the
//!   lock-free one (4 threads, where it matters);
//! * block sizes — the α=β sweep appears in fig8/fig13.

use anyscan::{AnyScan, AnyScanConfig, DsuKind};
use anyscan_bench::table::secs;
use anyscan_bench::{load_dataset, time, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

struct Variant {
    name: &'static str,
    threads: usize,
    tweak: fn(&mut AnyScanConfig),
}

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    let variants: &[Variant] = &[
        Variant {
            name: "baseline",
            threads: 1,
            tweak: |_| {},
        },
        Variant {
            name: "no-lemma5",
            threads: 1,
            tweak: |c| c.optimizations = false,
        },
        Variant {
            name: "no-sorting",
            threads: 1,
            tweak: |c| {
                c.sort_step2 = false;
                c.sort_step3 = false;
            },
        },
        Variant {
            name: "skip-step2",
            threads: 1,
            tweak: |c| c.skip_step2 = true,
        },
        Variant {
            name: "no-roles",
            threads: 1,
            tweak: |c| c.resolve_roles = false,
        },
        Variant {
            name: "atomic-dsu(4t)",
            threads: 4,
            tweak: |_| {},
        },
        Variant {
            name: "locked-dsu(4t)",
            threads: 4,
            tweak: |c| c.dsu = DsuKind::Locked,
        },
    ];

    for id in [DatasetId::Gr01, DatasetId::Gr02] {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        println!(
            "\n== Ablations on {} (|V|={}, |E|={}) ==\n",
            id.short(),
            g.num_vertices(),
            g.num_edges()
        );
        let mut t = Table::new(&[
            "variant",
            "runtime-s",
            "sigma-evals",
            "filtered",
            "unions",
            "clusters",
        ]);
        for v in variants {
            let mut config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());
            config.threads = v.threads;
            (v.tweak)(&mut config);
            let (elapsed, (clusters, stats, unions)) = time(|| {
                let mut algo = AnyScan::new(&g, config);
                let result = algo.run();
                (result.num_clusters(), algo.stats(), algo.union_breakdown())
            });
            t.row(vec![
                v.name.into(),
                secs(elapsed),
                stats.sigma_evals.to_string(),
                stats.lemma5_filtered.to_string(),
                unions.total().to_string(),
                clusters.to_string(),
            ]);
        }
        t.print();
    }
}
