//! Figure 12 — Union-operation counts, GR01–GR04.
//!
//! Shape to check against the paper: anySCAN's unions ≪ pSCAN's ≪ |V|, and
//! most anySCAN unions execute in the *sequential* part of Step 1 (paper:
//! 7685/7844, 31440/62351, 268/599, 19969/25426 for GR01–GR04), leaving few
//! inside the parallel critical sections of Steps 2–3.

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::{load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    let ids = [
        DatasetId::Gr01,
        DatasetId::Gr02,
        DatasetId::Gr03,
        DatasetId::Gr04,
    ];
    println!("== Fig. 12: Union operations (eps=0.5, mu=5) ==\n");
    let mut t = Table::new(&[
        "dataset",
        "|V|",
        "pSCAN",
        "anySCAN-total",
        "step1(seq)",
        "step2(crit)",
        "step3(crit)",
    ]);
    for id in ids {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let p = run_algo(Algo::PScan, &g, params);
        // Match the paper's regime where a Step-1 block is a sizable slice
        // of the graph (α = 8192 on their smallest, 107 K-vertex dataset):
        // large blocks create the super-node overlap that moves most unions
        // into the sequential part of Step 1.
        let config = AnyScanConfig::new(params).with_block_size((g.num_vertices() / 8).max(64));
        let mut algo = AnyScan::new(&g, config);
        let _ = algo.run();
        let u = algo.union_breakdown();
        t.row(vec![
            id.short(),
            g.num_vertices().to_string(),
            p.union_ops.to_string(),
            u.total().to_string(),
            u.step1.to_string(),
            u.step2.to_string(),
            u.step3.to_string(),
        ]);
    }
    t.print();
}
