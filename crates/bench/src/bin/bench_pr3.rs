//! PR 3 perf trajectory: similarity-index build cost and per-query latency
//! versus full anySCAN runs on the GR01/GR02 analogues, emitted as
//! machine-readable JSON (`BENCH_pr3.json`).
//!
//! ```text
//! bench_pr3 [--scale f] [--seed u] [--reps n] [--threads t] [--out path]
//! ```
//!
//! The headline number is the *amortized speedup*: for a parameter sweep of
//! q queries, `q × full-run time` divided by `build time + q × query time`.
//! The index pays its build once and answers every subsequent (ε, μ) from
//! precomputed orders, so the ratio grows with q; the JSON records the
//! per-query latencies, the raw speedup per (ε, μ), and the amortized
//! figure over the whole sweep.

use std::fmt::Write as _;

use anyscan::telemetry::MetaValue;
use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::load_dataset;
use anyscan_bench::meta::meta_object;
use anyscan_bench::timing::median_of;
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::ScanParams;

struct Args {
    scale: f64,
    seed: u64,
    reps: usize,
    threads: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1.0,
            seed: 7,
            reps: 3,
            threads: 4,
            out: "BENCH_pr3.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--scale" => out.scale = val().parse().expect("--scale f64"),
            "--seed" => out.seed = val().parse().expect("--seed u64"),
            "--reps" => out.reps = val().parse().expect("--reps usize"),
            "--threads" => out.threads = val().parse().expect("--threads usize"),
            "--out" => out.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    // The interactive workload: one graph, a parameter exploration — the
    // `explore` command's default ε grid crossed with two μ values.
    let sweep: Vec<ScanParams> = [2usize, 5]
        .into_iter()
        .flat_map(|m| {
            [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
                .into_iter()
                .map(move |e| ScanParams::new(e, m))
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr3\",");
    let _ = writeln!(
        json,
        "  \"description\": \"similarity-index build + per-query latency vs full anySCAN (median of {} runs), {} queries per sweep\",",
        args.reps,
        sweep.len()
    );
    let _ = writeln!(
        json,
        "  \"env\": {{ \"cpus\": {}, \"scale\": {}, \"seed\": {} }},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        args.scale,
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        meta_object(&[
            ("threads", MetaValue::U64(args.threads as u64)),
            ("scale", MetaValue::F64(args.scale)),
            ("seed", MetaValue::U64(args.seed)),
            ("reps", MetaValue::U64(args.reps as u64)),
            ("queries", MetaValue::U64(sweep.len() as u64)),
        ])
    );
    json.push_str("  \"datasets\": [\n");

    for (di, id) in [DatasetId::Gr01, DatasetId::Gr02].into_iter().enumerate() {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.scale, args.seed);
        eprintln!(
            "{}: |V|={} |E|={} (scale {})",
            id.short(),
            g.num_vertices(),
            g.num_edges(),
            args.scale
        );

        let (build_time, _) = median_of(args.reps, || SimilarityIndex::build(&g, args.threads));
        let idx = SimilarityIndex::build(&g, args.threads);
        eprintln!("  index build: {:.3}s", build_time.as_secs_f64());

        let _ = writeln!(
            json,
            "    {{ \"id\": \"{}\", \"vertices\": {}, \"edges\": {}, \"build_seconds\": {:.6}, \"queries\": [",
            id.short(),
            g.num_vertices(),
            g.num_edges(),
            build_time.as_secs_f64()
        );

        let mut full_total = 0.0;
        let mut query_total = 0.0;
        for (qi, &params) in sweep.iter().enumerate() {
            let config = AnyScanConfig::new(params)
                .with_auto_block_size(g.num_vertices())
                .with_threads(args.threads);
            let (full_t, full_clusters) =
                median_of(args.reps, || AnyScan::new(&g, config).run().num_clusters());
            let (query_t, idx_clusters) =
                median_of(args.reps, || idx.query(&g, params).num_clusters());
            assert_eq!(
                full_clusters, idx_clusters,
                "cluster-count mismatch at (eps={}, mu={})",
                params.epsilon, params.mu
            );
            let full_s = full_t.as_secs_f64();
            let query_s = query_t.as_secs_f64();
            full_total += full_s;
            query_total += query_s;
            eprintln!(
                "  eps={} mu={}: full {:.4}s, indexed {:.6}s ({:.0}x raw)",
                params.epsilon,
                params.mu,
                full_s,
                query_s,
                full_s / query_s
            );
            let _ = writeln!(
                json,
                "      {}{{ \"epsilon\": {}, \"mu\": {}, \"clusters\": {}, \"full_seconds\": {:.6}, \"query_seconds\": {:.6}, \"raw_speedup\": {:.2} }}",
                if qi == 0 { "" } else { ", " },
                params.epsilon,
                params.mu,
                idx_clusters,
                full_s,
                query_s,
                full_s / query_s
            );
        }
        let amortized = full_total / (build_time.as_secs_f64() + query_total);
        eprintln!(
            "  sweep of {}: full {:.3}s vs build+queries {:.3}s — {:.1}x amortized",
            sweep.len(),
            full_total,
            build_time.as_secs_f64() + query_total,
            amortized
        );
        json.push_str("    ],\n");
        let _ = writeln!(
            json,
            "    \"full_total_seconds\": {:.6}, \"query_total_seconds\": {:.6}, \"amortized_speedup\": {:.2}",
            full_total, query_total, amortized
        );
        let _ = writeln!(json, "    }}{}", if di == 0 { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}
