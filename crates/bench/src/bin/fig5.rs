//! Figure 5 — anytime behaviour of anySCAN vs. the batch algorithms.
//!
//! For GR01–GR04 and ε ∈ {0.5, 0.6} (μ = 5) this prints:
//! * the final runtime of every batch algorithm (the horizontal lines of the
//!   figure), and
//! * the (cumulative time, NMI) series of anySCAN's intermediate snapshots,
//!   scored against SCAN's result with noise as one special cluster.
//!
//! The paper's claims to check: NMI increases toward 1.0; useful NMI (≈0.5)
//! is reached at a small fraction of the batch runtimes; anySCAN's final
//! cumulative runtime is competitive with pSCAN.

use anyscan::AnyScanConfig;
use anyscan_bench::table::secs;
use anyscan_bench::{anytime_curve, load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let ids = [
        DatasetId::Gr01,
        DatasetId::Gr02,
        DatasetId::Gr03,
        DatasetId::Gr04,
    ];
    for eps in [0.5, 0.6] {
        for id in ids {
            let d = Dataset::get(id);
            let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
            let params = ScanParams::new(eps, 5);
            println!(
                "\n== Fig. 5: {} (|V|={}, |E|={}), eps={eps}, mu=5 ==",
                id.short(),
                g.num_vertices(),
                g.num_edges()
            );

            // Batch algorithms: the horizontal reference lines.
            let truth = run_algo(Algo::Scan, &g, params);
            let mut batch = Table::new(&["algorithm", "runtime-s", "sigma-evals"]);
            batch.row(vec![
                "SCAN".into(),
                secs(truth.elapsed),
                truth.stats.sigma_evals.to_string(),
            ]);
            for algo in [Algo::ScanB, Algo::PScan, Algo::ScanPP, Algo::AnyScan] {
                let out = run_algo(algo, &g, params);
                batch.row(vec![
                    out.algo.name().into(),
                    secs(out.elapsed),
                    (out.stats.sigma_evals + out.stats.shared_evals).to_string(),
                ]);
            }
            batch.print();

            // anySCAN's anytime curve.
            let truth_labels = truth.clustering.labels_with_noise_cluster();
            let config = AnyScanConfig::new(params).with_auto_block_size(g.num_vertices());
            let curve = anytime_curve(&g, config, &truth_labels, 14);
            let mut t = Table::new(&["iter", "phase", "cumulative-s", "NMI"]);
            for p in &curve {
                t.row(vec![
                    p.iteration.to_string(),
                    format!("{:?}", p.phase),
                    secs(p.cumulative),
                    format!("{:.4}", p.nmi),
                ]);
            }
            t.print();
        }
    }
}
