//! PR 1 perf trajectory: end-to-end anySCAN wall time on the GR01/GR02
//! analogues at 1/2/4 threads, emitted as machine-readable JSON
//! (`BENCH_pr1.json`) so successive PRs can compare like against like.
//!
//! ```text
//! bench_pr1 [--scale f] [--seed u] [--reps n] [--out path] [--baseline path]
//! ```
//!
//! `--baseline` embeds a previously written JSON verbatim under `"baseline"`
//! — run the binary once before a perf change, then again after with the
//! first file as baseline, and the output carries both measurements.

use std::fmt::Write as _;
use std::time::Duration;

use anyscan::telemetry::MetaValue;
use anyscan::{AnyScan, AnyScanConfig, Telemetry};
use anyscan_bench::load_dataset;
use anyscan_bench::meta::meta_object;
use anyscan_bench::timing::median_of;
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

struct Args {
    scale: f64,
    seed: u64,
    reps: usize,
    out: String,
    baseline: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1.0,
            seed: 7,
            reps: 3,
            out: "BENCH_pr1.json".into(),
            baseline: None,
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--scale" => out.scale = val().parse().expect("--scale f64"),
            "--seed" => out.seed = val().parse().expect("--seed u64"),
            "--reps" => out.reps = val().parse().expect("--reps usize"),
            "--out" => out.out = val(),
            "--baseline" => out.baseline = Some(val()),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// One timed configuration: median end-to-end wall time over `reps` runs.
fn run_case(
    g: &anyscan_graph::CsrGraph,
    params: ScanParams,
    threads: usize,
    edge_cache: bool,
    reps: usize,
) -> (Duration, usize) {
    let config = AnyScanConfig::new(params)
        .with_auto_block_size(g.num_vertices())
        .with_threads(threads)
        .with_edge_cache(edge_cache);
    let (t, clusters) = median_of(reps, || AnyScan::new(g, config).run().num_clusters());
    (t, clusters)
}

fn main() {
    let args = parse_args();
    let params = ScanParams::paper_defaults();
    let threads_sweep = [1usize, 2, 4];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr1\",");
    let _ = writeln!(
        json,
        "  \"description\": \"end-to-end anySCAN wall time (median of {} runs), paper params (eps={}, mu={})\",",
        args.reps, params.epsilon, params.mu
    );
    let _ = writeln!(
        json,
        "  \"env\": {{ \"cpus\": {}, \"scale\": {}, \"seed\": {} }},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        args.scale,
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        meta_object(&[
            (
                "threads",
                MetaValue::Str(
                    threads_sweep
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
            ("epsilon", MetaValue::F64(params.epsilon)),
            ("mu", MetaValue::U64(params.mu as u64)),
            ("scale", MetaValue::F64(args.scale)),
            ("seed", MetaValue::U64(args.seed)),
            ("reps", MetaValue::U64(args.reps as u64)),
        ])
    );
    json.push_str("  \"datasets\": [\n");

    for (di, id) in [DatasetId::Gr01, DatasetId::Gr02].into_iter().enumerate() {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.scale, args.seed);
        eprintln!(
            "{}: |V|={} |E|={} (scale {})",
            id.short(),
            g.num_vertices(),
            g.num_edges(),
            args.scale
        );
        let _ = writeln!(
            json,
            "    {{ \"id\": \"{}\", \"vertices\": {}, \"edges\": {}, \"runs\": [",
            id.short(),
            g.num_vertices(),
            g.num_edges()
        );
        let mut first = true;
        for &threads in &threads_sweep {
            for cache in [true, false] {
                let (t, clusters) = run_case(&g, params, threads, cache, args.reps);
                eprintln!(
                    "  threads={threads} edge_cache={cache}: {:.3}s ({clusters} clusters)",
                    t.as_secs_f64()
                );
                let _ = writeln!(
                    json,
                    "      {}{{ \"threads\": {}, \"edge_cache\": {}, \"seconds\": {:.6}, \"clusters\": {} }}",
                    if first { "" } else { ", " },
                    threads,
                    cache,
                    t.as_secs_f64(),
                    clusters
                );
                first = false;
            }
        }
        json.push_str("    ],\n");
        // One traced run at the top thread count: the full telemetry blob
        // (spans, counters, pool utilization, anytime snapshots) rides along
        // with the timings so a regression can be diagnosed from the file.
        let trace_threads = *threads_sweep.last().unwrap();
        let telemetry = Telemetry::enabled();
        let config = AnyScanConfig::new(params)
            .with_auto_block_size(g.num_vertices())
            .with_threads(trace_threads)
            .with_edge_cache(true);
        AnyScan::new(&g, config)
            .with_telemetry(telemetry.clone())
            .run();
        let trace = telemetry.report().expect("enabled").to_json(&[
            ("vertices", (g.num_vertices() as u64).into()),
            ("edges", g.num_edges().into()),
            ("threads", (trace_threads as u64).into()),
        ]);
        json.push_str("    \"telemetry\": ");
        let indented: Vec<String> = trace
            .trim_end()
            .lines()
            .map(|l| format!("    {l}"))
            .collect();
        json.push_str(indented.join("\n").trim_start());
        let _ = writeln!(json, "\n    }}{}", if di == 0 { "," } else { "" });
    }
    json.push_str("  ]");

    match &args.baseline {
        Some(path) => {
            let base = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            json.push_str(",\n  \"baseline\": ");
            // Indent the embedded document to keep the output readable.
            let indented: Vec<String> = base.trim_end().lines().map(|l| format!("  {l}")).collect();
            json.push_str(indented.join("\n").trim_start());
            json.push('\n');
        }
        None => json.push('\n'),
    }
    json.push_str("}\n");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}
