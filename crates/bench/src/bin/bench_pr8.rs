//! PR 8 perf trajectory: the evolving-graph workload (`BENCH_pr8.json`).
//!
//! The dynamic subsystem's claim: after a batch of edge mutations, repairing
//! the resident similarity index in place (re-evaluating only the σ values
//! incident to touched neighborhoods) is much cheaper than rebuilding the
//! index from scratch — until the batch touches so much of the graph that a
//! rebuild wins. This bench measures both sides of that trade on an
//! interleaved update/query stream:
//!
//! For each batch size B: apply R batches of B random mutations through
//! [`DynamicIndex::apply_batch`], timing each repair; after every batch,
//! build a from-scratch [`SimilarityIndex`] on the mutated graph, timing the
//! rebuild, assert the repaired index equals it **bit for bit**, and answer
//! an `(ε, μ)` query from both (labels asserted equal). The JSON records
//! mean repair vs rebuild time per batch size and the crossover batch size
//! (smallest tested B where repair stops winning, if any).
//!
//! Gate: at the smallest batch size the incremental repair must beat the
//! full rebuild.
//!
//! ```text
//! bench_pr8 [--n n] [--avg-degree d] [--rounds r] [--seed u] [--threads t]
//!           [--out path]
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use anyscan::telemetry::MetaValue;
use anyscan::Telemetry;
use anyscan_bench::meta::meta_object;
use anyscan_bench::timing::time;
use anyscan_dynamic::{DynamicIndex, EdgeOp, EdgeUpdate};
use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_graph::CsrGraph;
use anyscan_index::SimilarityIndex;
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    n: usize,
    avg_degree: f64,
    rounds: usize,
    seed: u64,
    threads: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 4096,
            avg_degree: 20.0,
            rounds: 6,
            seed: 7,
            threads: 4,
            out: "BENCH_pr8.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => out.n = val().parse().expect("--n usize"),
            "--avg-degree" => out.avg_degree = val().parse().expect("--avg-degree f64"),
            "--rounds" => out.rounds = val().parse().expect("--rounds usize"),
            "--seed" => out.seed = val().parse().expect("--seed u64"),
            "--threads" => out.threads = val().parse().expect("--threads usize"),
            "--out" => out.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// One random mutation batch: mostly inserts (the graph grows), the rest
/// reweights and removes — absent-edge removes/reweights are relaxed no-ops.
fn random_batch(rng: &mut StdRng, n: u32, size: usize, next_seq: &mut u64) -> Vec<EdgeUpdate> {
    (0..size)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            let op = match rng.gen_range(0..10u32) {
                0..=5 => EdgeOp::Insert(rng.gen_range(0.05..1.0)),
                6..=7 => EdgeOp::Reweight(rng.gen_range(0.05..1.0)),
                _ => EdgeOp::Remove,
            };
            *next_seq += 1;
            EdgeUpdate {
                seq: *next_seq,
                u,
                v,
                op,
            }
        })
        .collect()
}

struct BatchSizeResult {
    batch: usize,
    repair_ms: f64,
    rebuild_ms: f64,
    sigma_reevals: u64,
    query_ms: f64,
}

fn run_batch_size(g: &CsrGraph, args: &Args, batch: usize, params: ScanParams) -> BatchSizeResult {
    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(args.seed ^ batch as u64);
    let mut engine = DynamicIndex::new(g, args.threads).expect("dynamic engine");
    let telemetry = Telemetry::disabled();
    let mut next_seq = 0u64;
    let (mut repair, mut rebuild, mut query) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    let mut reevals = 0u64;
    for _ in 0..args.rounds {
        let updates = random_batch(&mut rng, n, batch, &mut next_seq);
        let (dt, stats) = time(|| engine.apply_batch(&updates, &telemetry).expect("apply"));
        repair += dt;
        reevals += stats.sigma_reevals;

        // The full-rebuild alternative on the identical mutated graph. Also
        // the correctness oracle: the repaired index must equal it bitwise.
        let csr = engine.to_csr().expect("snapshot");
        let (dt, fresh) = time(|| SimilarityIndex::build(&csr, args.threads));
        rebuild += dt;
        assert_eq!(
            engine.index(),
            &fresh,
            "repaired index diverged from a from-scratch build (batch size {batch})"
        );

        // The interactive half of the workload: an (ε, μ) answer from the
        // repaired index, checked against the fresh build's answer.
        let (dt, c) = time(|| engine.query(params));
        query += dt;
        let expected = fresh.query_offline(params);
        assert_eq!(
            c.labels, expected.labels,
            "query diverged (batch size {batch})"
        );
    }
    let per = |d: Duration| d.as_secs_f64() * 1e3 / args.rounds as f64;
    BatchSizeResult {
        batch,
        repair_ms: per(repair),
        rebuild_ms: per(rebuild),
        sigma_reevals: reevals / args.rounds as u64,
        query_ms: per(query),
    }
}

fn main() {
    let args = parse_args();
    let params = ScanParams::new(0.5, 4);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let edges = (args.n as f64 * args.avg_degree / 2.0) as usize;
    let g = erdos_renyi(&mut rng, args.n, edges, WeightModel::uniform_default());
    eprintln!(
        "evolving: ER |V|={} |E|={} eps={} mu={} threads={} rounds={}",
        g.num_vertices(),
        g.num_edges(),
        params.epsilon,
        params.mu,
        args.threads,
        args.rounds
    );

    let sizes = [1usize, 4, 16, 64, 256, 1024, 4096];
    let results: Vec<BatchSizeResult> = sizes
        .iter()
        .map(|&b| {
            let r = run_batch_size(&g, &args, b, params);
            eprintln!(
                "  B={:<5} repair {:>9.3}ms  rebuild {:>9.3}ms  ({:>5.1}x, {} σ re-evals/batch, query {:.3}ms)",
                r.batch,
                r.repair_ms,
                r.rebuild_ms,
                r.rebuild_ms / r.repair_ms,
                r.sigma_reevals,
                r.query_ms
            );
            r
        })
        .collect();

    // Crossover: the smallest tested batch size where in-place repair no
    // longer beats the rebuild (repair cost grows with the touched
    // neighborhood count; the rebuild is flat).
    let crossover = results.iter().find(|r| r.repair_ms >= r.rebuild_ms);
    match crossover {
        Some(r) => eprintln!(
            "  crossover at batch size {} — rebuild wins from there",
            r.batch
        ),
        None => eprintln!("  no crossover within tested batch sizes — repair always won"),
    }
    let smallest = &results[0];
    assert!(
        smallest.repair_ms < smallest.rebuild_ms,
        "GATE FAILED: single-update repair ({:.3}ms) must beat a full rebuild ({:.3}ms)",
        smallest.repair_ms,
        smallest.rebuild_ms
    );
    eprintln!(
        "gate passed: B=1 repair {:.3}ms < rebuild {:.3}ms ({:.1}x)",
        smallest.repair_ms,
        smallest.rebuild_ms,
        smallest.rebuild_ms / smallest.repair_ms
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr8\",");
    let _ = writeln!(
        json,
        "  \"description\": \"Evolving-graph workload: per-batch in-place index repair vs full rebuild (bit-identical results asserted every batch), mean of {} batches per size\",",
        args.rounds
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        meta_object(&[
            ("threads", MetaValue::U64(args.threads as u64)),
            ("n", MetaValue::U64(args.n as u64)),
            ("edges", MetaValue::U64(g.num_edges())),
            ("seed", MetaValue::U64(args.seed)),
            ("rounds", MetaValue::U64(args.rounds as u64)),
            ("epsilon", MetaValue::F64(params.epsilon)),
            ("mu", MetaValue::U64(params.mu as u64)),
        ])
    );
    let _ = writeln!(
        json,
        "  \"crossover_batch_size\": {},",
        crossover.map_or("null".to_string(), |r| r.batch.to_string())
    );
    json.push_str("  \"batch_sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"batch\": {}, \"repair_ms\": {:.4}, \"rebuild_ms\": {:.4}, \"speedup\": {:.3}, \"sigma_reevals_per_batch\": {}, \"query_ms\": {:.4}, \"bit_identical\": true }}",
            r.batch,
            r.repair_ms,
            r.rebuild_ms,
            r.rebuild_ms / r.repair_ms,
            r.sigma_reevals,
            r.query_ms
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write BENCH_pr8.json");
    eprintln!("wrote {}", args.out);
}
