//! Figure 6 — final runtimes of all five algorithms across parameters.
//!
//! Top: ε sweep (0.2 … 0.8) at μ = 5. Bottom: μ sweep (2 … 15) at ε = 0.5.
//! One table per dataset and sweep; rows are the sweep values, columns the
//! algorithms — the same series the figure plots.
//!
//! Shape to check against the paper: SCAN slowest and flat; SCAN-B closes
//! the gap as ε grows (Lemma-5 filtering); pSCAN and anySCAN fastest and
//! close to each other; SCAN++ struggles at small ε/μ.

use anyscan_bench::table::secs;
use anyscan_bench::{load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let eps_sweep: &[f64] = if args.quick {
        &[0.2, 0.5, 0.8]
    } else {
        &[0.2, 0.35, 0.5, 0.65, 0.8]
    };
    let mu_sweep: &[usize] = if args.quick {
        &[2, 10]
    } else {
        &[2, 5, 10, 15]
    };

    for d in Dataset::real_graphs() {
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        println!(
            "\n== Fig. 6 (top): {} runtime-s vs eps (mu=5) ==",
            d.id.short()
        );
        let mut t = Table::new(&["eps", "SCAN", "SCAN-B", "pSCAN", "SCAN++", "anySCAN"]);
        for &eps in eps_sweep {
            let params = ScanParams::new(eps, 5);
            let mut row = vec![format!("{eps}")];
            for algo in Algo::ALL {
                row.push(secs(run_algo(algo, &g, params).elapsed));
            }
            t.row(row);
        }
        t.print();

        println!(
            "\n== Fig. 6 (bottom): {} runtime-s vs mu (eps=0.5) ==",
            d.id.short()
        );
        let mut t = Table::new(&["mu", "SCAN", "SCAN-B", "pSCAN", "SCAN++", "anySCAN"]);
        for &mu in mu_sweep {
            let params = ScanParams::new(0.5, mu);
            let mut row = vec![format!("{mu}")];
            for algo in Algo::ALL {
                row.push(secs(run_algo(algo, &g, params).elapsed));
            }
            t.row(row);
        }
        t.print();
    }
}
