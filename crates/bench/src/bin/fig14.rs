//! Figure 14 — anySCAN scalability on the LFR grid.
//!
//! Left: speedup vs average degree (LFR01–05). Right: speedup vs clustering
//! coefficient (LFR11–15). (Single-CPU container: see fig10's note.)

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::{load_dataset, time, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_scan_common::ScanParams;

fn speedups(
    g: &anyscan_graph::CsrGraph,
    params: ScanParams,
    threads: &[usize],
) -> Vec<(usize, f64)> {
    let block = (g.num_vertices() / 32).clamp(32, 32_768);
    let mut base = None;
    threads
        .iter()
        .map(|&th| {
            let config = AnyScanConfig::new(params)
                .with_block_size(block)
                .with_threads(th);
            let (t, _) = time(|| AnyScan::new(g, config).run());
            let b = *base.get_or_insert(t.as_secs_f64());
            (th, b / t.as_secs_f64())
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    for (title, sweep) in [
        ("vs average degree (LFR01-05)", Dataset::lfr_degree_sweep()),
        (
            "vs clustering coefficient (LFR11-15)",
            Dataset::lfr_clustering_sweep(),
        ),
    ] {
        println!("\n== Fig. 14: speedup {title} ==\n");
        let header: Vec<String> = std::iter::once("dataset".to_string())
            .chain(args.threads.iter().map(|t| format!("x{t}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for d in sweep {
            let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
            let sp = speedups(&g, params, &args.threads);
            let mut row = vec![d.id.short()];
            row.extend(sp.iter().map(|(_, s)| format!("{s:.2}")));
            t.row(row);
        }
        t.print();
    }
}
