//! PR 5 perf trajectory: the cache-locality bundle — degree-descending
//! vertex reordering, hub-bitmap σ evaluation, and batched source-major
//! Step-1 range queries — versus the same driver with all three off, on the
//! GR01/GR02/GR05 analogues. Emitted as machine-readable JSON
//! (`BENCH_pr5.json`).
//!
//! ```text
//! bench_pr5 [--scale f] [--seed u] [--reps n] [--threads t] [--out path]
//! ```
//!
//! Both variants compute the *same clustering*: the optimized run executes
//! on the relabeled graph and its result is mapped back through the
//! permutation, then checked against the baseline with the Lemma 4
//! equivalence predicate (same cores, identical core partition, same
//! noise, justified borders) before any timing is reported.

use std::fmt::Write as _;

use anyscan::telemetry::MetaValue;
use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::load_dataset;
use anyscan_bench::meta::meta_object;
use anyscan_bench::timing::median_of;
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_graph::reorder::reorder;
use anyscan_graph::ReorderMode;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::ScanParams;

struct Args {
    scale: f64,
    seed: u64,
    reps: usize,
    threads: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1.0,
            seed: 7,
            reps: 3,
            threads: 4,
            out: "BENCH_pr5.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--scale" => out.scale = val().parse().expect("--scale f64"),
            "--seed" => out.seed = val().parse().expect("--seed u64"),
            "--reps" => out.reps = val().parse().expect("--reps usize"),
            "--threads" => out.threads = val().parse().expect("--threads usize"),
            "--out" => out.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let params = ScanParams::new(0.5, 4);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr5\",");
    let _ = writeln!(
        json,
        "  \"description\": \"anySCAN with degree reordering + hub bitmaps + batched Step-1 vs all three off (median of {} runs, eps={}, mu={})\",",
        args.reps, params.epsilon, params.mu
    );
    let _ = writeln!(
        json,
        "  \"env\": {{ \"cpus\": {}, \"scale\": {}, \"seed\": {} }},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        args.scale,
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        meta_object(&[
            ("threads", MetaValue::U64(args.threads as u64)),
            ("scale", MetaValue::F64(args.scale)),
            ("seed", MetaValue::U64(args.seed)),
            ("reps", MetaValue::U64(args.reps as u64)),
            ("epsilon", MetaValue::F64(params.epsilon)),
            ("mu", MetaValue::U64(params.mu as u64)),
        ])
    );
    json.push_str("  \"datasets\": [\n");

    let ids = [DatasetId::Gr01, DatasetId::Gr02, DatasetId::Gr05];
    let mut best = 0.0f64;
    for (di, id) in ids.into_iter().enumerate() {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.scale, args.seed);
        eprintln!(
            "{}: |V|={} |E|={} (scale {})",
            id.short(),
            g.num_vertices(),
            g.num_edges(),
            args.scale
        );

        let base_cfg = AnyScanConfig::new(params)
            .with_auto_block_size(g.num_vertices())
            .with_threads(args.threads)
            .with_hub_bitmaps(false)
            .with_batched_step1(false);
        let opt_cfg = AnyScanConfig::new(params)
            .with_auto_block_size(g.num_vertices())
            .with_threads(args.threads)
            .with_reorder(ReorderMode::Degree);

        // Exactness first: identical clustering in original vertex ids.
        let truth = AnyScan::new(&g, base_cfg).run();
        let (g2, perm) = reorder(&g, ReorderMode::Degree);
        let mut ours = AnyScan::new(&g2, opt_cfg).run();
        ours.labels = perm.to_original(&ours.labels);
        ours.roles = perm.to_original(&ours.roles);
        if let Err(e) = check_scan_equivalent(&g, params, &truth, &ours) {
            panic!("{}: optimized run diverged from baseline: {e}", id.short());
        }

        // The reorder is part of the optimized pipeline, so it is timed.
        let (base_t, clusters) = median_of(args.reps, || {
            AnyScan::new(&g, base_cfg).run().num_clusters()
        });
        let (opt_t, _) = median_of(args.reps, || {
            let (g2, _) = reorder(&g, ReorderMode::Degree);
            AnyScan::new(&g2, opt_cfg).run().num_clusters()
        });
        let speedup = base_t.as_secs_f64() / opt_t.as_secs_f64();
        best = best.max(speedup);
        eprintln!(
            "  baseline {:.4}s vs reorder+bitmap+batched {:.4}s — {:.2}x ({} clusters)",
            base_t.as_secs_f64(),
            opt_t.as_secs_f64(),
            speedup,
            clusters
        );
        let _ = writeln!(
            json,
            "    {{ \"id\": \"{}\", \"vertices\": {}, \"edges\": {}, \"clusters\": {}, \"baseline_seconds\": {:.6}, \"optimized_seconds\": {:.6}, \"speedup\": {:.3}, \"equivalent\": true }}{}",
            id.short(),
            g.num_vertices(),
            g.num_edges(),
            clusters,
            base_t.as_secs_f64(),
            opt_t.as_secs_f64(),
            speedup,
            if di + 1 == ids.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"best_speedup\": {best:.3}");
    json.push_str("}\n");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!("wrote {} (best speedup {best:.2}x)", args.out);
}
