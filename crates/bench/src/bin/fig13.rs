//! Figure 13 — parameter effects on anySCAN's scalability (GR01).
//!
//! Left: speedup at the maximum requested thread count across (μ, ε).
//! Right: speedup vs block size. (Single-CPU container: see fig10's note —
//! values certify overhead behaviour, not real scaling.)

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::{load_dataset, time, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn run(g: &anyscan_graph::CsrGraph, params: ScanParams, block: usize, threads: usize) -> f64 {
    let config = AnyScanConfig::new(params)
        .with_block_size(block)
        .with_threads(threads);
    let (t, _) = time(|| AnyScan::new(g, config).run());
    t.as_secs_f64()
}

fn main() {
    let args = HarnessArgs::parse();
    let d = Dataset::get(DatasetId::Gr01);
    let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
    let max_threads = *args.threads.iter().max().unwrap_or(&16);
    let block = (g.num_vertices() / 32).clamp(32, 32_768);

    println!("== Fig. 13 (left): GR01 speedup at {max_threads} threads vs (mu, eps) ==\n");
    let mut t = Table::new(&["params", "t1-s", "tN-s", "speedup"]);
    for (eps, mu) in [(0.2, 5), (0.5, 5), (0.8, 5), (0.5, 2), (0.5, 10), (0.5, 15)] {
        let params = ScanParams::new(eps, mu);
        let t1 = run(&g, params, block, 1);
        let tn = run(&g, params, block, max_threads);
        t.row(vec![
            format!("eps={eps} mu={mu}"),
            format!("{t1:.3}"),
            format!("{tn:.3}"),
            format!("{:.2}", t1 / tn),
        ]);
    }
    t.print();

    println!("\n== Fig. 13 (right): GR01 speedup at {max_threads} threads vs block size ==\n");
    let params = ScanParams::paper_defaults();
    let mut t = Table::new(&["block", "t1-s", "tN-s", "speedup"]);
    for ratio in [0.005, 0.02, 0.08, 0.3] {
        let b = ((g.num_vertices() as f64 * ratio) as usize).max(8);
        let t1 = run(&g, params, b, 1);
        let tn = run(&g, params, b, max_threads);
        t.row(vec![
            b.to_string(),
            format!("{t1:.3}"),
            format!("{tn:.3}"),
            format!("{:.2}", t1 / tn),
        ]);
    }
    t.print();
}
