//! Table II — synthetic LFR dataset statistics.
//!
//! Regenerates the LFR grid (LFR01–05 sweep the average degree at c ≈ 0.40;
//! LFR11–15 sweep the clustering coefficient at d̄ ≈ 50.1) and prints the
//! realized statistics next to the paper's.

use anyscan_bench::{load_dataset, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_graph::stats::graph_stats;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "== Table II: LFR benchmark graphs (scale {}) ==\n",
        args.effective_scale()
    );
    let mut t = Table::new(&[
        "Id",
        "Vertices",
        "Edges",
        "avg-deg",
        "clust-c",
        "paper-deg",
        "paper-c",
    ]);
    for d in Dataset::lfr_graphs() {
        let (g, labels) = load_dataset(&d, args.effective_scale(), args.seed);
        assert!(labels.is_some(), "LFR datasets carry ground-truth labels");
        let s = graph_stats(&g);
        t.row(vec![
            d.id.short(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.2}", s.average_degree),
            format!("{:.4}", s.average_clustering_coefficient),
            format!("{:.2}", d.paper.average_degree),
            format!("{:.4}", d.paper.clustering_coefficient),
        ]);
    }
    t.print();
}
