//! PR 6 perf trajectory: sketch-accelerated σ. Two claims, one JSON file
//! (`BENCH_pr6.json`):
//!
//! 1. **Assist** — b-bit MinHash signatures only *order* core-check
//!    candidates (outcome-adaptive: most promising first when the
//!    estimates predict a core, least promising first when they predict
//!    failure), so the clustering is bit-identical to `--sketch off`, yet
//!    the exact kernels run ≥ 30 % fewer σ evaluations on the μ-early-exit
//!    core-check workload of a skewed R-MAT graph. The gate is measured on
//!    a full core-check sweep (one `core_check_early_exit` per vertex —
//!    exactly the work the ordering accelerates); the end-to-end driver
//!    totals, which dilute the effect with order-independent Step-1 range
//!    queries, are reported alongside together with a clustering-equality
//!    check.
//! 2. **Approx** — the estimate decides outright. Per signature size we
//!    report the wall-time ratio of an exact vs sketch adjacent-pair
//!    ε-decision sweep (signature build excluded: paid once, amortized over
//!    every (ε, μ) query) and the pairwise precision/recall of the approx
//!    clustering against the exact one (noise → singletons). The gate: some
//!    signature size must reach ≥ 5× σ-cost reduction at precision and
//!    recall ≥ 0.95.
//!
//! ```text
//! bench_pr6 [--rmat-scale n] [--lfr-n n] [--seed u] [--reps n]
//!           [--threads t] [--out path]
//! ```

use std::fmt::Write as _;
use std::hint::black_box;

use anyscan::telemetry::MetaValue;
use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::meta::meta_object;
use anyscan_bench::timing::median_of;
use anyscan_graph::gen::{lfr, rmat, LfrParams, RmatParams, WeightModel};
use anyscan_graph::CsrGraph;
use anyscan_metrics::{adjusted_rand_index, pair_precision_recall};
use anyscan_scan_common::{Clustering, Kernel, ScanParams, SketchMode, NOISE};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    rmat_scale: u32,
    lfr_n: usize,
    seed: u64,
    reps: usize,
    threads: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            rmat_scale: 13,
            lfr_n: 8192,
            seed: 7,
            reps: 3,
            threads: 4,
            out: "BENCH_pr6.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--rmat-scale" => out.rmat_scale = val().parse().expect("--rmat-scale u32"),
            "--lfr-n" => out.lfr_n = val().parse().expect("--lfr-n usize"),
            "--seed" => out.seed = val().parse().expect("--seed u64"),
            "--reps" => out.reps = val().parse().expect("--reps usize"),
            "--threads" => out.threads = val().parse().expect("--threads usize"),
            "--out" => out.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// Remaps NOISE vertices to unique singleton clusters so pair metrics
/// charge a noise/cluster disagreement exactly the pairs it breaks.
fn noise_to_singletons(labels: &[u32]) -> Vec<u32> {
    let mut next = labels
        .iter()
        .filter(|&&l| l != NOISE)
        .max()
        .map_or(0, |m| m + 1);
    labels
        .iter()
        .map(|&l| {
            if l == NOISE {
                let id = next;
                next += 1;
                id
            } else {
                l
            }
        })
        .collect()
}

fn run_driver(g: &CsrGraph, cfg: AnyScanConfig) -> (Clustering, u64) {
    let mut algo = AnyScan::new(g, cfg);
    let result = algo.run();
    (result, algo.stats().sigma_evals)
}

fn main() {
    let args = parse_args();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_pr6\",");
    let _ = writeln!(
        json,
        "  \"description\": \"MinHash sketch σ: assist-mode exact-eval reduction on the core-check workload (bit-identical clustering) and approx-mode σ-cost/accuracy per signature size (median of {} runs)\",",
        args.reps
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        meta_object(&[
            ("threads", MetaValue::U64(args.threads as u64)),
            ("rmat_scale", MetaValue::U64(args.rmat_scale as u64)),
            ("lfr_n", MetaValue::U64(args.lfr_n as u64)),
            ("seed", MetaValue::U64(args.seed)),
            ("reps", MetaValue::U64(args.reps as u64)),
        ])
    );

    // ---- Part 1: assist-mode exact-eval reduction on a skewed graph ----
    // Low ε / low μ puts real core mass in the power-law graph, which is
    // where candidate ordering has room to work: succeeding checks exit
    // after ~μ confirmed neighbors instead of a neighbor-order crawl.
    let params = ScanParams::new(0.15, 3);
    let (rows, bits) = (256usize, 8u32);
    let mut p = RmatParams::graph500(args.rmat_scale, 16);
    p.weights = WeightModel::uniform_default();
    let g = rmat(&mut StdRng::seed_from_u64(args.seed), &p);
    eprintln!(
        "assist: R-MAT |V|={} |E|={} eps={} mu={}",
        g.num_vertices(),
        g.num_edges(),
        params.epsilon,
        params.mu
    );

    // Core-check sweep: the μ-early-exit workload itself, plain vs
    // sketch-ordered, with verdict equality asserted per vertex.
    let plain = Kernel::new(&g, params).with_edge_cache(false);
    let ordered = Kernel::new(&g, params)
        .with_edge_cache(false)
        .with_sketch_params(SketchMode::Assist, rows, bits, args.seed, args.threads);
    let mut cores = 0usize;
    for v in 0..g.num_vertices() as u32 {
        let a = plain.core_check_early_exit(v, 1);
        let b = ordered.core_check_early_exit(v, 1);
        assert_eq!(a, b, "assist core-check verdict diverged at {v}");
        cores += a as usize;
    }
    let sweep_plain = plain.stats().sigma_evals;
    let sweep_assist = ordered.stats().sigma_evals;
    let reduction = 1.0 - sweep_assist as f64 / sweep_plain as f64;
    eprintln!(
        "  core-check sweep ({cores} cores): {sweep_plain} vs {sweep_assist} exact σ evals — {:.1}% fewer",
        reduction * 100.0
    );

    // End-to-end driver: identical clustering, totals reported (diluted by
    // the order-independent Step-1 range queries).
    let base = AnyScanConfig::new(params)
        .with_auto_block_size(g.num_vertices())
        .with_threads(args.threads)
        .with_seed(args.seed);
    let (off, evals_off) = run_driver(&g, base);
    let (assist, evals_assist) = run_driver(
        &g,
        base.with_sketch(SketchMode::Assist)
            .with_sketch_params(rows, bits),
    );
    assert_eq!(
        off.labels, assist.labels,
        "assist diverged from off (labels)"
    );
    assert_eq!(off.roles, assist.roles, "assist diverged from off (roles)");
    eprintln!("  driver: off {evals_off} vs assist {evals_assist} σ evals, identical clustering");
    let _ = writeln!(
        json,
        "  \"assist\": {{ \"graph\": \"rmat\", \"vertices\": {}, \"edges\": {}, \"epsilon\": {}, \"mu\": {}, \"sketch_rows\": {rows}, \"sketch_bits\": {bits}, \"core_check_sweep_evals_plain\": {sweep_plain}, \"core_check_sweep_evals_assist\": {sweep_assist}, \"eval_reduction\": {reduction:.4}, \"driver_sigma_evals_off\": {evals_off}, \"driver_sigma_evals_assist\": {evals_assist}, \"identical_clustering\": true }},",
        g.num_vertices(),
        g.num_edges(),
        params.epsilon,
        params.mu,
    );

    // ---- Part 2: approx-mode σ-cost vs accuracy per signature size ----
    // Unweighted community graph with pronounced structure: the MinHash
    // estimator models unit-weight σ exactly, and a clear σ gap around ε is
    // the regime the approximation is for — decisions only flip for pairs
    // within the estimator noise of ε, and the histogram is thin there.
    let mut lp = LfrParams::paper_defaults(args.lfr_n, 40.0);
    lp.weights = WeightModel::Unit;
    lp.mixing = 0.15;
    lp.triangle_closure = 0.7;
    lp.locality_spread = 0.15;
    let (lg, _) = lfr(&mut StdRng::seed_from_u64(args.seed ^ 0x9E37), &lp);
    let lparams = ScanParams::new(0.3, 4);
    eprintln!(
        "approx: LFR |V|={} |E|={} eps={} mu={}",
        lg.num_vertices(),
        lg.num_edges(),
        lparams.epsilon,
        lparams.mu
    );

    let lbase = AnyScanConfig::new(lparams)
        .with_auto_block_size(lg.num_vertices())
        .with_threads(args.threads)
        .with_seed(args.seed);
    let (exact, _) = run_driver(&lg, lbase);
    let truth = noise_to_singletons(&exact.labels);

    let pairs: Vec<(u32, u32)> = lg.edges().map(|(u, v, _)| (u, v)).collect();
    let exact_kernel = Kernel::new(&lg, lparams).with_edge_cache(false);
    let (exact_t, _) = median_of(args.reps, || {
        let mut acc = 0usize;
        for &(u, v) in &pairs {
            acc += exact_kernel.is_eps_neighbor(black_box(u), v) as usize;
        }
        acc
    });
    eprintln!(
        "  exact ε-decision sweep over {} adjacent pairs: {:.4}s",
        pairs.len(),
        exact_t.as_secs_f64()
    );

    json.push_str("  \"approx\": {\n");
    let _ = writeln!(
        json,
        "    \"graph\": \"lfr\", \"vertices\": {}, \"edges\": {}, \"epsilon\": {}, \"mu\": {}, \"sigma_sweep_pairs\": {}, \"exact_sweep_seconds\": {:.6},",
        lg.num_vertices(),
        lg.num_edges(),
        lparams.epsilon,
        lparams.mu,
        pairs.len(),
        exact_t.as_secs_f64()
    );
    json.push_str("    \"sweep\": [\n");

    let rows_sweep = [32usize, 64, 128, 256];
    let mut best: Option<(usize, f64, f64, f64)> = None;
    for (i, &rows) in rows_sweep.iter().enumerate() {
        let sketch_kernel = Kernel::new(&lg, lparams)
            .with_edge_cache(false)
            .with_sketch_params(SketchMode::Approx, rows, 8, args.seed, args.threads);
        let (sketch_t, _) = median_of(args.reps, || {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += sketch_kernel.is_eps_neighbor(black_box(u), v) as usize;
            }
            acc
        });
        let speedup = exact_t.as_secs_f64() / sketch_t.as_secs_f64();

        let (approx, _) = run_driver(
            &lg,
            lbase
                .with_sketch(SketchMode::Approx)
                .with_sketch_params(rows, 8),
        );
        let pred = noise_to_singletons(&approx.labels);
        let (precision, recall) = pair_precision_recall(&pred, &truth);
        let ari = adjusted_rand_index(&pred, &truth);
        eprintln!(
            "  rows={rows:>3}: sweep {:.4}s ({speedup:.2}x), precision {precision:.4}, recall {recall:.4}, ari {ari:.4}",
            sketch_t.as_secs_f64()
        );
        let _ = writeln!(
            json,
            "      {{ \"rows\": {rows}, \"bits\": 8, \"sketch_sweep_seconds\": {:.6}, \"sigma_speedup\": {speedup:.3}, \"precision\": {precision:.4}, \"recall\": {recall:.4}, \"ari\": {ari:.4} }}{}",
            sketch_t.as_secs_f64(),
            if i + 1 == rows_sweep.len() { "" } else { "," }
        );
        if precision >= 0.95 && recall >= 0.95 && best.is_none_or(|(_, s, _, _)| speedup > s) {
            best = Some((rows, speedup, precision, recall));
        }
    }
    json.push_str("    ]\n  },\n");

    let (best_rows, best_speedup, best_p, best_r) =
        best.expect("no signature size reached precision/recall >= 0.95");
    let _ = writeln!(
        json,
        "  \"gates\": {{ \"assist_eval_reduction_min\": 0.30, \"assist_eval_reduction\": {reduction:.4}, \"approx_speedup_min\": 5.0, \"approx_rows\": {best_rows}, \"approx_speedup\": {best_speedup:.3}, \"approx_precision\": {best_p:.4}, \"approx_recall\": {best_r:.4}, \"pass\": {} }}",
        reduction >= 0.30 && best_speedup >= 5.0
    );
    json.push_str("}\n");

    assert!(
        reduction >= 0.30,
        "assist exact-eval reduction {reduction:.4} below the 0.30 gate"
    );
    assert!(
        best_speedup >= 5.0,
        "approx σ-cost reduction {best_speedup:.2}x below the 5x gate at precision/recall >= 0.95"
    );

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    eprintln!(
        "wrote {} (assist -{:.1}% evals; approx {best_speedup:.2}x at rows={best_rows}, p={best_p:.3}, r={best_r:.3})",
        args.out,
        reduction * 100.0
    );
}
