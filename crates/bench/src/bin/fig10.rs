//! Figure 10 — anytime × parallel: cumulative runtime per iteration across
//! thread counts (left) and final speedup scalability (right), GR01–GR04.
//!
//! HONESTY NOTE: the reproduction container exposes **one hardware CPU**, so
//! measured "speedups" here certify correctness and overhead of the parallel
//! path, not real scaling — the paper measured 2×8 hardware threads. The
//! harness sweeps the requested thread counts regardless and reports what it
//! sees.

use anyscan::{AnyScan, AnyScanConfig, Phase};
use anyscan_bench::table::secs;
use anyscan_bench::{load_dataset, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    let ids = [
        DatasetId::Gr01,
        DatasetId::Gr02,
        DatasetId::Gr03,
        DatasetId::Gr04,
    ];
    println!(
        "available CPUs: {}\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    for id in ids {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        // The multicore study uses 4× the sequential block size
        // (α = β = 32768 vs 8192 in the paper).
        let block = (g.num_vertices() / 32).clamp(32, 32_768);

        println!(
            "== Fig. 10 (left): {} cumulative-s at sampled iterations ==\n",
            id.short()
        );
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut final_times = Vec::new();
        for &threads in &args.threads {
            let config = AnyScanConfig::new(params)
                .with_block_size(block)
                .with_threads(threads);
            let mut algo = AnyScan::new(&g, config);
            let mut samples = Vec::new();
            while algo.phase() != Phase::Done {
                algo.step();
                samples.push(algo.cumulative_time());
            }
            final_times.push(algo.cumulative_time());
            // Sample 6 evenly spaced iteration checkpoints.
            let k = samples.len();
            let picks: Vec<usize> = (1..=6).map(|i| (i * k / 6).saturating_sub(1)).collect();
            let mut row = vec![format!("threads={threads}")];
            for p in picks {
                row.push(secs(samples[p]));
            }
            rows.push(row);
        }
        let mut t = Table::new(&[
            "config", "it-1/6", "it-2/6", "it-3/6", "it-4/6", "it-5/6", "final",
        ]);
        for row in rows {
            t.row(row);
        }
        t.print();

        println!(
            "\n== Fig. 10 (right): {} final runtime and speedup vs 1 thread ==\n",
            id.short()
        );
        let base = final_times[0];
        let mut t = Table::new(&["threads", "runtime-s", "speedup"]);
        for (i, &threads) in args.threads.iter().enumerate() {
            t.row(vec![
                threads.to_string(),
                secs(final_times[i]),
                format!("{:.2}", base.as_secs_f64() / final_times[i].as_secs_f64()),
            ]);
        }
        t.print();
        println!();
    }
}
