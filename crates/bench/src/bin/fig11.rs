//! Figure 11 — anySCAN's speedup vs. the ideal parallel algorithm.
//!
//! The ideal algorithm evaluates σ on every edge with no synchronization and
//! no label propagation; its curve is the ceiling for any SCAN
//! parallelization. (Single-CPU container: see the note in fig10.)

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_baselines::ideal_parallel;
use anyscan_bench::table::secs;
use anyscan_bench::{load_dataset, time, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();
    let ids = [
        DatasetId::Gr01,
        DatasetId::Gr02,
        DatasetId::Gr03,
        DatasetId::Gr04,
    ];
    for id in ids {
        let d = Dataset::get(id);
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let block = (g.num_vertices() / 32).clamp(32, 32_768);
        println!("\n== Fig. 11: {} speedups vs threads ==\n", id.short());
        let mut any_base = None;
        let mut ideal_base = None;
        let mut t = Table::new(&[
            "threads",
            "anySCAN-s",
            "anySCAN-speedup",
            "ideal-s",
            "ideal-speedup",
        ]);
        for &threads in &args.threads {
            let config = AnyScanConfig::new(params)
                .with_block_size(block)
                .with_threads(threads);
            let (any_t, _) = time(|| AnyScan::new(&g, config).run());
            let (ideal_t, _) = time(|| ideal_parallel(&g, params, threads));
            let ab = *any_base.get_or_insert(any_t);
            let ib = *ideal_base.get_or_insert(ideal_t);
            t.row(vec![
                threads.to_string(),
                secs(any_t),
                format!("{:.2}", ab.as_secs_f64() / any_t.as_secs_f64()),
                secs(ideal_t),
                format!("{:.2}", ib.as_secs_f64() / ideal_t.as_secs_f64()),
            ]);
        }
        t.print();
    }
}
