//! Table I — real-graph dataset statistics.
//!
//! Regenerates the GR01–GR05 analogues and prints |V|, |E|, average degree
//! `d̄` and average clustering coefficient `c` next to the paper's numbers
//! for the original datasets. The analogues match the paper's `d̄` (capped
//! for GR01, see DESIGN.md) and `c`; |V|/|E| are laptop-scale by design.

use anyscan_bench::{load_dataset, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_graph::stats::graph_stats;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "== Table I: real graph datasets (analogues at scale {}) ==\n",
        args.effective_scale()
    );
    let mut t = Table::new(&[
        "Id",
        "Graph",
        "Vertices",
        "Edges",
        "avg-deg",
        "clust-c",
        "paper-deg",
        "paper-c",
    ]);
    for d in Dataset::real_graphs() {
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let s = graph_stats(&g);
        t.row(vec![
            d.id.short(),
            format!("{}-analogue", d.id.paper_name()),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.2}", s.average_degree),
            format!("{:.4}", s.average_clustering_coefficient),
            format!("{:.2}", d.paper.average_degree),
            format!("{:.4}", d.paper.clustering_coefficient),
        ]);
    }
    t.print();
}
