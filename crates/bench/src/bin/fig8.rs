//! Figure 8 — parameter effects on anySCAN (GR01).
//!
//! Left: anytime NMI curves for the ε sweep (μ = 5) and the μ sweep
//! (ε = 0.5) — lower μ / lower ε should reach good NMI earlier.
//! Right: final runtime vs. block size α = β across (ε, μ) combinations —
//! the paper finds a shallow optimum (too-small blocks pay anytime
//! overhead; too-large blocks pay redundant Step-1 similarity work) and
//! overall stability.
//!
//! Block sizes are swept at the paper's α/|V| *ratios* scaled to the
//! analogue's size (the paper's absolute 256…8192 covers 0.2–8 % of GR01's
//! 107 K vertices).

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_bench::table::secs;
use anyscan_bench::{anytime_curve, load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::{Dataset, DatasetId};
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let d = Dataset::get(DatasetId::Gr01);
    let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
    let n = g.num_vertices();

    println!("== Fig. 8 (left): anytime NMI vs time for eps sweep (GR01, mu=5) ==");
    for eps in [0.2, 0.35, 0.5, 0.65, 0.8] {
        let params = ScanParams::new(eps, 5);
        let truth = run_algo(Algo::Scan, &g, params)
            .clustering
            .labels_with_noise_cluster();
        let config = AnyScanConfig::new(params).with_auto_block_size(n);
        let curve = anytime_curve(&g, config, &truth, 8);
        let series: Vec<String> = curve
            .iter()
            .map(|p| format!("({}, {:.3})", secs(p.cumulative), p.nmi))
            .collect();
        println!("eps={eps}: {}", series.join(" "));
    }

    println!("\n== Fig. 8 (left): anytime NMI vs time for mu sweep (GR01, eps=0.5) ==");
    for mu in [2usize, 5, 10, 15] {
        let params = ScanParams::new(0.5, mu);
        let truth = run_algo(Algo::Scan, &g, params)
            .clustering
            .labels_with_noise_cluster();
        let config = AnyScanConfig::new(params).with_auto_block_size(n);
        let curve = anytime_curve(&g, config, &truth, 8);
        let series: Vec<String> = curve
            .iter()
            .map(|p| format!("({}, {:.3})", secs(p.cumulative), p.nmi))
            .collect();
        println!("mu={mu}: {}", series.join(" "));
    }

    println!("\n== Fig. 8 (right): final runtime-s vs block size alpha=beta (GR01) ==\n");
    // Paper ratios 256/107k … 8192/107k ≈ 0.24 % … 7.6 %, mapped to |V|.
    let blocks: Vec<usize> = [0.0024, 0.019, 0.076, 0.3]
        .iter()
        .map(|r| ((n as f64 * r) as usize).max(8))
        .collect();
    let header: Vec<String> = std::iter::once("params".to_string())
        .chain(blocks.iter().map(|b| format!("alpha={b}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (eps, mu) in [(0.2, 5), (0.5, 5), (0.8, 5), (0.5, 2), (0.5, 15)] {
        let params = ScanParams::new(eps, mu);
        let mut row = vec![format!("eps={eps} mu={mu}")];
        for &b in &blocks {
            let config = AnyScanConfig::new(params).with_block_size(b);
            let mut algo = AnyScan::new(&g, config);
            let _ = algo.run();
            row.push(secs(algo.cumulative_time()));
        }
        t.row(row);
    }
    t.print();
}
