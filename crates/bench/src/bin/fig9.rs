//! Figure 9 — anySCAN vs pSCAN on the LFR grid.
//!
//! Left: runtime vs average degree (LFR01–05). Right: runtime vs average
//! clustering coefficient (LFR11–15).
//!
//! Shape to check: both grow with density; both *shrink* as the clustering
//! coefficient grows; anySCAN gains on pSCAN on denser / more clustered
//! graphs (bigger super-nodes, fewer merge checks).

use anyscan_bench::table::secs;
use anyscan_bench::{load_dataset, run_algo, Algo, HarnessArgs, Table};
use anyscan_graph::gen::Dataset;
use anyscan_scan_common::ScanParams;

fn main() {
    let args = HarnessArgs::parse();
    let params = ScanParams::paper_defaults();

    println!("== Fig. 9 (left): runtime-s vs average degree (LFR01-05) ==\n");
    let mut t = Table::new(&["dataset", "avg-deg", "pSCAN", "anySCAN"]);
    for d in Dataset::lfr_degree_sweep() {
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let p = run_algo(Algo::PScan, &g, params);
        let a = run_algo(Algo::AnyScan, &g, params);
        t.row(vec![
            d.id.short(),
            format!("{:.1}", g.average_degree()),
            secs(p.elapsed),
            secs(a.elapsed),
        ]);
    }
    t.print();

    println!("\n== Fig. 9 (right): runtime-s vs clustering coefficient (LFR11-15) ==\n");
    let mut t = Table::new(&["dataset", "target-c", "pSCAN", "anySCAN"]);
    for d in Dataset::lfr_clustering_sweep() {
        let (g, _) = load_dataset(&d, args.effective_scale(), args.seed);
        let p = run_algo(Algo::PScan, &g, params);
        let a = run_algo(Algo::AnyScan, &g, params);
        t.row(vec![
            d.id.short(),
            format!("{:.2}", d.paper.clustering_coefficient),
            secs(p.elapsed),
            secs(a.elapsed),
        ]);
    }
    t.print();
}
