//! Minimal flag parsing shared by the experiment binaries (kept
//! hand-rolled: the workspace's dependency budget is deliberately small).

/// Common harness options.
///
/// ```text
/// --scale <f64>      dataset size multiplier        (default 1.0)
/// --seed <u64>       generator seed                 (default 7)
/// --threads <list>   comma-separated thread counts  (default 1,2,4,8,16)
/// --quick            quarter-scale datasets, fewer sweep points
/// ```
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    pub scale: f64,
    pub seed: u64,
    pub threads: Vec<usize>,
    pub quick: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0,
            seed: 7,
            threads: vec![1, 2, 4, 8, 16],
            quick: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`, panicking with a usage message on bad
    /// input (these are operator-facing binaries).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = expect_value(&mut it, "--scale"),
                "--seed" => out.seed = expect_value(&mut it, "--seed"),
                "--threads" => {
                    let raw: String = it.next().unwrap_or_else(|| usage("--threads needs a list"));
                    out.threads = raw
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .unwrap_or_else(|_| usage("bad thread count"))
                        })
                        .collect();
                    if out.threads.is_empty() {
                        usage("--threads list is empty");
                    }
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => usage("help requested"),
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        if out.quick {
            out.scale *= 0.25;
        }
        out
    }

    /// Effective dataset scale (already folded `--quick`).
    pub fn effective_scale(&self) -> f64 {
        self.scale
    }
}

fn expect_value<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(reason: &str) -> ! {
    eprintln!("{reason}\n\nusage: <experiment> [--scale F] [--seed N] [--threads a,b,c] [--quick]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.threads, vec![1, 2, 4, 8, 16]);
        assert!(!a.quick);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--scale", "0.5", "--seed", "42", "--threads", "1,4"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 42);
        assert_eq!(a.threads, vec![1, 4]);
    }

    #[test]
    fn quick_quarters_the_scale() {
        let a = parse(&["--scale", "2.0", "--quick"]);
        assert!((a.effective_scale() - 0.5).abs() < 1e-12);
    }
}
