//! Uniform dispatch over the five algorithms the paper compares.

use std::time::{Duration, Instant};

use anyscan::anyscan;
use anyscan_baselines::{pscan, scan, scan_b, scanpp};
use anyscan_graph::CsrGraph;
use anyscan_scan_common::{Clustering, ScanParams, SimStats};

/// The algorithms of the evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    Scan,
    ScanB,
    PScan,
    ScanPP,
    AnyScan,
}

impl Algo {
    /// Everything the paper benchmarks head-to-head.
    pub const ALL: [Algo; 5] = [
        Algo::Scan,
        Algo::ScanB,
        Algo::PScan,
        Algo::ScanPP,
        Algo::AnyScan,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Scan => "SCAN",
            Algo::ScanB => "SCAN-B",
            Algo::PScan => "pSCAN",
            Algo::ScanPP => "SCAN++",
            Algo::AnyScan => "anySCAN",
        }
    }
}

/// Timing + result + work counters of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub algo: Algo,
    pub elapsed: Duration,
    pub clustering: Clustering,
    pub stats: SimStats,
    pub union_ops: u64,
}

/// Runs one algorithm once, timed.
pub fn run_algo(algo: Algo, g: &CsrGraph, params: ScanParams) -> RunOutcome {
    let start = Instant::now();
    let (clustering, stats, union_ops) = match algo {
        Algo::Scan => {
            let out = scan(g, params);
            (out.clustering, out.stats, out.union_ops)
        }
        Algo::ScanB => {
            let out = scan_b(g, params);
            (out.clustering, out.stats, out.union_ops)
        }
        Algo::PScan => {
            let out = pscan(g, params);
            (out.clustering, out.stats, out.union_ops)
        }
        Algo::ScanPP => {
            let out = scanpp(g, params);
            (out.clustering, out.stats, out.union_ops)
        }
        Algo::AnyScan => {
            let out = anyscan(g, params);
            (out.clustering, out.stats, out.unions.total())
        }
    };
    RunOutcome {
        algo,
        elapsed: start.elapsed(),
        clustering,
        stats,
        union_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{planted_partition, PlantedPartitionParams};
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = planted_partition(
            &mut rng,
            &PlantedPartitionParams {
                n: 300,
                num_communities: 6,
                p_in: 0.4,
                p_out: 0.02,
                weights: anyscan_graph::gen::WeightModel::uniform_default(),
            },
        );
        let params = ScanParams::new(0.4, 4);
        let truth = run_algo(Algo::Scan, &g, params);
        for algo in Algo::ALL {
            let out = run_algo(algo, &g, params);
            assert_scan_equivalent(&g, params, &truth.clustering, &out.clustering);
            assert!(out.elapsed > Duration::ZERO);
        }
    }
}
