//! Plain-text aligned tables, matching the rows/columns of the paper's
//! tables and figure series.

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; cell count must match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with space padding and a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numerics, left-align text.
                if cell.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a `Duration` in seconds with 3 decimals (the paper reports
/// seconds).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Numeric right-alignment: "1" ends at the same column as "12345".
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
