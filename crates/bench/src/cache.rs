//! Disk-cached dataset generation.
//!
//! LFR calibration is the expensive part of dataset generation; caching the
//! generated graphs (binary CSR + a small label sidecar) makes repeated
//! experiment runs start instantly. The cache key is
//! `(dataset, scale, seed)`; files live under `target/bench-data/`.

use std::fs;
use std::path::PathBuf;

use anyscan_graph::gen::Dataset;
use anyscan_graph::io::{read_binary, write_binary};
use anyscan_graph::CsrGraph;

/// Loads (or generates and caches) a dataset at the given scale and seed.
/// Returns the graph and, when the generator defines one, the planted
/// ground-truth labels.
pub fn load_dataset(d: &Dataset, scale: f64, seed: u64) -> (CsrGraph, Option<Vec<u32>>) {
    let dir = cache_dir();
    let stem = format!("{}-s{}-r{}", d.id.short(), scale, seed);
    let graph_path = dir.join(format!("{stem}.bin"));
    let label_path = dir.join(format!("{stem}.labels"));

    if let Ok(file) = fs::File::open(&graph_path) {
        if let Ok(g) = read_binary(std::io::BufReader::new(file)) {
            let labels = fs::read(&label_path)
                .ok()
                .and_then(|raw| decode_labels(&raw, g.num_vertices()));
            return (g, labels);
        }
        // Corrupt cache entry: fall through and regenerate.
        let _ = fs::remove_file(&graph_path);
    }

    let (g, labels) = d.generate_scaled(scale, seed);
    let _ = fs::create_dir_all(&dir);
    if let Ok(file) = fs::File::create(&graph_path) {
        let _ = write_binary(&g, std::io::BufWriter::new(file));
    }
    if let Some(l) = &labels {
        let _ = fs::write(&label_path, encode_labels(l));
    }
    (g, labels)
}

fn cache_dir() -> PathBuf {
    // Keep cache inside the workspace target dir so `cargo clean` clears it.
    let manifest = env!("CARGO_MANIFEST_DIR");
    PathBuf::from(manifest).join("../../target/bench-data")
}

fn encode_labels(labels: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(labels.len() * 4);
    for &l in labels {
        out.extend_from_slice(&l.to_le_bytes());
    }
    out
}

fn decode_labels(raw: &[u8], n: usize) -> Option<Vec<u32>> {
    if raw.len() != n * 4 {
        return None;
    }
    Some(
        raw.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::DatasetId;

    #[test]
    fn generate_then_hit_cache() {
        let d = Dataset::get(DatasetId::Lfr(11));
        // Tiny scale + uncommon seed so the test stays fast and isolated.
        let (g1, l1) = load_dataset(&d, 0.02, 987_654);
        let (g2, l2) = load_dataset(&d, 0.02, 987_654);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
        assert!(l1.is_some());
    }

    #[test]
    fn label_codec_roundtrip() {
        let labels = vec![0u32, 7, u32::MAX, 42];
        let enc = encode_labels(&labels);
        assert_eq!(decode_labels(&enc, 4), Some(labels));
        assert_eq!(decode_labels(&enc, 3), None);
    }
}
