//! Shared machinery of the experiment harness.
//!
//! Each `src/bin/<id>.rs` reproduces one table or figure of the paper (see
//! DESIGN.md §4 for the index); this library provides the pieces they share:
//! dataset caching, a tiny CLI parser, algorithm dispatch, timing helpers
//! and plain-text table rendering. Every binary prints the same rows/series
//! the paper reports, so EXPERIMENTS.md can record paper-vs-measured
//! side by side.

pub mod algos;
pub mod anytime;
pub mod cache;
pub mod cli;
pub mod meta;
pub mod table;
pub mod timing;

pub use algos::{run_algo, Algo, RunOutcome};
pub use anytime::{anytime_curve, AnytimePoint};
pub use cache::load_dataset;
pub use cli::HarnessArgs;
pub use table::Table;
pub use timing::time;
