//! Provenance header for bench result JSON.
//!
//! Every machine-readable bench output should say *what* was measured:
//! the commit it ran at, the core count, and the graph/parameter shape.
//! [`meta_object`] renders that as one JSON object so successive PRs can
//! compare results like against like (and discard stale baselines when the
//! SHA differs).

use std::process::Command;

use anyscan::telemetry::{push_json_string, MetaValue};

/// The current git commit SHA, or `"unknown"` outside a work tree (results
/// must still be writable from an exported tarball).
pub fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Renders `{ "git_sha": …, "cpus": …, <extra…> }` as a JSON object.
/// `extra` carries the bench's graph params (vertices, eps, mu, …).
pub fn meta_object(extra: &[(&str, MetaValue)]) -> String {
    let mut out = String::from("{ ");
    push_json_string(&mut out, "git_sha");
    out.push_str(": ");
    push_json_string(&mut out, &git_sha());
    out.push_str(", ");
    push_json_string(&mut out, "cpus");
    out.push_str(": ");
    out.push_str(
        &std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .to_string(),
    );
    for (key, value) in extra {
        out.push_str(", ");
        push_json_string(&mut out, key);
        out.push_str(": ");
        match value {
            MetaValue::Str(s) => push_json_string(&mut out, s),
            MetaValue::U64(v) => out.push_str(&v.to_string()),
            MetaValue::F64(v) => anyscan::telemetry::push_json_f64(&mut out, *v),
        }
    }
    out.push_str(" }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan::telemetry::json::JsonValue;

    #[test]
    fn git_sha_is_never_empty() {
        assert!(!git_sha().is_empty());
    }

    #[test]
    fn meta_object_is_valid_json_with_extras() {
        let json = meta_object(&[
            ("threads", MetaValue::Str("1,2,4".into())),
            ("vertices", MetaValue::U64(5000)),
            ("epsilon", MetaValue::F64(0.6)),
        ]);
        let v = JsonValue::parse(&json).expect("meta must parse");
        assert!(v.get("git_sha").and_then(|s| s.as_str()).is_some());
        assert!(v.get("cpus").and_then(|c| c.as_u64()).unwrap() >= 1);
        assert_eq!(v.get("vertices").and_then(|n| n.as_u64()), Some(5000));
        assert_eq!(v.get("threads").and_then(|t| t.as_str()), Some("1,2,4"));
        assert_eq!(v.get("epsilon").and_then(|e| e.as_f64()), Some(0.6));
    }
}
