//! A minimal JSON reader for trace validation.
//!
//! The workspace is offline (no serde); the trace schema checker and the
//! telemetry round-trip tests need to *read* JSON, not just write it. This
//! is a small strict recursive-descent parser over the full JSON grammar —
//! objects keep key order and duplicate keys (first match wins on lookup),
//! numbers are f64.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an object's field list.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling: a high surrogate must
                            // be followed by \uXXXX low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the full scalar from the source.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(
            JsonValue::parse("\"hi\\nthere\"").unwrap().as_str(),
            Some("hi\nthere")
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "x"}, null], "c": {"d": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_unicode_escapes_and_utf8() {
        assert_eq!(JsonValue::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        assert_eq!(
            JsonValue::parse("\"σ ≥ ε\"").unwrap().as_str(),
            Some("σ ≥ ε")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "01x",
            "{} garbage",
            "\"\\q\"",
            "[1 2]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = JsonValue::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
