//! `anyscan-trace-check` — CI gate for `--trace-json` output.
//!
//! Usage: `anyscan-trace-check <trace.json> [<trace.json> ...]`
//!
//! Parses each file and validates it against trace schema version 1,
//! printing a one-line summary per file. Exits non-zero on the first
//! malformed or invalid trace so the telemetry-smoke job fails loudly.

use anyscan_telemetry::json::JsonValue;
use anyscan_telemetry::validate::validate_trace;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: anyscan-trace-check <trace.json> [<trace.json> ...]");
        std::process::exit(2);
    }

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                std::process::exit(1);
            }
        };
        let doc = match JsonValue::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: malformed JSON: {e}");
                std::process::exit(1);
            }
        };
        match validate_trace(&doc) {
            Ok(s) => {
                let vertices = s
                    .vertices
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "?".to_string());
                println!(
                    "{path}: OK — {} spans ({} ns), {} snapshots, {} pool slots, \
                     |V|={vertices}, sigma_evals={}, cache_hits={}",
                    s.spans,
                    s.total_span_ns,
                    s.snapshots,
                    s.pool_slots,
                    s.sigma_evals,
                    s.cache_hits
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID trace: {e}");
                std::process::exit(1);
            }
        }
    }
}
