//! Structured telemetry for the anytime pipeline.
//!
//! anySCAN's value proposition is *anytime* progress: the interesting
//! behavior of a run is not its end-to-end wall time but how cluster quality
//! and state-machine composition evolve per block (the paper's Figs. 8–12).
//! This crate records that evolution as structured data:
//!
//! * **counters** ([`Counter`]) — kernel work (σ evaluations, filter hits,
//!   edge-cache hits/misses, early exits), driver events (super-nodes
//!   created, pruned candidates, border adoptions) and per-step unions,
//!   accumulated in lock-free cache-padded shards so parallel workers never
//!   contend on a line;
//! * **spans** ([`Telemetry::span`]) — named wall-time intervals (per-step
//!   timers, explorer/hierarchy builds), aggregated by name;
//! * **anytime snapshots** ([`BlockSnapshot`]) — one record per block
//!   iteration: the 7-state vertex histogram, super-node count and DSU
//!   component count at that block boundary;
//! * **pool utilization** ([`PoolUtilization`]) — per-slot busy time and
//!   chunk claims plus per-worker parked time from the persistent worker
//!   pool.
//!
//! Everything sits behind the [`Recorder`] trait. The [`Telemetry`] handle
//! is the cheap-to-clone front door: a disabled handle (the default) holds
//! no recorder and every call degrades to **one branch on an `Option`** —
//! no allocation, no atomics, no time reads — so production hot paths pay
//! nothing measurable when tracing is off.
//!
//! A finished run is exported as a [`Report`] and serialized to JSON with
//! [`Report::to_json`]; [`validate::validate_trace`] (and the
//! `anyscan-trace-check` binary) check that schema, which CI gates on.

pub mod json;
pub mod validate;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of vertex states in the anytime state machine (Fig. 3 of the
/// paper). [`BlockSnapshot::states`] is indexed by state discriminant.
pub const NUM_VERTEX_STATES: usize = 7;

/// Display names of the vertex states, in discriminant order.
pub const VERTEX_STATE_NAMES: [&str; NUM_VERTEX_STATES] = [
    "untouched",
    "unprocessed_noise",
    "processed_noise",
    "unprocessed_border",
    "processed_border",
    "unprocessed_core",
    "processed_core",
];

/// Every counter the pipeline records. The set is closed so counter storage
/// is a fixed array per shard and aggregation is a loop, not a hash map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Merge-join σ evaluations entered (full or early-stopped).
    SigmaEvals,
    /// Pairs dismissed by the O(1) Lemma-5 filter.
    Lemma5Filtered,
    /// SCAN++-style similarity-sharing evaluations.
    SharedEvals,
    /// ε-decisions answered by the symmetric edge-decision cache.
    EdgeCacheHits,
    /// Adjacent-pair decisions that had to be computed and stored.
    EdgeCacheMisses,
    /// Merge-joins accepted before exhausting either neighbor list.
    EarlyAccepts,
    /// Merge-joins rejected by the remaining-suffix bound.
    EarlyRejects,
    /// Super-nodes created in Step 1.
    SupernodesCreated,
    /// Vertices marked noise by the `|Γ(p)| < μ` shortcut (no range query).
    DegreeShortcutNoise,
    /// Step-2 candidates skipped because their super-nodes already share a
    /// cluster.
    Step2Pruned,
    /// Step-3 candidates skipped because no neighbor straddles clusters.
    Step3Pruned,
    /// Noise vertices adopted as borders in Step 4.
    BorderAdoptions,
    /// `decide_core` calls that had to do real work (state not yet decided).
    CoreChecks,
    /// Successful `Union` operations during Step 1 (sequential tail).
    UnionsStep1,
    /// Successful `Union` operations during Step 2.
    UnionsStep2,
    /// Successful `Union` operations during Step 3.
    UnionsStep3,
    /// σ evaluations performed while building the similarity index (one per
    /// undirected edge; mirror arcs are copied, not recomputed).
    IndexSigmaEvals,
    /// (ε, μ) queries answered from the similarity index.
    IndexQueries,
    /// Core vertices found across all index queries.
    IndexCoresFound,
    /// Border vertices attached across all index queries.
    IndexBordersAttached,
    /// Times a `RunControl` trip (cancel / deadline / budget) stopped a run.
    CancelTrips,
    /// Checkpoints successfully written (atomic temp+fsync+rename cycles).
    CheckpointsWritten,
    /// Runs restored from an `ASCK` checkpoint.
    ResumeLoads,
    /// Faults fired by the `anyscan-faults` failpoint facility.
    FaultsInjected,
    /// σ evaluations that took the classic (or branchless) merge-join path.
    SigmaPathMerge,
    /// σ evaluations diverted to the hash probe (size-mismatched pairs).
    SigmaPathProbe,
    /// σ evaluations decided through a hub bitmap (word-wise AND or
    /// bit-test + weight gather).
    SigmaPathBitmap,
    /// σ evaluations through a batched dense-row gather (range queries and
    /// the index build's row pass).
    SigmaPathBatched,
    /// σ decisions emitted directly from a MinHash sketch estimate (approx
    /// mode only; stays zero in assist mode, keeping the `sigma_path_*`
    /// partition of `sigma_evals` exact).
    SigmaPathSketch,
    /// Assist-mode confirmations: exact decisions routed by a confident
    /// sketch estimate whose exact verdict agreed with the sketch's side.
    SketchConfirms,
    /// Requests admitted and answered by the serving daemon (all opcodes).
    ServeRequests,
    /// Index re-cluster requests answered by the daemon.
    ServeQueries,
    /// Per-vertex membership/role lookups answered by the daemon.
    ServeLookups,
    /// Anytime full runs executed by the daemon.
    ServeRuns,
    /// Requests rejected with a typed `Overloaded` response (admission
    /// queue full).
    ServeOverloaded,
    /// Malformed frames / undecodable requests the daemon rejected.
    ServeProtocolErrors,
    /// Requests the load generator sent.
    LoadSent,
    /// Ok responses the load generator received.
    LoadOk,
    /// Typed `Overloaded` rejections the load generator received.
    LoadOverloaded,
    /// Transport or protocol errors the load generator observed.
    LoadErrors,
    /// Edge mutations (insert / remove / reweight) the dynamic update
    /// subsystem applied to its resident graph.
    DynUpdatesApplied,
    /// σ re-evaluations triggered by update batches (edges incident to a
    /// touched neighborhood). Each is also counted in `sigma_evals` and
    /// `sigma_path_merge`, so the `sigma_path_*` partition stays exact.
    DynSigmaReevals,
    /// Neighbor-order (and matching core-order) repairs applied in place to
    /// the similarity index — one per vertex whose order changed.
    DynIndexRepairs,
    /// Replica subscriptions a primary accepted (back-fill + live stream).
    ReplSubscribes,
    /// ASUL entries a primary shipped to replicas (per entry, per replica).
    ReplEntriesShipped,
    /// Replicated ASUL entries a replica applied to its resident engine.
    ReplEntriesApplied,
    /// Connections the daemon closed for exceeding the per-connection
    /// read/write timeout (`--conn-timeout-ms`).
    ServeTimeouts,
    /// Reconnects the load generator's client performed after a refused,
    /// reset, or timed-out connection (counted separately from request
    /// errors).
    LoadReconnects,
}

impl Counter {
    /// All counters, in storage order.
    pub const ALL: [Counter; 48] = [
        Counter::SigmaEvals,
        Counter::Lemma5Filtered,
        Counter::SharedEvals,
        Counter::EdgeCacheHits,
        Counter::EdgeCacheMisses,
        Counter::EarlyAccepts,
        Counter::EarlyRejects,
        Counter::SupernodesCreated,
        Counter::DegreeShortcutNoise,
        Counter::Step2Pruned,
        Counter::Step3Pruned,
        Counter::BorderAdoptions,
        Counter::CoreChecks,
        Counter::UnionsStep1,
        Counter::UnionsStep2,
        Counter::UnionsStep3,
        Counter::IndexSigmaEvals,
        Counter::IndexQueries,
        Counter::IndexCoresFound,
        Counter::IndexBordersAttached,
        Counter::CancelTrips,
        Counter::CheckpointsWritten,
        Counter::ResumeLoads,
        Counter::FaultsInjected,
        Counter::SigmaPathMerge,
        Counter::SigmaPathProbe,
        Counter::SigmaPathBitmap,
        Counter::SigmaPathBatched,
        Counter::SigmaPathSketch,
        Counter::SketchConfirms,
        Counter::ServeRequests,
        Counter::ServeQueries,
        Counter::ServeLookups,
        Counter::ServeRuns,
        Counter::ServeOverloaded,
        Counter::ServeProtocolErrors,
        Counter::LoadSent,
        Counter::LoadOk,
        Counter::LoadOverloaded,
        Counter::LoadErrors,
        Counter::DynUpdatesApplied,
        Counter::DynSigmaReevals,
        Counter::DynIndexRepairs,
        Counter::ReplSubscribes,
        Counter::ReplEntriesShipped,
        Counter::ReplEntriesApplied,
        Counter::ServeTimeouts,
        Counter::LoadReconnects,
    ];

    /// Number of counters (array sizing).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SigmaEvals => "sigma_evals",
            Counter::Lemma5Filtered => "lemma5_filtered",
            Counter::SharedEvals => "shared_evals",
            Counter::EdgeCacheHits => "edge_cache_hits",
            Counter::EdgeCacheMisses => "edge_cache_misses",
            Counter::EarlyAccepts => "early_accepts",
            Counter::EarlyRejects => "early_rejects",
            Counter::SupernodesCreated => "supernodes_created",
            Counter::DegreeShortcutNoise => "degree_shortcut_noise",
            Counter::Step2Pruned => "step2_pruned",
            Counter::Step3Pruned => "step3_pruned",
            Counter::BorderAdoptions => "border_adoptions",
            Counter::CoreChecks => "core_checks",
            Counter::UnionsStep1 => "unions_step1",
            Counter::UnionsStep2 => "unions_step2",
            Counter::UnionsStep3 => "unions_step3",
            Counter::IndexSigmaEvals => "index_sigma_evals",
            Counter::IndexQueries => "index_queries",
            Counter::IndexCoresFound => "index_cores_found",
            Counter::IndexBordersAttached => "index_borders_attached",
            Counter::CancelTrips => "cancel_trips",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::ResumeLoads => "resume_loads",
            Counter::FaultsInjected => "faults_injected",
            Counter::SigmaPathMerge => "sigma_path_merge",
            Counter::SigmaPathProbe => "sigma_path_probe",
            Counter::SigmaPathBitmap => "sigma_path_bitmap",
            Counter::SigmaPathBatched => "sigma_path_batched",
            Counter::SigmaPathSketch => "sigma_path_sketch",
            Counter::SketchConfirms => "sketch_confirms",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeQueries => "serve_queries",
            Counter::ServeLookups => "serve_lookups",
            Counter::ServeRuns => "serve_runs",
            Counter::ServeOverloaded => "serve_overloaded",
            Counter::ServeProtocolErrors => "serve_protocol_errors",
            Counter::LoadSent => "load_sent",
            Counter::LoadOk => "load_ok",
            Counter::LoadOverloaded => "load_overloaded",
            Counter::LoadErrors => "load_errors",
            Counter::DynUpdatesApplied => "dyn_updates_applied",
            Counter::DynSigmaReevals => "dyn_sigma_reevals",
            Counter::DynIndexRepairs => "dyn_index_repairs",
            Counter::ReplSubscribes => "repl_subscribes",
            Counter::ReplEntriesShipped => "repl_entries_shipped",
            Counter::ReplEntriesApplied => "repl_entries_applied",
            Counter::ServeTimeouts => "serve_timeouts",
            Counter::LoadReconnects => "load_reconnects",
        }
    }
}

/// One anytime snapshot, taken at a block boundary of the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSnapshot {
    /// Global block-iteration index (0-based, strictly increasing).
    pub index: u64,
    /// Phase the block belonged to (`"summarize"`, `"merge_strong"`, …; see
    /// `validate::KNOWN_PHASES`).
    pub phase: &'static str,
    /// Vertices handled in this block.
    pub block_len: u64,
    /// Wall time of this block iteration, nanoseconds.
    pub elapsed_ns: u64,
    /// Cumulative driver wall time at the boundary, nanoseconds.
    pub cumulative_ns: u64,
    /// Vertex-state histogram over the 7 states, discriminant order.
    /// Sums to |V| at every boundary.
    pub states: [u64; NUM_VERTEX_STATES],
    /// Super-nodes created so far.
    pub supernodes: u64,
    /// Distinct DSU components among the super-nodes.
    pub components: u64,
    /// Successful unions so far (all steps).
    pub unions: u64,
}

/// Utilization of one participant slot of the worker pool. Slot 0 is always
/// the submitting thread; slots `1..` are pool workers (assignment to OS
/// threads varies per job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotUtilization {
    pub slot: u32,
    /// Time spent executing job bodies, nanoseconds.
    pub busy_ns: u64,
    /// Chunks dynamically claimed from the shared cursor.
    pub chunks: u64,
    /// Jobs this slot participated in.
    pub jobs: u64,
}

/// Snapshot of the persistent worker pool's utilization counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolUtilization {
    /// Parallel regions dispatched.
    pub jobs: u64,
    /// Per-slot busy/claim counters (only slots that ever participated).
    pub slots: Vec<SlotUtilization>,
    /// Per spawned worker: time parked between jobs, nanoseconds.
    pub worker_parked_ns: Vec<u64>,
}

impl PoolUtilization {
    /// Counter-wise `self - base`, for scoping a process-global pool's
    /// counters to one run. Saturates (a slot absent in `base` is new).
    pub fn delta_since(&self, base: &PoolUtilization) -> PoolUtilization {
        let base_slot = |slot: u32| {
            base.slots
                .iter()
                .find(|s| s.slot == slot)
                .copied()
                .unwrap_or_default()
        };
        PoolUtilization {
            jobs: self.jobs.saturating_sub(base.jobs),
            slots: self
                .slots
                .iter()
                .map(|s| {
                    let b = base_slot(s.slot);
                    SlotUtilization {
                        slot: s.slot,
                        busy_ns: s.busy_ns.saturating_sub(b.busy_ns),
                        chunks: s.chunks.saturating_sub(b.chunks),
                        jobs: s.jobs.saturating_sub(b.jobs),
                    }
                })
                .collect(),
            worker_parked_ns: self
                .worker_parked_ns
                .iter()
                .enumerate()
                .map(|(i, &ns)| {
                    ns.saturating_sub(base.worker_parked_ns.get(i).copied().unwrap_or(0))
                })
                .collect(),
        }
    }
}

/// Aggregated wall time of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTotal {
    pub name: &'static str,
    pub total_ns: u64,
    pub count: u64,
}

/// The recording surface every instrumented component talks to.
///
/// Implemented by [`ShardedRecorder`] (records), [`NoopRecorder`] (drops
/// everything) and [`Telemetry`] (dispatches to one or the other behind a
/// single branch).
pub trait Recorder {
    /// Whether records are kept. Instrumentation may use this to skip
    /// *computing* expensive payloads (e.g. a state histogram), not just
    /// recording them.
    fn is_enabled(&self) -> bool;
    /// Adds `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);
    /// Records one completed wall-time interval under `name`.
    fn record_span(&self, name: &'static str, ns: u64);
    /// Records one anytime block snapshot.
    fn record_block(&self, snapshot: BlockSnapshot);
    /// Publishes the run's pool-utilization delta (last write wins).
    fn set_pool(&self, pool: PoolUtilization);
}

/// A recorder that drops everything (the explicit form of a disabled
/// [`Telemetry`] handle).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn add(&self, _: Counter, _: u64) {}
    fn record_span(&self, _: &'static str, _: u64) {}
    fn record_block(&self, _: BlockSnapshot) {}
    fn set_pool(&self, _: PoolUtilization) {}
}

/// Shards are padded to two cache lines so two workers bumping counters
/// never write-share a line (64-byte lines; 128 covers adjacent-line
/// prefetcher pairs).
#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Number of counter shards. Threads map onto shards round-robin; 16 shards
/// keep contention negligible up to far more workers than the pool runs.
const NUM_SHARDS: usize = 16;

thread_local! {
    /// This thread's shard index, assigned once, round-robin.
    static SHARD: usize = {
        static NEXT: OnceLock<AtomicUsize> = OnceLock::new();
        NEXT.get_or_init(|| AtomicUsize::new(0))
            .fetch_add(1, Ordering::Relaxed)
            % NUM_SHARDS
    };
}

/// The recording implementation: lock-free sharded counters, mutex-guarded
/// span and snapshot logs (both are off the per-vertex hot path — spans end
/// per phase, snapshots per block).
pub struct ShardedRecorder {
    shards: Box<[Shard]>,
    spans: Mutex<Vec<(&'static str, u64)>>,
    snapshots: Mutex<Vec<BlockSnapshot>>,
    pool: Mutex<Option<PoolUtilization>>,
}

impl Default for ShardedRecorder {
    fn default() -> Self {
        ShardedRecorder::new()
    }
}

impl ShardedRecorder {
    /// Fresh recorder with all counters at zero.
    pub fn new() -> Self {
        ShardedRecorder {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            spans: Mutex::new(Vec::new()),
            snapshots: Mutex::new(Vec::new()),
            pool: Mutex::new(None),
        }
    }

    /// Aggregates all shards into one total per counter.
    pub fn counter_totals(&self) -> [u64; Counter::COUNT] {
        let mut totals = [0u64; Counter::COUNT];
        for shard in self.shards.iter() {
            for (t, c) in totals.iter_mut().zip(&shard.counters) {
                *t += c.load(Ordering::Relaxed);
            }
        }
        totals
    }

    /// Drains the state into an immutable [`Report`].
    pub fn report(&self) -> Report {
        let raw_spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans: Vec<SpanTotal> = Vec::new();
        for &(name, ns) in raw_spans.iter() {
            match spans.iter_mut().find(|s| s.name == name) {
                Some(s) => {
                    s.total_ns += ns;
                    s.count += 1;
                }
                None => spans.push(SpanTotal {
                    name,
                    total_ns: ns,
                    count: 1,
                }),
            }
        }
        Report {
            counters: self.counter_totals(),
            spans,
            snapshots: self
                .snapshots
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            pool: self.pool.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

impl Recorder for ShardedRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        let shard = SHARD.with(|s| *s);
        self.shards[shard].counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn record_span(&self, name: &'static str, ns: u64) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((name, ns));
    }

    fn record_block(&self, snapshot: BlockSnapshot) {
        self.snapshots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(snapshot);
    }

    fn set_pool(&self, pool: PoolUtilization) {
        *self.pool.lock().unwrap_or_else(|e| e.into_inner()) = Some(pool);
    }
}

/// The cheap-to-clone telemetry handle threaded through the pipeline.
///
/// [`Telemetry::disabled`] (also [`Default`]) carries no recorder: every
/// method is one `Option` branch and returns immediately, so instrumented
/// code needs no `cfg` or generics to be free when tracing is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<ShardedRecorder>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A recording handle.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(ShardedRecorder::new())),
        }
    }

    /// A no-op handle (the default).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Starts a wall-time span recorded (under `name`) when the guard
    /// drops. On a disabled handle the guard holds no timestamp and drops
    /// for free.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            telemetry: self,
            name,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Builds the report, or `None` on a disabled handle.
    pub fn report(&self) -> Option<Report> {
        self.inner.as_ref().map(|r| r.report())
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        if let Some(r) = &self.inner {
            r.add(counter, delta);
        }
    }

    #[inline]
    fn record_span(&self, name: &'static str, ns: u64) {
        if let Some(r) = &self.inner {
            r.record_span(name, ns);
        }
    }

    #[inline]
    fn record_block(&self, snapshot: BlockSnapshot) {
        if let Some(r) = &self.inner {
            r.record_block(snapshot);
        }
    }

    fn set_pool(&self, pool: PoolUtilization) {
        if let Some(r) = &self.inner {
            r.set_pool(pool);
        }
    }
}

/// RAII guard of [`Telemetry::span`].
pub struct SpanGuard<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.telemetry
                .record_span(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// A metadata value attached to a trace (the `meta` JSON object).
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    Str(String),
    U64(u64),
    F64(f64),
}

impl From<&str> for MetaValue {
    fn from(s: &str) -> Self {
        MetaValue::Str(s.to_string())
    }
}
impl From<String> for MetaValue {
    fn from(s: String) -> Self {
        MetaValue::Str(s)
    }
}
impl From<u64> for MetaValue {
    fn from(v: u64) -> Self {
        MetaValue::U64(v)
    }
}
impl From<usize> for MetaValue {
    fn from(v: usize) -> Self {
        MetaValue::U64(v as u64)
    }
}
impl From<f64> for MetaValue {
    fn from(v: f64) -> Self {
        MetaValue::F64(v)
    }
}

/// Everything a finished run recorded, ready for serialization.
#[derive(Debug, Clone)]
pub struct Report {
    /// Totals per [`Counter`], indexed by discriminant.
    pub counters: [u64; Counter::COUNT],
    /// Aggregated spans, first-recorded first.
    pub spans: Vec<SpanTotal>,
    /// Anytime block snapshots in recording order.
    pub snapshots: Vec<BlockSnapshot>,
    /// Pool utilization delta, when published.
    pub pool: Option<PoolUtilization>,
}

impl Report {
    /// Total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Aggregated total of one span name, if it was recorded.
    pub fn span_total(&self, name: &str) -> Option<SpanTotal> {
        self.spans.iter().find(|s| s.name == name).copied()
    }

    /// Serializes the trace-JSON document (schema version 1): `meta` first,
    /// then `spans`, `counters`, `pool` and `snapshots`. The output is the
    /// contract checked by [`validate::validate_trace`].
    pub fn to_json(&self, meta: &[(&str, MetaValue)]) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.snapshots.len());
        out.push_str("{\n  \"version\": 1,\n  \"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, k);
            out.push_str(": ");
            match v {
                MetaValue::Str(s) => push_json_string(&mut out, s),
                MetaValue::U64(n) => out.push_str(&n.to_string()),
                MetaValue::F64(x) => push_json_f64(&mut out, *x),
            }
        }
        out.push_str("\n  },\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"name\": ");
            push_json_string(&mut out, s.name);
            out.push_str(&format!(
                ", \"total_ns\": {}, \"count\": {} }}",
                s.total_ns, s.count
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, c.name());
            out.push_str(&format!(": {}", self.counters[*c as usize]));
        }
        out.push_str("\n  },\n  \"pool\": ");
        match &self.pool {
            None => out.push_str("null"),
            Some(p) => {
                out.push_str(&format!("{{\n    \"jobs\": {},\n    \"slots\": [", p.jobs));
                for (i, s) in p.slots.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n      {{ \"slot\": {}, \"busy_ns\": {}, \"chunks\": {}, \"jobs\": {} }}",
                        s.slot, s.busy_ns, s.chunks, s.jobs
                    ));
                }
                out.push_str("\n    ],\n    \"worker_parked_ns\": [");
                for (i, ns) in p.worker_parked_ns.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&ns.to_string());
                }
                out.push_str("]\n  }");
            }
        }
        out.push_str(",\n  \"snapshots\": [");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"index\": ");
            out.push_str(&s.index.to_string());
            out.push_str(", \"phase\": ");
            push_json_string(&mut out, s.phase);
            out.push_str(&format!(
                ", \"block_len\": {}, \"elapsed_ns\": {}, \"cumulative_ns\": {}, \"states\": [",
                s.block_len, s.elapsed_ns, s.cumulative_ns
            ));
            for (j, c) in s.states.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!(
                "], \"supernodes\": {}, \"components\": {}, \"unions\": {} }}",
                s.supernodes, s.components, s.unions
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite f64 (JSON has no NaN/Inf; those become 0).
pub fn push_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reports_none() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add(Counter::SigmaEvals, 10);
        t.record_block(BlockSnapshot {
            index: 0,
            phase: "summarize",
            block_len: 1,
            elapsed_ns: 1,
            cumulative_ns: 1,
            states: [0; NUM_VERTEX_STATES],
            supernodes: 0,
            components: 0,
            unions: 0,
        });
        {
            let _g = t.span("noop");
        }
        assert!(t.report().is_none());
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.add(Counter::SigmaEvals, 1);
                        t.add(Counter::EdgeCacheHits, 2);
                    }
                });
            }
        });
        let r = t.report().unwrap();
        assert_eq!(r.counter(Counter::SigmaEvals), 8000);
        assert_eq!(r.counter(Counter::EdgeCacheHits), 16000);
        assert_eq!(r.counter(Counter::SharedEvals), 0);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let t = Telemetry::enabled();
        t.record_span("step1", 100);
        t.record_span("step2", 50);
        t.record_span("step1", 25);
        let r = t.report().unwrap();
        let s1 = r.span_total("step1").unwrap();
        assert_eq!((s1.total_ns, s1.count), (125, 2));
        assert_eq!(r.span_total("step2").unwrap().count, 1);
        assert!(r.span_total("absent").is_none());
    }

    #[test]
    fn span_guard_measures_time() {
        let t = Telemetry::enabled();
        {
            let _g = t.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = t.report().unwrap().span_total("sleepy").unwrap();
        assert!(s.total_ns >= 1_000_000, "span recorded {} ns", s.total_ns);
    }

    #[test]
    fn pool_delta_subtracts_baseline() {
        let base = PoolUtilization {
            jobs: 5,
            slots: vec![SlotUtilization {
                slot: 0,
                busy_ns: 100,
                chunks: 10,
                jobs: 5,
            }],
            worker_parked_ns: vec![50],
        };
        let now = PoolUtilization {
            jobs: 8,
            slots: vec![
                SlotUtilization {
                    slot: 0,
                    busy_ns: 180,
                    chunks: 16,
                    jobs: 8,
                },
                SlotUtilization {
                    slot: 1,
                    busy_ns: 40,
                    chunks: 4,
                    jobs: 3,
                },
            ],
            worker_parked_ns: vec![90, 20],
        };
        let d = now.delta_since(&base);
        assert_eq!(d.jobs, 3);
        assert_eq!(d.slots[0].busy_ns, 80);
        assert_eq!(d.slots[0].chunks, 6);
        assert_eq!(d.slots[1].busy_ns, 40, "new slot passes through");
        assert_eq!(d.worker_parked_ns, vec![40, 20]);
    }

    #[test]
    fn report_json_round_trips_through_own_parser() {
        let t = Telemetry::enabled();
        t.add(Counter::SigmaEvals, 42);
        t.record_span("step1", 1234);
        t.record_block(BlockSnapshot {
            index: 0,
            phase: "summarize",
            block_len: 32,
            elapsed_ns: 10,
            cumulative_ns: 10,
            states: [93, 0, 0, 0, 0, 0, 7],
            supernodes: 7,
            components: 3,
            unions: 4,
        });
        t.set_pool(PoolUtilization {
            jobs: 2,
            slots: vec![SlotUtilization {
                slot: 0,
                busy_ns: 5,
                chunks: 2,
                jobs: 2,
            }],
            worker_parked_ns: vec![7],
        });
        let r = t.report().unwrap();
        let text = r.to_json(&[
            ("algo", MetaValue::from("anyscan")),
            ("vertices", MetaValue::from(100u64)),
            ("eps", MetaValue::from(0.5)),
            ("quote\"key", MetaValue::from("line\nbreak")),
        ]);
        let v = json::JsonValue::parse(&text).expect("self-emitted JSON parses");
        assert_eq!(v.get("version").and_then(json::JsonValue::as_u64), Some(1));
        let meta = v.get("meta").unwrap();
        assert_eq!(
            meta.get("algo").and_then(json::JsonValue::as_str),
            Some("anyscan")
        );
        assert_eq!(
            meta.get("quote\"key").and_then(json::JsonValue::as_str),
            Some("line\nbreak")
        );
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters
                .get("sigma_evals")
                .and_then(json::JsonValue::as_u64),
            Some(42)
        );
        let snaps = v
            .get("snapshots")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(snaps.len(), 1);
        let states = snaps[0]
            .get("states")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(states.len(), NUM_VERTEX_STATES);
        let total: u64 = states.iter().filter_map(json::JsonValue::as_u64).sum();
        assert_eq!(total, 100);
        // And the full document passes the schema gate used by CI.
        validate::validate_trace(&v).expect("schema validates");
    }
}
