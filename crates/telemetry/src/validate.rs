//! Schema validation for `--trace-json` output.
//!
//! The trace format is versioned (currently `"version": 1`); this module
//! checks the structural invariants that CI's `telemetry-smoke` job gates
//! on, plus the semantic ones that make a trace trustworthy: state
//! histograms sum to |V|, cumulative time is monotone, phases are drawn
//! from the known anytime phase set.

use crate::json::JsonValue;
use crate::{Counter, NUM_VERTEX_STATES};

/// Phases a `BlockSnapshot` may legally carry. Mirrors the driver's
/// `Phase` enum plus the explore/hierarchy entry points.
pub const KNOWN_PHASES: &[&str] = &[
    "summarize",
    "merge_strong",
    "merge_weak",
    "borders",
    "resolve_roles",
    "explore",
    "hierarchy",
    "incremental",
];

/// Aggregate facts pulled out of a valid trace, for human display.
#[derive(Debug, Default, Clone)]
pub struct TraceSummary {
    pub spans: usize,
    pub snapshots: usize,
    pub total_span_ns: u64,
    pub sigma_evals: u64,
    pub cache_hits: u64,
    pub pool_slots: usize,
    pub vertices: Option<u64>,
}

fn require<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing required key {key:?}"))
}

fn require_u64(v: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    require(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: {key:?} must be a non-negative integer"))
}

/// Validates a parsed trace document against schema version 1.
///
/// Returns a summary of the trace on success, or a message describing the
/// first violation found.
pub fn validate_trace(doc: &JsonValue) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();

    if doc.as_object().is_none() {
        return Err("trace: document root must be an object".into());
    }
    let version = require_u64(doc, "version", "trace")?;
    if version != 1 {
        return Err(format!("trace: unsupported schema version {version}"));
    }

    // meta: object of scalars; vertices (when present) anchors the
    // histogram-sum check below.
    let meta = require(doc, "meta", "trace")?;
    let meta_fields = meta
        .as_object()
        .ok_or_else(|| "trace: \"meta\" must be an object".to_string())?;
    for (k, v) in meta_fields {
        match v {
            JsonValue::String(_) | JsonValue::Number(_) | JsonValue::Bool(_) => {}
            _ => return Err(format!("meta: {k:?} must be a scalar")),
        }
    }
    summary.vertices = meta.get("vertices").and_then(JsonValue::as_u64);

    // spans: array of {name, total_ns, count}, names unique.
    let spans = require(doc, "spans", "trace")?
        .as_array()
        .ok_or_else(|| "trace: \"spans\" must be an array".to_string())?;
    let mut span_names: Vec<&str> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let ctx = format!("spans[{i}]");
        let name = require(s, "name", &ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"name\" must be a string"))?;
        if name.is_empty() {
            return Err(format!("{ctx}: span name is empty"));
        }
        if span_names.contains(&name) {
            return Err(format!("{ctx}: duplicate span name {name:?}"));
        }
        span_names.push(name);
        summary.total_span_ns += require_u64(s, "total_ns", &ctx)?;
        let count = require_u64(s, "count", &ctx)?;
        if count == 0 {
            return Err(format!("{ctx}: span {name:?} has zero count"));
        }
    }
    summary.spans = spans.len();

    // counters: object holding every known counter exactly once.
    let counters = require(doc, "counters", "trace")?;
    let counter_fields = counters
        .as_object()
        .ok_or_else(|| "trace: \"counters\" must be an object".to_string())?;
    for c in Counter::ALL {
        let v = counters
            .get(c.name())
            .ok_or_else(|| format!("counters: missing {:?}", c.name()))?;
        v.as_u64()
            .ok_or_else(|| format!("counters: {:?} must be a non-negative integer", c.name()))?;
    }
    for (k, _) in counter_fields {
        if !Counter::ALL.iter().any(|c| c.name() == k) {
            return Err(format!("counters: unknown counter {k:?}"));
        }
    }
    summary.sigma_evals = counters
        .get(Counter::SigmaEvals.name())
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    summary.cache_hits = counters
        .get(Counter::EdgeCacheHits.name())
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);

    // pool: null, or {jobs, slots: [{slot,busy_ns,chunks,jobs}], worker_parked_ns}.
    let pool = require(doc, "pool", "trace")?;
    match pool {
        JsonValue::Null => {}
        JsonValue::Object(_) => {
            require_u64(pool, "jobs", "pool")?;
            let slots = require(pool, "slots", "pool")?
                .as_array()
                .ok_or_else(|| "pool: \"slots\" must be an array".to_string())?;
            for (i, s) in slots.iter().enumerate() {
                let ctx = format!("pool.slots[{i}]");
                require_u64(s, "slot", &ctx)?;
                require_u64(s, "busy_ns", &ctx)?;
                require_u64(s, "chunks", &ctx)?;
                require_u64(s, "jobs", &ctx)?;
            }
            let parked = require(pool, "worker_parked_ns", "pool")?
                .as_array()
                .ok_or_else(|| "pool: \"worker_parked_ns\" must be an array".to_string())?;
            for (i, p) in parked.iter().enumerate() {
                p.as_u64().ok_or_else(|| {
                    format!("pool.worker_parked_ns[{i}] must be a non-negative integer")
                })?;
            }
            summary.pool_slots = slots.len();
        }
        _ => return Err("trace: \"pool\" must be an object or null".into()),
    }

    // snapshots: per-block anytime series. Indices strictly increase,
    // cumulative_ns is monotone, state histograms are 7-wide and (when
    // meta.vertices is present) sum to |V|.
    let snapshots = require(doc, "snapshots", "trace")?
        .as_array()
        .ok_or_else(|| "trace: \"snapshots\" must be an array".to_string())?;
    let mut last_index: Option<u64> = None;
    let mut last_cumulative: u64 = 0;
    for (i, snap) in snapshots.iter().enumerate() {
        let ctx = format!("snapshots[{i}]");
        let index = require_u64(snap, "index", &ctx)?;
        if let Some(prev) = last_index {
            if index <= prev {
                return Err(format!("{ctx}: index {index} not after previous {prev}"));
            }
        }
        last_index = Some(index);

        let phase = require(snap, "phase", &ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"phase\" must be a string"))?;
        if !KNOWN_PHASES.contains(&phase) {
            return Err(format!("{ctx}: unknown phase {phase:?}"));
        }

        require_u64(snap, "block_len", &ctx)?;
        require_u64(snap, "elapsed_ns", &ctx)?;
        let cumulative = require_u64(snap, "cumulative_ns", &ctx)?;
        if cumulative < last_cumulative {
            return Err(format!(
                "{ctx}: cumulative_ns {cumulative} went backwards (prev {last_cumulative})"
            ));
        }
        last_cumulative = cumulative;

        let states = require(snap, "states", &ctx)?
            .as_array()
            .ok_or_else(|| format!("{ctx}: \"states\" must be an array"))?;
        if states.len() != NUM_VERTEX_STATES {
            return Err(format!(
                "{ctx}: states has {} entries, expected {NUM_VERTEX_STATES}",
                states.len()
            ));
        }
        let mut sum: u64 = 0;
        for (j, s) in states.iter().enumerate() {
            sum += s
                .as_u64()
                .ok_or_else(|| format!("{ctx}: states[{j}] must be a non-negative integer"))?;
        }
        if let Some(n) = summary.vertices {
            if sum != n {
                return Err(format!(
                    "{ctx}: state histogram sums to {sum}, expected |V| = {n}"
                ));
            }
        }

        require_u64(snap, "supernodes", &ctx)?;
        require_u64(snap, "components", &ctx)?;
        require_u64(snap, "unions", &ctx)?;
    }
    summary.snapshots = snapshots.len();

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaValue, Report};

    fn valid_report_json() -> String {
        let rec = crate::ShardedRecorder::new();
        use crate::Recorder;
        rec.add(Counter::SigmaEvals, 10);
        rec.record_span("step1", 500);
        rec.record_block(crate::BlockSnapshot {
            index: 0,
            phase: "summarize",
            block_len: 4,
            elapsed_ns: 100,
            cumulative_ns: 100,
            states: [2, 0, 0, 0, 0, 0, 2],
            supernodes: 1,
            components: 1,
            unions: 0,
        });
        let report: Report = rec.report();
        report.to_json(&[("vertices", MetaValue::from(4u64)), ("tool", "test".into())])
    }

    #[test]
    fn accepts_generated_trace() {
        let doc = JsonValue::parse(&valid_report_json()).unwrap();
        let summary = validate_trace(&doc).unwrap();
        assert_eq!(summary.snapshots, 1);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.sigma_evals, 10);
        assert_eq!(summary.vertices, Some(4));
    }

    #[test]
    fn rejects_wrong_version() {
        let doc =
            JsonValue::parse(&valid_report_json().replace("\"version\": 1", "\"version\": 2"))
                .unwrap();
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn rejects_histogram_not_summing_to_vertices() {
        let text = valid_report_json().replace("[2, 0, 0, 0, 0, 0, 2]", "[2, 0, 0, 0, 0, 0, 1]");
        let doc = JsonValue::parse(&text).unwrap();
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("sums to 3"), "{err}");
    }

    #[test]
    fn rejects_unknown_phase() {
        let text = valid_report_json().replace("\"phase\": \"summarize\"", "\"phase\": \"warp\"");
        let doc = JsonValue::parse(&text).unwrap();
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
    }

    #[test]
    fn rejects_missing_counter() {
        let text = valid_report_json().replace("\"sigma_evals\"", "\"sigma_evils\"");
        let doc = JsonValue::parse(&text).unwrap();
        let err = validate_trace(&doc).unwrap_err();
        assert!(
            err.contains("sigma_evals") || err.contains("sigma_evils"),
            "{err}"
        );
    }
}
