//! Dynamic-scheduled shared-memory parallelism.
//!
//! The paper parallelizes each block phase of anySCAN with
//! `#pragma omp parallel for schedule(dynamic)` (Fig. 4): workers repeatedly
//! claim small chunks of the iteration space from a shared counter, which
//! load-balances the wildly varying neighborhood sizes of real graphs. This
//! crate reimplements exactly that primitive on crossbeam scoped threads:
//!
//! * [`parallel_for_dynamic`] — run a body over `0..n` in dynamically
//!   claimed chunks;
//! * [`parallel_map_dynamic`] — same, collecting one output per index into a
//!   `Vec<T>` without locks (each claimed chunk owns a disjoint slice of the
//!   output);
//! * [`parallel_reduce_dynamic`] — same, folding into one accumulator per
//!   worker, returned for the caller to merge.
//!
//! With `threads <= 1` every function degrades to a plain sequential loop
//! with zero synchronization, so single-thread measurements of the parallel
//! driver are honest (the paper notes its 1-thread and sequential versions
//! coincide).
//!
//! Threads are spawned per call (scoped, borrowing the closure environment);
//! at the paper's block sizes (α = β = 8192…32768) the spawn cost is
//! amortized to noise, and the `parallel_for` Criterion bench quantifies it.

use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of indices a worker claims at a time. OpenMP's
/// `schedule(dynamic)` default chunk is 1; we default a little coarser to
/// keep counter traffic negligible while still balancing skewed work.
pub const DEFAULT_CHUNK: usize = 16;

/// Returns the number of worker threads to actually use for `requested`
/// threads over `n` items (never more threads than items, at least 1).
pub fn effective_threads(requested: usize, n: usize) -> usize {
    requested.max(1).min(n.max(1))
}

/// Runs `body` over every chunk of `0..n`, claimed dynamically by
/// `threads` workers. `body` receives half-open index ranges.
pub fn parallel_for_dynamic<F>(threads: usize, n: usize, chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let chunk = chunk.max(1);
    let threads = effective_threads(threads, n);
    if n == 0 {
        return;
    }
    if threads == 1 {
        body(0..n);
        return;
    }
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                body(start..end);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Maps `f` over `0..n` with dynamic scheduling, returning the outputs in
/// index order. Lock-free: each claimed chunk writes a disjoint slice of the
/// output buffer.
pub fn parallel_map_dynamic<T, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialization; every slot is written
    // exactly once below before the conversion (chunk claims partition 0..n).
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let base = SendPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let chunk = chunk.max(1);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let base = &base;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        // SAFETY: `i` is claimed by exactly one worker, so
                        // this write is unaliased.
                        unsafe {
                            base.0.add(i).write(MaybeUninit::new(f(i)));
                        }
                    }
                }
            });
        }
    })
    .expect("worker thread panicked");
    // SAFETY: all n slots were initialized (the chunk claims cover 0..n and
    // scope join guarantees every worker finished).
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut T, n, out.capacity())
    }
}

/// Folds `0..n` into per-worker accumulators with dynamic scheduling and
/// returns them (callers merge; order is unspecified).
pub fn parallel_reduce_dynamic<A, I, F>(
    threads: usize,
    n: usize,
    chunk: usize,
    init: I,
    body: F,
) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    let threads = effective_threads(threads, n);
    if threads == 1 {
        let mut acc = init();
        for i in 0..n {
            body(&mut acc, i);
        }
        return vec![acc];
    }
    let cursor = AtomicUsize::new(0);
    let chunk = chunk.max(1);
    let mut accs: Vec<A> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|_| {
                    let mut acc = init();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for i in start..end {
                            body(&mut acc, i);
                        }
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            accs.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("scope failed");
    accs
}

/// A raw pointer that asserts cross-thread shareability for the disjoint
/// writes in [`parallel_map_dynamic`].
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used for writes to indices each worker claims
// exclusively via the shared atomic cursor.
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn effective_thread_clamping() {
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn for_covers_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            for n in [0usize, 1, 5, 1000, 1001] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for_dynamic(threads, n, 3, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1usize, 2, 4] {
            for n in [0usize, 1, 17, 4096] {
                let out = parallel_map_dynamic(threads, n, 5, |i| i * i);
                assert_eq!(out.len(), n);
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, i * i);
                }
            }
        }
    }

    #[test]
    fn map_handles_non_copy_types_and_drops() {
        let out = parallel_map_dynamic(4, 100, 7, |i| vec![i; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
        drop(out); // must not double-free
    }

    #[test]
    fn reduce_sums_correctly() {
        for threads in [1usize, 2, 4] {
            let accs =
                parallel_reduce_dynamic(threads, 1000, 8, || 0u64, |acc, i| *acc += i as u64);
            let total: u64 = accs.into_iter().sum();
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn chunks_are_claimed_incrementally() {
        let claims = AtomicU64::new(0);
        parallel_for_dynamic(4, 1024, 4, |range| {
            claims.fetch_add(1, Ordering::Relaxed);
            for i in range {
                std::hint::black_box(i);
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn single_thread_runs_inline() {
        // With 1 thread the body must run on the calling thread (no spawn).
        let caller = std::thread::current().id();
        parallel_for_dynamic(1, 10, 2, |_| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }
}
