//! Dynamic-scheduled shared-memory parallelism on a persistent worker pool.
//!
//! The paper parallelizes each block phase of anySCAN with
//! `#pragma omp parallel for schedule(dynamic)` (Fig. 4): workers repeatedly
//! claim chunks of the iteration space from a shared counter, which
//! load-balances the wildly varying neighborhood sizes of real graphs. This
//! crate reimplements that primitive on a **process-wide pool of long-lived
//! parked workers** (like an OpenMP runtime's thread team), so the per-block
//! cost of going parallel is a mutex hand-off instead of `threads - 1` OS
//! thread spawns. anySCAN runs hundreds of α/β blocks per clustering; with
//! per-call spawning the spawn cost recurs on every one of them.
//!
//! * [`parallel_for_dynamic`] — run a body over `0..n` in fixed-size
//!   dynamically claimed chunks (the literal OpenMP
//!   `schedule(dynamic, chunk)` analogue);
//! * [`parallel_for_adaptive`] — same with guided chunk sizing: each claim
//!   takes `remaining / (2 · threads)` indices (clamped), so early chunks
//!   are large (low counter traffic) and late chunks small (load balance);
//! * [`parallel_map_dynamic`] / [`parallel_map_adaptive`] — collect one
//!   output per index into a `Vec<T>` without locks (each claimed chunk owns
//!   a disjoint slice of the output);
//! * [`parallel_map_with`] — map with a per-worker scratch value threaded
//!   through every call on that worker (at most one `init()` per worker per
//!   call site — reuses allocations such as ε-neighborhood buffers);
//! * [`parallel_reduce_dynamic`] / [`parallel_reduce_adaptive`] — fold into
//!   one accumulator per worker, returned for the caller to merge.
//!
//! With `threads <= 1` every entry point degrades to a plain sequential loop
//! on the calling thread with zero synchronization, so single-thread
//! measurements of the parallel driver are honest (the paper notes its
//! 1-thread and sequential versions coincide).
//!
//! # Pool semantics
//!
//! The global pool ([`WorkerPool::global`]) grows on demand and parks its
//! workers on a condvar between jobs; threads are reused across calls and
//! live for the process. Jobs are serialized through the pool (one parallel
//! region at a time, as in OpenMP without nesting); a body that itself calls
//! a `parallel_*` entry point runs that nested call inline on its own thread
//! rather than deadlocking. A panic in any worker is caught, the job is
//! drained, and the panic resumes on the submitting thread — same observable
//! behavior as the scoped-thread implementation this replaces.

use std::any::Any;
use std::cell::Cell;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

pub use anyscan_telemetry::{PoolUtilization, SlotUtilization};

/// Default number of indices a worker claims at a time in the fixed-chunk
/// entry points. OpenMP's `schedule(dynamic)` default chunk is 1; we default
/// a little coarser to keep counter traffic negligible while still balancing
/// skewed work. The `*_adaptive` entry points ignore this and size chunks
/// from the remaining work instead.
pub const DEFAULT_CHUNK: usize = 16;

/// Smallest chunk the adaptive policy hands out: bounds cursor traffic on
/// the tail without hurting balance (a σ evaluation dwarfs one CAS).
pub const ADAPTIVE_MIN_CHUNK: usize = 4;

/// Largest chunk the adaptive policy hands out: bounds the imbalance any
/// single straggler chunk can cause at the start of a large job.
pub const ADAPTIVE_MAX_CHUNK: usize = 4096;

/// Hard cap on pool workers (requested thread counts clamp to this + 1).
const MAX_WORKERS: usize = 128;

/// How a job's iteration space is carved into claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Every claim takes exactly this many indices (OpenMP
    /// `schedule(dynamic, chunk)`).
    Fixed(usize),
    /// Guided sizing: each claim takes `remaining / (2 · participants)`
    /// indices, clamped to `[ADAPTIVE_MIN_CHUNK, ADAPTIVE_MAX_CHUNK]`
    /// (OpenMP `schedule(guided)` with a minimum chunk).
    Adaptive,
}

/// Returns the number of worker threads to actually use for `requested`
/// threads over `n` items (never more threads than items, at least 1).
pub fn effective_threads(requested: usize, n: usize) -> usize {
    requested.max(1).min(n.max(1)).min(MAX_WORKERS + 1)
}

thread_local! {
    /// True while this thread is executing a pool job (worker or submitter).
    /// Nested submissions from such a thread run inline instead of waiting
    /// on the (already busy) pool — OpenMP's "nested parallelism off".
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Locks ignoring poisoning: a panicking job is already captured and
/// re-raised by the dispatch protocol, so guard state stays consistent.
fn lock_pool<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A job panic converted to a value instead of an unwind: the typed form
/// of "one poisoned block job failed the run". The pool itself stays
/// consistent and reusable afterwards — only the job is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    message: String,
}

impl PoolError {
    /// The panic payload rendered as text (`&str`/`String` payloads pass
    /// through; anything else becomes a placeholder).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Builds a `PoolError` from a caught panic payload.
    pub fn from_payload(payload: &(dyn Any + Send)) -> PoolError {
        PoolError {
            message: panic_message(payload),
        }
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker job panicked: {}", self.message)
    }
}

impl std::error::Error for PoolError {}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One published parallel region. Lives on the submitter's stack; workers
/// reach it through a raw pointer that the `pending` refcount keeps valid
/// (the submitter does not return before `pending` hits zero).
struct Job {
    n: usize,
    /// Fixed claim size; 0 selects the adaptive policy.
    fixed_chunk: usize,
    /// Total participants (pool workers + the submitter).
    participants: usize,
    cursor: AtomicUsize,
    pending: AtomicUsize,
    /// Type- and lifetime-erased `&dyn Fn(slot, range)`; see `Job` safety
    /// note above.
    body: *const (dyn Fn(usize, Range<usize>) + Sync),
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `body` points at a `Sync` closure that outlives the job (enforced
// by the submitter blocking on `pending`), and all mutable state is atomic
// or mutex-guarded.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims the next chunk, or `None` when the space is exhausted.
    fn claim(&self) -> Option<Range<usize>> {
        if self.fixed_chunk > 0 {
            let start = self.cursor.fetch_add(self.fixed_chunk, Ordering::Relaxed);
            if start >= self.n {
                return None;
            }
            return Some(start..(start + self.fixed_chunk).min(self.n));
        }
        // Guided: size each claim from what is left so chunks shrink as the
        // job drains. CAS (not fetch_add) because the size depends on the
        // observed cursor.
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            if cur >= self.n {
                return None;
            }
            let remaining = self.n - cur;
            let size = (remaining / (2 * self.participants))
                .clamp(ADAPTIVE_MIN_CHUNK, ADAPTIVE_MAX_CHUNK)
                .min(remaining);
            match self.cursor.compare_exchange_weak(
                cur,
                cur + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur..cur + size),
                Err(now) => cur = now,
            }
        }
    }

    /// Runs the claim loop as participant `slot`, capturing (not unwinding)
    /// any body panic so the dispatch protocol always completes. Returns the
    /// number of chunks this participant claimed (partial on panic).
    fn execute(&self, slot: usize) -> u64 {
        // SAFETY: the submitter keeps the closure alive until `pending`
        // reaches zero, which cannot happen before this call returns.
        let body = unsafe { &*self.body };
        let mut chunks = 0u64;
        let result = catch_unwind(AssertUnwindSafe(|| {
            anyscan_faults::fire_panic("pool::job");
            while let Some(range) = self.claim() {
                chunks += 1;
                body(slot, range);
            }
        }));
        if let Err(payload) = result {
            // Fast-forward the cursor so co-workers stop claiming, then
            // record the first panic for the submitter to re-raise.
            self.cursor.store(self.n, Ordering::Relaxed);
            let mut slot = lock_pool(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        chunks
    }
}

/// Dispatch state shared between the submitter and all pool workers.
struct DispatchState {
    /// Bumped once per published job; workers use it to recognize work they
    /// have not seen yet (each worker processes each epoch at most once).
    epoch: u64,
    job: *const Job,
    /// Workers that have joined the current epoch (also assigns slots).
    joined: usize,
    /// Workers allowed to join the current epoch.
    worker_participants: usize,
    shutdown: bool,
}

// SAFETY: the raw job pointer is only dereferenced by epoch-gated joiners
// counted in `pending` (see `Job`).
unsafe impl Send for DispatchState {}

/// Always-on utilization counters for one participant slot. Touched once per
/// job per slot (not per chunk), so the accounting cost is three relaxed adds
/// and one `Instant` pair per dispatch — unmeasurable next to any real job.
#[derive(Default)]
struct SlotStats {
    busy_ns: AtomicU64,
    chunks: AtomicU64,
    jobs: AtomicU64,
}

/// Pool-lifetime utilization counters. Scoped per-run views are obtained by
/// snapshotting before and after and taking [`PoolUtilization::delta_since`].
struct PoolStats {
    /// Parallel regions dispatched to the team (inline/sequential fallbacks
    /// in [`WorkerPool::run`] are not dispatches and are not counted).
    jobs: AtomicU64,
    /// Indexed by participant slot (0 = submitter, `1..` = pool workers).
    slots: Box<[SlotStats]>,
    /// Indexed by spawn order of the worker threads; time spent parked on
    /// the work condvar between jobs.
    parked_ns: Box<[AtomicU64]>,
}

impl PoolStats {
    fn new() -> Self {
        PoolStats {
            jobs: AtomicU64::new(0),
            slots: (0..=MAX_WORKERS).map(|_| SlotStats::default()).collect(),
            parked_ns: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record_execution(&self, slot: usize, busy_ns: u64, chunks: u64) {
        let s = &self.slots[slot];
        s.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        s.chunks.fetch_add(chunks, Ordering::Relaxed);
        s.jobs.fetch_add(1, Ordering::Relaxed);
    }
}

struct PoolShared {
    state: Mutex<DispatchState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until `pending` drains.
    done_cv: Condvar,
    stats: PoolStats,
}

/// A persistent team of parked worker threads executing dynamically
/// scheduled jobs. Most callers want [`WorkerPool::global`]; standalone
/// pools exist for tests ([`Drop`] shuts the workers down).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes jobs: one parallel region at a time.
    submit: Mutex<()>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned lazily on first use.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(DispatchState {
                    epoch: 0,
                    job: std::ptr::null(),
                    joined: 0,
                    worker_participants: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                stats: PoolStats::new(),
            }),
            submit: Mutex::new(()),
            workers: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool used by every `parallel_*` free function.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Worker threads spawned so far (grows on demand, never shrinks).
    pub fn spawned_workers(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool's lifetime utilization counters: jobs
    /// dispatched, per-slot busy time / chunk claims / job participations,
    /// and per-worker parked time.
    ///
    /// The counters are monotone and cover the pool's whole lifetime (the
    /// global pool lives for the process), so callers interested in one
    /// run snapshot before and after and take
    /// [`PoolUtilization::delta_since`]. Sequential fallbacks (`threads <=
    /// 1`, single-item jobs, nested calls) never dispatch to the team and
    /// are therefore invisible here by design.
    ///
    /// Slot attribution: slot 0 is always the submitting thread; which OS
    /// worker serves slots `1..` varies per job, so per-slot numbers
    /// describe team positions, not threads. `worker_parked_ns` *is*
    /// per-thread, in spawn order.
    pub fn utilization(&self) -> PoolUtilization {
        let stats = &self.shared.stats;
        let slots = stats
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.jobs.load(Ordering::Relaxed) > 0)
            .map(|(i, s)| SlotUtilization {
                slot: i as u32,
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
                chunks: s.chunks.load(Ordering::Relaxed),
                jobs: s.jobs.load(Ordering::Relaxed),
            })
            .collect();
        let worker_parked_ns = stats.parked_ns[..self.spawned_workers().min(MAX_WORKERS)]
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed))
            .collect();
        PoolUtilization {
            jobs: stats.jobs.load(Ordering::Relaxed),
            slots,
            worker_parked_ns,
        }
    }

    /// Runs `body` over every chunk of `0..n` with `threads` participants
    /// (the calling thread is one of them and receives slot 0; pool workers
    /// get slots `1..threads`). Panics in `body` resume on the caller.
    pub fn run<F>(&self, threads: usize, n: usize, policy: ChunkPolicy, body: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let t = effective_threads(threads, n);
        if t == 1 || IN_JOB.with(Cell::get) {
            body(0, 0..n);
            return;
        }
        self.run_team(t, n, policy, &body);
    }

    /// Like [`run`](Self::run), but converts a job panic into a typed
    /// [`PoolError`] instead of resuming the unwind on the caller. The pool
    /// remains reusable either way; this merely moves the failure into the
    /// `Result` channel for callers that must not unwind (the anytime
    /// driver's execution-control loop).
    pub fn try_run<F>(
        &self,
        threads: usize,
        n: usize,
        policy: ChunkPolicy,
        body: F,
    ) -> Result<(), PoolError>
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        catch_unwind(AssertUnwindSafe(|| self.run(threads, n, policy, body)))
            .map_err(|payload| PoolError::from_payload(payload.as_ref()))
    }

    fn run_team(
        &self,
        t: usize,
        n: usize,
        policy: ChunkPolicy,
        body: &(dyn Fn(usize, Range<usize>) + Sync),
    ) {
        let workers = t - 1;
        self.ensure_workers(workers);
        // SAFETY: pure lifetime erasure on a fat pointer (the struct field's
        // `dyn` defaults to `'static`); the dispatch protocol guarantees no
        // dereference survives this stack frame.
        let body_ptr: *const (dyn Fn(usize, Range<usize>) + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(usize, Range<usize>) + Sync)) };
        let job = Job {
            n,
            fixed_chunk: match policy {
                ChunkPolicy::Fixed(c) => c.max(1),
                ChunkPolicy::Adaptive => 0,
            },
            participants: t,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(t),
            body: body_ptr,
            panic: Mutex::new(None),
        };

        let _submit = lock_pool(&self.submit);
        self.shared.stats.jobs.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = lock_pool(&self.shared.state);
            st.epoch += 1;
            st.job = &job as *const Job;
            st.joined = 0;
            st.worker_participants = workers;
            self.shared.work_cv.notify_all();
        }

        // The submitter is participant 0 and works too (panics captured).
        IN_JOB.with(|f| f.set(true));
        let started = Instant::now();
        let chunks = job.execute(0);
        self.shared
            .stats
            .record_execution(0, started.elapsed().as_nanos() as u64, chunks);
        IN_JOB.with(|f| f.set(false));

        // Wait until every participant has finished; only then may `job`
        // (and the borrowed closure) leave scope.
        if job.pending.fetch_sub(1, Ordering::AcqRel) != 1 {
            let mut st = lock_pool(&self.shared.state);
            while job.pending.load(Ordering::Acquire) > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            drop(st);
        }

        let payload = lock_pool(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Grows the pool to at least `needed` workers.
    fn ensure_workers(&self, needed: usize) {
        if self.spawned.load(Ordering::Acquire) >= needed {
            return;
        }
        let mut handles = lock_pool(&self.workers);
        while handles.len() < needed.min(MAX_WORKERS) {
            let shared = Arc::clone(&self.shared);
            let worker_index = handles.len();
            let handle = std::thread::Builder::new()
                .name(format!("anyscan-pool-{worker_index}"))
                .spawn(move || worker_loop(shared, worker_index))
                .expect("spawn pool worker");
            handles.push(handle);
            self.spawned.fetch_add(1, Ordering::Release);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_pool(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in lock_pool(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, worker_index: usize) {
    // A pool worker is always "inside a job" for nesting purposes.
    IN_JOB.with(|f| f.set(true));
    let mut last_epoch = 0u64;
    loop {
        let (job_ptr, slot);
        {
            let mut st = lock_pool(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if st.joined < st.worker_participants {
                        slot = 1 + st.joined;
                        st.joined += 1;
                        job_ptr = st.job;
                        break;
                    }
                    // Epoch observed but full — skip it and park again.
                }
                let parked = Instant::now();
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                shared.stats.parked_ns[worker_index]
                    .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        // SAFETY: we joined this epoch under the lock, so we are one of the
        // `pending` participants the submitter is blocked on; the job (and
        // its closure) stay alive until our decrement below.
        let job = unsafe { &*job_ptr };
        let started = Instant::now();
        let chunks = job.execute(slot);
        shared
            .stats
            .record_execution(slot, started.elapsed().as_nanos() as u64, chunks);
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last one out: wake the submitter. Lock the state mutex so the
            // notify cannot race between its pending-check and its wait.
            let _st = lock_pool(&shared.state);
            shared.done_cv.notify_all();
        }
    }
}

/// Runs `body` over every chunk of `0..n`, claimed dynamically in fixed
/// `chunk`-sized pieces by `threads` workers of the global pool. `body`
/// receives half-open index ranges.
pub fn parallel_for_dynamic<F>(threads: usize, n: usize, chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    WorkerPool::global().run(threads, n, ChunkPolicy::Fixed(chunk), |_, range| {
        body(range)
    });
}

/// [`parallel_for_dynamic`] with guided (adaptive) chunk sizing: no chunk
/// parameter to tune — claims start at `n / (2 · threads)` indices and
/// shrink with the remaining work.
pub fn parallel_for_adaptive<F>(threads: usize, n: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    WorkerPool::global().run(threads, n, ChunkPolicy::Adaptive, |_, range| body(range));
}

/// Maps `f` over `0..n` with dynamic scheduling, returning the outputs in
/// index order. Lock-free: each claimed chunk writes a disjoint slice of the
/// output buffer.
pub fn parallel_map_dynamic<T, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_impl(threads, n, ChunkPolicy::Fixed(chunk), |_, i| f(i))
}

/// [`parallel_map_dynamic`] with guided (adaptive) chunk sizing.
pub fn parallel_map_adaptive<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_impl(threads, n, ChunkPolicy::Adaptive, |_, i| f(i))
}

/// Maps `f` over `0..n` (adaptive scheduling) with a per-worker scratch
/// value: `init` runs at most once per participating worker and the same
/// `&mut S` is passed to every `f` call on that worker — the buffer-reuse
/// hook for allocation-heavy bodies such as ε-neighborhood queries.
pub fn parallel_map_with<T, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let t = effective_threads(threads, n);
    if t == 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    // One scratch per slot; the mutex is uncontended (slots are exclusive)
    // and exists only to move `S` across the thread boundary safely.
    let scratches: Vec<Mutex<Option<S>>> = (0..t).map(|_| Mutex::new(None)).collect();
    let out = map_impl(threads, n, ChunkPolicy::Adaptive, |slot, i| {
        let mut guard = lock_pool(&scratches[slot]);
        let scratch = guard.get_or_insert_with(&init);
        f(scratch, i)
    });
    out
}

fn map_impl<T, F>(threads: usize, n: usize, policy: ChunkPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let t = effective_threads(threads, n);
    if t == 1 {
        return (0..n).map(|i| f(0, i)).collect();
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialization; every slot is written
    // exactly once below before the conversion (chunk claims partition 0..n;
    // a body panic aborts the conversion by unwinding out of `run`, leaking
    // written elements but never reading uninitialized ones).
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let base = SendPtr(out.as_mut_ptr());
    WorkerPool::global().run(threads, n, policy, |slot, range| {
        let base = &base;
        for i in range {
            // SAFETY: `i` is claimed by exactly one participant, so this
            // write is unaliased.
            unsafe {
                base.0.add(i).write(MaybeUninit::new(f(slot, i)));
            }
        }
    });
    // SAFETY: all n slots were initialized (the chunk claims cover 0..n and
    // `run` returns only after every participant finished).
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut T, n, out.capacity())
    }
}

/// Folds `0..n` into per-worker accumulators with dynamic scheduling and
/// returns them (callers merge; order is unspecified).
pub fn parallel_reduce_dynamic<A, I, F>(
    threads: usize,
    n: usize,
    chunk: usize,
    init: I,
    body: F,
) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    reduce_impl(threads, n, ChunkPolicy::Fixed(chunk), init, body)
}

/// [`parallel_reduce_dynamic`] with guided (adaptive) chunk sizing.
pub fn parallel_reduce_adaptive<A, I, F>(threads: usize, n: usize, init: I, body: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    reduce_impl(threads, n, ChunkPolicy::Adaptive, init, body)
}

fn reduce_impl<A, I, F>(threads: usize, n: usize, policy: ChunkPolicy, init: I, body: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    let t = effective_threads(threads, n);
    if t == 1 {
        let mut acc = init();
        for i in 0..n {
            body(&mut acc, i);
        }
        return vec![acc];
    }
    // One accumulator per slot; mutexes are uncontended (slots exclusive).
    let accs: Vec<Mutex<Option<A>>> = (0..t).map(|_| Mutex::new(None)).collect();
    WorkerPool::global().run(threads, n, policy, |slot, range| {
        let mut guard = lock_pool(&accs[slot]);
        let acc = guard.get_or_insert_with(&init);
        for i in range {
            body(acc, i);
        }
    });
    accs.into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

/// A raw pointer that asserts cross-thread shareability for the disjoint
/// writes in [`parallel_map_dynamic`].
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used for writes to indices each worker claims
// exclusively via the shared atomic cursor.
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn effective_thread_clamping() {
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn for_covers_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            for n in [0usize, 1, 5, 1000, 1001] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for_dynamic(threads, n, 3, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn adaptive_covers_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            for n in [0usize, 1, 5, 1000, 1001, 50_000] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for_adaptive(threads, n, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn adaptive_chunks_start_guided_and_stay_bounded() {
        let n = 10_000usize;
        let threads = 4usize;
        let claims: Mutex<Vec<Range<usize>>> = Mutex::new(Vec::new());
        parallel_for_adaptive(threads, n, |range| {
            claims.lock().unwrap().push(range);
        });
        let claims = claims.into_inner().unwrap();
        let total: usize = claims.iter().map(|r| r.len()).sum();
        assert_eq!(total, n);
        // The claim that started at index 0 observed the full remaining
        // space, so its size is exactly n / (2 * threads) (within clamps).
        let first = claims.iter().find(|r| r.start == 0).expect("claim at 0");
        assert_eq!(
            first.len(),
            (n / (2 * threads)).clamp(ADAPTIVE_MIN_CHUNK, ADAPTIVE_MAX_CHUNK)
        );
        // Guided sizing must beat fixed-minimum chunking on claim count.
        assert!(claims.len() <= n / ADAPTIVE_MIN_CHUNK);
        for r in &claims {
            assert!(!r.is_empty() && r.len() <= ADAPTIVE_MAX_CHUNK);
        }
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1usize, 2, 4] {
            for n in [0usize, 1, 17, 4096] {
                let out = parallel_map_dynamic(threads, n, 5, |i| i * i);
                assert_eq!(out.len(), n);
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, i * i);
                }
            }
        }
    }

    #[test]
    fn map_handles_non_copy_types_and_drops() {
        let out = parallel_map_dynamic(4, 100, 7, |i| vec![i; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
        drop(out); // must not double-free
    }

    #[test]
    fn map_adaptive_matches_sequential() {
        for threads in [2usize, 4] {
            let out = parallel_map_adaptive(threads, 5000, |i| i as u64 + 1);
            assert_eq!(out, (1..=5000u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        let inits = AtomicUsize::new(0);
        let threads = 4usize;
        let n = 10_000usize;
        let out = parallel_map_with(
            threads,
            n,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, i| {
                scratch.clear();
                scratch.extend(0..i % 5);
                scratch.len() + i
            },
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i % 5 + i);
        }
        // At most one scratch per participant, never one per index.
        assert!(inits.load(Ordering::Relaxed) <= effective_threads(threads, n));
    }

    #[test]
    fn reduce_sums_correctly() {
        for threads in [1usize, 2, 4] {
            let accs =
                parallel_reduce_dynamic(threads, 1000, 8, || 0u64, |acc, i| *acc += i as u64);
            let total: u64 = accs.into_iter().sum();
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn reduce_adaptive_sums_correctly() {
        for threads in [1usize, 2, 4] {
            let accs = parallel_reduce_adaptive(threads, 12345, || 0u64, |acc, i| *acc += i as u64);
            let total: u64 = accs.into_iter().sum();
            assert_eq!(total, 12344 * 12345 / 2);
        }
    }

    #[test]
    fn chunks_are_claimed_incrementally() {
        let claims = AtomicU64::new(0);
        parallel_for_dynamic(4, 1024, 4, |range| {
            claims.fetch_add(1, Ordering::Relaxed);
            for i in range {
                std::hint::black_box(i);
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn single_thread_runs_inline() {
        // With 1 thread the body must run on the calling thread (no spawn).
        let caller = std::thread::current().id();
        parallel_for_dynamic(1, 10, 2, |_| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    /// Thread ids touched by one pool job on `pool`, excluding the caller.
    fn worker_ids_of_run(pool: &WorkerPool, threads: usize) -> HashSet<ThreadId> {
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        pool.run(threads, 100_000, ChunkPolicy::Fixed(8), |_, range| {
            ids.lock().unwrap().insert(std::thread::current().id());
            for i in range {
                std::hint::black_box(i);
            }
        });
        let caller = std::thread::current().id();
        let mut ids = ids.into_inner().unwrap();
        ids.remove(&caller);
        ids
    }

    #[test]
    fn pool_reuses_threads_across_calls() {
        let pool = WorkerPool::new();
        // Long-lived team: every call draws from the same 3 OS threads and
        // the pool never re-spawns for an unchanged thread count. (Any one
        // call may touch fewer than 3 workers if a worker wakes late, so
        // the invariant is on the union across calls, not per call.)
        let mut seen = HashSet::new();
        for _ in 0..6 {
            seen.extend(worker_ids_of_run(&pool, 4));
            assert_eq!(pool.spawned_workers(), 3);
        }
        assert!(
            seen.len() <= 3,
            "more distinct worker threads than spawned: {}",
            seen.len()
        );
    }

    #[test]
    fn pool_grows_on_demand_only() {
        let pool = WorkerPool::new();
        pool.run(2, 1000, ChunkPolicy::Adaptive, |_, _| {});
        assert_eq!(pool.spawned_workers(), 1);
        pool.run(5, 1000, ChunkPolicy::Adaptive, |_, _| {});
        assert_eq!(pool.spawned_workers(), 4);
        pool.run(3, 1000, ChunkPolicy::Adaptive, |_, _| {});
        assert_eq!(pool.spawned_workers(), 4);
    }

    #[test]
    fn panic_in_worker_propagates_and_pool_survives() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 1000, ChunkPolicy::Fixed(1), |_, range| {
                if range.contains(&500) {
                    panic!("boom at 500");
                }
            });
        }));
        let payload = result.expect_err("panic must reach the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom at 500"), "unexpected payload: {msg:?}");

        // The team must still be dispatchable after a panicked job.
        let hits = AtomicUsize::new(0);
        pool.run(4, 1000, ChunkPolicy::Fixed(8), |_, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn try_run_converts_panic_to_typed_error_and_pool_survives() {
        let pool = WorkerPool::new();
        let err = pool
            .try_run(4, 1000, ChunkPolicy::Fixed(1), |_, range| {
                if range.contains(&500) {
                    panic!("typed boom at {}", range.start);
                }
            })
            .expect_err("panicking job must surface as PoolError");
        assert!(
            err.message().contains("typed boom"),
            "unexpected message: {}",
            err.message()
        );
        assert!(err.to_string().contains("worker job panicked"));

        // The pool must stay reusable through the typed path too.
        let hits = AtomicUsize::new(0);
        pool.try_run(4, 1000, ChunkPolicy::Fixed(8), |_, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn injected_job_panic_is_deterministic_and_typed() {
        // The `pool::job` failpoint panics inside a worker's claim loop;
        // `try_run` must hand it back as a typed error and leave the pool
        // dispatchable.
        let pool = WorkerPool::new();
        anyscan_faults::configure("pool::job", anyscan_faults::FaultAction::Panic, 1);
        let err = pool.try_run(4, 100, ChunkPolicy::Fixed(1), |_, _| {});
        anyscan_faults::clear();
        let err = err.expect_err("injected fault must fail the job");
        assert!(
            err.message().contains("injected fault: pool::job"),
            "unexpected message: {}",
            err.message()
        );
        let hits = AtomicUsize::new(0);
        pool.run(4, 100, ChunkPolicy::Fixed(1), |_, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panic_in_submitter_slot_propagates() {
        // Slot 0 is the calling thread; a panic there must also be captured
        // after the workers drain, then resumed.
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, 10, ChunkPolicy::Fixed(1), |slot, _| {
                if slot == 0 {
                    panic!("submitter boom");
                }
            });
        }));
        assert!(result.is_err());
        pool.run(2, 10, ChunkPolicy::Fixed(1), |_, _| {});
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let hits = AtomicUsize::new(0);
        parallel_for_dynamic(2, 8, 1, |outer| {
            for _ in outer {
                parallel_for_adaptive(2, 4, |inner| {
                    hits.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn slots_are_unique_and_dense() {
        let pool = WorkerPool::new();
        let seen: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        pool.run(4, 100_000, ChunkPolicy::Fixed(4), |slot, range| {
            seen.lock().unwrap().insert(slot);
            for i in range {
                std::hint::black_box(i);
            }
        });
        let seen = seen.into_inner().unwrap();
        // Every observed slot is in 0..threads and slot 0 (the submitter)
        // always participates.
        assert!(seen.contains(&0));
        assert!(seen.iter().all(|&s| s < 4), "slots: {seen:?}");
    }

    #[test]
    fn utilization_counts_jobs_slots_and_chunks() {
        let pool = WorkerPool::new();
        let before = pool.utilization();
        assert_eq!(before.jobs, 0);
        assert!(before.slots.is_empty());

        pool.run(4, 1024, ChunkPolicy::Fixed(4), |_, range| {
            for i in range {
                std::hint::black_box(i);
            }
        });
        pool.run(4, 1024, ChunkPolicy::Fixed(4), |_, range| {
            for i in range {
                std::hint::black_box(i);
            }
        });

        let u = pool.utilization().delta_since(&before);
        assert_eq!(u.jobs, 2);
        // 1024 / 4 = 256 chunks per job, split among whichever slots ran.
        let total_chunks: u64 = u.slots.iter().map(|s| s.chunks).sum();
        assert_eq!(total_chunks, 512);
        // Slot 0 (the submitter) participates in every dispatched job.
        let slot0 = u.slots.iter().find(|s| s.slot == 0).expect("slot 0");
        assert_eq!(slot0.jobs, 2);
        // Participation jobs sum to participants × jobs.
        let total_jobs: u64 = u.slots.iter().map(|s| s.jobs).sum();
        assert_eq!(total_jobs, 8);
        assert_eq!(u.worker_parked_ns.len(), pool.spawned_workers());
    }

    #[test]
    fn utilization_ignores_sequential_fallbacks() {
        let pool = WorkerPool::new();
        pool.run(1, 1000, ChunkPolicy::Adaptive, |_, _| {});
        pool.run(8, 1, ChunkPolicy::Adaptive, |_, _| {});
        let u = pool.utilization();
        assert_eq!(u.jobs, 0, "inline runs are not dispatches");
    }

    proptest! {
        #[test]
        fn adaptive_partitions_any_space(threads in 1usize..9, n in 0usize..3000) {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for_adaptive(threads, n, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }

        #[test]
        fn map_agrees_with_sequential(threads in 1usize..9, n in 0usize..2000) {
            let out = parallel_map_adaptive(threads, n, |i| 3 * i + 1);
            prop_assert_eq!(out, (0..n).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }
}
