//! A blocking protocol client: one connection, one request in flight.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use anyscan_serve::protocol::{
    read_frame, write_frame, DecodeError, FrameError, Request, Response, RESPONSE_FRAME_LIMIT,
};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Target {
    /// `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(String),
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Target::Unix(path) => write!(f, "unix:{path}"),
        }
    }
}

/// Why a call failed (cleanly typed so the harness can bucket outcomes).
#[derive(Debug)]
pub enum ClientError {
    Connect(std::io::Error),
    Frame(FrameError),
    Decode(DecodeError),
    /// The daemon closed the connection before answering.
    ClosedEarly,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
            ClientError::ClosedEarly => write!(f, "connection closed before a response"),
        }
    }
}

impl std::error::Error for ClientError {}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connected protocol client.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to the daemon.
    pub fn connect(target: &Target) -> Result<Client, ClientError> {
        let stream = match target {
            Target::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(ClientError::Connect)?;
                s.set_nodelay(true).map_err(ClientError::Connect)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Target::Unix(path) => {
                Stream::Unix(UnixStream::connect(path).map_err(ClientError::Connect)?)
            }
        };
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        let payload = read_frame(&mut self.stream, RESPONSE_FRAME_LIMIT)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::ClosedEarly)?;
        Response::decode(&payload).map_err(ClientError::Decode)
    }
}

/// Polls the daemon with `Ping` until it answers or `timeout` elapses;
/// returns a connected client on success.
pub fn wait_ready(target: &Target, timeout: Duration) -> Result<Client, ClientError> {
    let deadline = Instant::now() + timeout;
    loop {
        match Client::connect(target).and_then(|mut c| c.call(&Request::Ping).map(|_| c)) {
            Ok(client) => return Ok(client),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
