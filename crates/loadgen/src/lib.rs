//! Load harness for the `anyscan serve` daemon.
//!
//! A run spins up `concurrency` workers, each with its own connection and
//! seeded RNG, drawing requests from a weighted mix (full `(ε, μ)` queries,
//! per-vertex membership lookups, deadline-bounded anytime runs) until a
//! shared [`IterationGate`] closes. Two loop disciplines:
//!
//! - **closed loop** (default): each worker sends as fast as responses come
//!   back — measures capacity;
//! - **open loop** (`rate`): tickets map to absolute send times on a fixed
//!   schedule — measures latency at a target arrival rate, the discipline
//!   that exposes queueing delay instead of hiding it behind backpressure.
//!
//! Results merge into a [`Summary`] (sort-based p50/p95/p99, throughput,
//! outcome buckets) and can be written as the workspace's trace-JSON
//! (`Report::to_json` with the percentiles in `meta`), so the same
//! `anyscan-trace-check` binary that gates clustering traces gates load
//! reports too.

pub mod gate;
pub mod metrics;

use std::sync::Arc;
use std::time::{Duration, Instant};

use anyscan_client::{Client, ClientConfig, RetryPolicy};
use anyscan_serve::protocol::{
    ErrorCode, Request, Response, WireUpdate, UPDATE_INSERT, UPDATE_REMOVE, UPDATE_REWEIGHT,
};
use anyscan_telemetry::{Counter, Recorder, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use anyscan_client::{wait_ready, ClientError, Endpoint};
pub use gate::IterationGate;
pub use metrics::{Outcome, Summary, WorkerMetrics};

/// Relative weights of the request mix (zero disables a shape).
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    pub query: u32,
    pub lookup: u32,
    pub run: u32,
    /// `ApplyUpdates` batches — only meaningful against a `--dynamic` daemon
    /// (a static daemon answers them with a typed `BadRequest`).
    pub update: u32,
}

impl Default for MixWeights {
    /// Lookup-heavy, like real traffic: 6 lookups : 3 queries : 1 run.
    fn default() -> Self {
        MixWeights {
            query: 3,
            lookup: 6,
            run: 1,
            update: 0,
        }
    }
}

impl MixWeights {
    fn total(&self) -> u32 {
        self.query + self.lookup + self.run + self.update
    }

    /// Parses `"query:3,lookup:6,run:1,update:2"` (missing shapes default
    /// to 0).
    pub fn parse(raw: &str) -> Result<MixWeights, String> {
        let mut mix = MixWeights {
            query: 0,
            lookup: 0,
            run: 0,
            update: 0,
        };
        for part in raw.split(',') {
            let (name, weight) = part
                .split_once(':')
                .ok_or_else(|| format!("bad mix part {part:?}, want name:weight"))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("bad mix weight in {part:?}"))?;
            match name.trim() {
                "query" => mix.query = weight,
                "lookup" => mix.lookup = weight,
                "run" => mix.run = weight,
                "update" => mix.update = weight,
                other => return Err(format!("unknown mix shape {other:?}")),
            }
        }
        if mix.total() == 0 {
            return Err("mix has zero total weight".into());
        }
        Ok(mix)
    }
}

/// Everything one load run needs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Every known daemon address. Each worker holds a failover-aware
    /// [`Client`] over the whole list: reads rotate onto the survivors when
    /// an endpoint dies, writes chase the `NotPrimary` leader hint.
    pub endpoints: Vec<Endpoint>,
    /// Per-request socket deadline (None = block forever).
    pub request_timeout: Option<Duration>,
    /// Connect/transport failures retry under this policy *inside* the
    /// client — a refused or reset connect is backoff-and-retried, and only
    /// counts as a request error once the whole budget is spent.
    pub retry: RetryPolicy,
    pub concurrency: usize,
    /// Stop after this many requests (None = unbounded by count).
    pub iterations: Option<u64>,
    /// Stop after this wall-clock duration (None = unbounded by time).
    pub duration: Option<Duration>,
    /// Open-loop arrival rate in requests/second across all workers
    /// (None = closed loop).
    pub rate: Option<f64>,
    pub mix: MixWeights,
    pub eps: f64,
    pub mu: u32,
    /// `Run` requests carry this per-request deadline (0 = none).
    pub run_deadline_ms: u32,
    /// `Run` requests carry this block budget (0 = none).
    pub run_max_blocks: u64,
    /// Vertex-id space for membership lookups and generated updates
    /// (exclusive upper bound).
    pub vertices: u32,
    /// Updates per generated `ApplyUpdates` batch.
    pub update_batch: u32,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            endpoints: vec![Endpoint::Tcp("127.0.0.1:7411".into())],
            request_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
            concurrency: 4,
            iterations: None,
            duration: Some(Duration::from_secs(5)),
            rate: None,
            mix: MixWeights::default(),
            eps: 0.5,
            mu: 4,
            run_deadline_ms: 50,
            run_max_blocks: 0,
            vertices: 1,
            update_batch: 8,
            seed: 42,
        }
    }
}

fn pick_request(config: &RunConfig, rng: &mut StdRng) -> Request {
    let mut roll = rng.gen_range(0..config.mix.total());
    if roll < config.mix.query {
        return Request::Query {
            eps: config.eps,
            mu: config.mu,
            want_labels: false,
        };
    }
    roll -= config.mix.query;
    if roll < config.mix.lookup {
        return Request::Membership {
            vertex: rng.gen_range(0..config.vertices.max(1)),
            eps: config.eps,
            mu: config.mu,
        };
    }
    roll -= config.mix.lookup;
    if roll < config.mix.run {
        return Request::Run {
            eps: config.eps,
            mu: config.mu,
            deadline_ms: config.run_deadline_ms,
            max_blocks: config.run_max_blocks,
        };
    }
    Request::ApplyUpdates {
        updates: random_update_batch(config, rng),
    }
}

/// A random write batch over the daemon's vertex-id space: mostly inserts
/// (so the graph doesn't drain to empty), the rest reweights and removes.
/// The daemon treats removes/reweights of absent edges as relaxed no-ops,
/// so blind generation is safe.
fn random_update_batch(config: &RunConfig, rng: &mut StdRng) -> Vec<WireUpdate> {
    let n = config.vertices.max(2);
    (0..config.update_batch.max(1))
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1; // never a self-loop
            }
            let kind = match rng.gen_range(0..10u32) {
                0..=5 => UPDATE_INSERT,
                6..=7 => UPDATE_REWEIGHT,
                _ => UPDATE_REMOVE,
            };
            let w = if kind == UPDATE_REMOVE {
                0.0
            } else {
                rng.gen_range(0.05..1.0)
            };
            WireUpdate { kind, u, v, w }
        })
        .collect()
}

fn classify(response: &Response) -> Outcome {
    match response {
        Response::Error {
            code: ErrorCode::Overloaded,
            ..
        } => Outcome::Overloaded,
        Response::Error { .. } => Outcome::Error,
        _ => Outcome::Ok,
    }
}

/// Drives one load run to completion (see module docs). Counters land on
/// `telemetry` (`load_sent` / `load_ok` / `load_overloaded` / `load_errors`)
/// under a `load_run` span.
pub fn run(config: &RunConfig, telemetry: &Telemetry) -> Summary {
    assert!(
        !config.endpoints.is_empty(),
        "load run needs at least one endpoint"
    );
    let _span = telemetry.span("load_run");
    let gate = Arc::new(IterationGate::new(config.iterations, config.duration));
    let interval = config
        .rate
        .map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
    let start = Instant::now();
    let workers: Vec<_> = (0..config.concurrency.max(1))
        .map(|w| {
            let gate = Arc::clone(&gate);
            let config = config.clone();
            let telemetry = telemetry.clone();
            std::thread::spawn(move || {
                worker_loop(&config, &gate, interval, start, w as u64, &telemetry)
            })
        })
        .collect();
    let metrics = workers
        .into_iter()
        .map(|j| j.join().expect("load worker panicked"))
        .collect();
    Summary::from_workers(metrics, start.elapsed())
}

fn worker_loop(
    config: &RunConfig,
    gate: &IterationGate,
    interval: Option<Duration>,
    start: Instant,
    worker: u64,
    telemetry: &Telemetry,
) -> WorkerMetrics {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker));
    let mut metrics = WorkerMetrics::default();
    // One failover-aware client per worker. Refused/reset connects go
    // through its backoff-and-retry (the pre-PR-9 harness counted them as
    // instant request errors without ever retrying); a request only lands
    // in the error bucket once the whole retry budget is spent.
    let mut client = Client::new(ClientConfig {
        endpoints: config.endpoints.clone(),
        request_timeout: config.request_timeout,
        retry: config.retry.clone(),
        seed: config.seed.wrapping_add(worker) ^ 0xb0ff_0ff5,
    })
    .expect("load endpoints validated by run()");
    while let Some(ticket) = gate.next() {
        // Open loop: the ticket index fixes the intended send time; latency
        // is measured from it, so queueing delay is charged to the server
        // (no coordinated omission).
        let intended = match interval {
            Some(iv) => {
                let at = start + iv.mul_f64(ticket as f64);
                if let Some(sleep) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(sleep);
                }
                at
            }
            None => Instant::now(),
        };
        let request = pick_request(config, &mut rng);
        telemetry.add(Counter::LoadSent, 1);
        match client.call(&request) {
            Ok(response) => {
                let outcome = classify(&response);
                metrics.record(outcome, Some(intended.elapsed()));
                telemetry.add(
                    match outcome {
                        Outcome::Ok => Counter::LoadOk,
                        Outcome::Overloaded => Counter::LoadOverloaded,
                        Outcome::Error => Counter::LoadErrors,
                    },
                    1,
                );
            }
            Err(_) => {
                // The retry budget is spent: now it is a request error.
                telemetry.add(Counter::LoadErrors, 1);
                metrics.record(Outcome::Error, None);
            }
        }
    }
    // Reconnects are recovery, not failure — tallied apart from errors.
    let reconnects = client.stats().reconnects;
    metrics.set_reconnects(reconnects);
    telemetry.add(Counter::LoadReconnects, reconnects);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        let m = MixWeights::parse("query:3,lookup:6,run:1").unwrap();
        assert_eq!((m.query, m.lookup, m.run, m.update), (3, 6, 1, 0));
        let m = MixWeights::parse("lookup:1,update:2").unwrap();
        assert_eq!((m.query, m.lookup, m.run, m.update), (0, 1, 0, 2));
        assert!(MixWeights::parse("query:0").is_err());
        assert!(MixWeights::parse("warp:1").is_err());
        assert!(MixWeights::parse("query").is_err());
    }

    #[test]
    fn pick_request_honors_zero_weights() {
        let config = RunConfig {
            mix: MixWeights {
                query: 0,
                lookup: 1,
                run: 0,
                update: 0,
            },
            vertices: 10,
            ..RunConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            match pick_request(&config, &mut rng) {
                Request::Membership { vertex, .. } => assert!(vertex < 10),
                other => panic!("mix produced {other:?}"),
            }
        }
    }

    #[test]
    fn update_mix_generates_valid_batches() {
        let config = RunConfig {
            mix: MixWeights {
                query: 0,
                lookup: 0,
                run: 0,
                update: 1,
            },
            vertices: 16,
            update_batch: 5,
            ..RunConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut kinds = [0u32; 3];
        for _ in 0..200 {
            match pick_request(&config, &mut rng) {
                Request::ApplyUpdates { updates } => {
                    assert_eq!(updates.len(), 5);
                    for up in updates {
                        assert!(up.u < 16 && up.v < 16 && up.u != up.v);
                        assert!(up.kind <= UPDATE_REWEIGHT);
                        if up.kind != UPDATE_REMOVE {
                            assert!(up.w.is_finite() && up.w > 0.0);
                        }
                        kinds[up.kind as usize] += 1;
                    }
                }
                other => panic!("mix produced {other:?}"),
            }
        }
        assert!(
            kinds.iter().all(|&k| k > 0),
            "all three ops should appear: {kinds:?}"
        );
    }

    #[test]
    fn classify_buckets_outcomes() {
        assert_eq!(classify(&Response::Shutdown), Outcome::Ok);
        assert_eq!(
            classify(&Response::Error {
                code: ErrorCode::Overloaded,
                message: String::new()
            }),
            Outcome::Overloaded
        );
        assert_eq!(
            classify(&Response::Error {
                code: ErrorCode::Internal,
                message: String::new()
            }),
            Outcome::Error
        );
    }
}
