//! Duration/iteration-gated load loops.
//!
//! An [`IterationGate`] is the shared stop condition of a worker fleet:
//! every worker asks it for the next ticket and stops when the gate closes.
//! The gate closes after a fixed number of iterations, after a wall-clock
//! duration (measured lazily from the first ticket, so fleet spin-up does
//! not eat into the run), or — when neither bound is set — after a single
//! iteration. Tickets are globally unique and dense, which is what lets an
//! open-loop pacer turn a ticket index into an absolute send time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Shared stop condition for load workers (see module docs).
#[derive(Debug)]
pub struct IterationGate {
    counter: AtomicU64,
    iterations: Option<u64>,
    duration: Option<Duration>,
    deadline: OnceLock<Instant>,
}

impl IterationGate {
    /// Bounds the run by `iterations`, `duration`, whichever of the two
    /// trips first when both are set, or one single iteration when neither
    /// is set.
    pub fn new(iterations: Option<u64>, duration: Option<Duration>) -> IterationGate {
        IterationGate {
            counter: AtomicU64::new(0),
            iterations: match (iterations, duration) {
                (None, None) => Some(1),
                (it, _) => it,
            },
            duration,
            deadline: OnceLock::new(),
        }
    }

    /// The moment the duration clock started (first ticket), if it has.
    pub fn started_at(&self) -> Option<Instant> {
        self.deadline
            .get()
            .and_then(|d| self.duration.map(|dur| *d - dur))
    }

    /// Claims the next ticket, or `None` once the gate has closed. Tickets
    /// are dense: 0, 1, 2, … with no gaps among granted tickets.
    pub fn next(&self) -> Option<u64> {
        if let Some(duration) = self.duration {
            let deadline = *self.deadline.get_or_init(|| Instant::now() + duration);
            if Instant::now() >= deadline {
                return None;
            }
        }
        let ticket = self.counter.fetch_add(1, Ordering::Relaxed);
        match self.iterations {
            Some(n) if ticket >= n => None,
            _ => Some(ticket),
        }
    }

    /// Tickets granted so far (an upper bound once the gate closes).
    pub fn issued(&self) -> u64 {
        let raw = self.counter.load(Ordering::Relaxed);
        match self.iterations {
            Some(n) => raw.min(n),
            None => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_one_iteration() {
        let gate = IterationGate::new(None, None);
        assert_eq!(gate.next(), Some(0));
        assert_eq!(gate.next(), None);
        assert_eq!(gate.issued(), 1);
    }

    #[test]
    fn iteration_bound_is_exact_across_threads() {
        let gate = std::sync::Arc::new(IterationGate::new(Some(1000), None));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let gate = std::sync::Arc::clone(&gate);
            joins.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(t) = gate.next() {
                    got.push(t);
                }
                got
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
        assert_eq!(gate.issued(), 1000);
    }

    #[test]
    fn duration_bound_closes_the_gate() {
        let gate = IterationGate::new(None, Some(Duration::from_millis(30)));
        assert!(gate.next().is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(gate.next(), None);
    }

    #[test]
    fn duration_clock_starts_at_first_ticket() {
        let gate = IterationGate::new(None, Some(Duration::from_secs(60)));
        assert!(gate.started_at().is_none());
        gate.next();
        assert!(gate.started_at().is_some());
    }
}
