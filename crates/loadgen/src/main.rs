//! `anyscan-loadgen` — drive an `anyscan serve` daemon and gate the result.
//!
//! ```text
//! anyscan-loadgen --connect 127.0.0.1:7411 --duration-ms 5000 --concurrency 8 \
//!     --mix query:3,lookup:6,run:1 --eps 0.5 --mu 4 \
//!     --trace-json load.json --gate-p99-ms 250 --gate-errors 0
//! ```
//!
//! Exit status: 0 on success, 1 when a `--gate-*` bound is violated, 2 on
//! usage or connection errors.

use std::collections::HashMap;
use std::io::Write;
use std::time::Duration;

use anyscan_client::{Client, ClientConfig};
use anyscan_loadgen::{run, wait_ready, Endpoint, MixWeights, RunConfig, Summary};
use anyscan_serve::protocol::{role_name, Request, Response};
use anyscan_telemetry::{MetaValue, Telemetry};

fn usage() {
    eprintln!(
        "anyscan-loadgen — load harness for `anyscan serve`

  --connect LIST        daemon address(es), comma-separated host:port or
                        unix:PATH (default 127.0.0.1:7411); with several,
                        reads fail over across the list and writes follow
                        the NotPrimary leader hint
  --socket PATH         unix-domain socket instead of TCP
  --duration-ms N       run for N milliseconds
  --iterations N        run for N requests (with neither bound: 1 request)
  --concurrency N       worker connections (default 4)
  --rate R              open-loop arrival rate, requests/second (default:
                        closed loop)
  --mix SPEC            request mix, e.g. query:3,lookup:6,run:1 (default);
                        add update:N for write batches against a --dynamic
                        daemon
  --update-batch N      updates per generated ApplyUpdates batch (default 8)
  --eps E --mu M        query parameters (default 0.5 / 4)
  --run-deadline-ms N   per-request deadline on `run` requests (default 50)
  --run-max-blocks N    per-request block budget on `run` requests (default 0)
  --vertices N          lookup id space; 0 = probe the daemon (default 0)
  --seed N              RNG seed (default 42)
  --wait-ready-ms N     poll the daemon with pings for up to N ms first
  --check-labels FILE   fetch full labels once and write them in the CLI's
                        --labels-out format (for diffing against serial runs)
  --trace-json FILE     write the load report (trace-JSON schema v1)
  --gate-p99-ms F       exit 1 if p99 latency exceeds F ms
  --gate-errors N       exit 1 if more than N requests errored
  --shutdown            send a shutdown request after the run"
    );
}

struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Flags, String> {
        const SWITCHES: &[&str] = &["shutdown", "help"];
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(key) = argv[i].strip_prefix("--") else {
                return Err(format!("expected a --flag, got {:?}", argv[i]));
            };
            if SWITCHES.contains(&key) {
                switches.push(key.to_string());
                i += 1;
                continue;
            }
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            values.insert(key.to_string(), value);
            i += 2;
        }
        Ok(Flags { values, switches })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for --{key}: {raw:?}")),
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flags = match Flags::parse(&argv) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            std::process::exit(2);
        }
    };
    if flags.switch("help") {
        usage();
        return;
    }
    match drive(&flags) {
        Ok(gates_ok) => {
            if !gates_ok {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn drive(flags: &Flags) -> Result<bool, String> {
    let endpoints = match flags.get_str("socket") {
        #[cfg(unix)]
        Some(path) => vec![Endpoint::Unix(path.to_string())],
        #[cfg(not(unix))]
        Some(_) => return Err("--socket needs a unix platform; use --connect".into()),
        None => Endpoint::parse_list(flags.get_str("connect").unwrap_or("127.0.0.1:7411"))?,
    };
    let target = endpoints
        .iter()
        .map(Endpoint::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut config = RunConfig {
        endpoints: endpoints.clone(),
        concurrency: flags.get("concurrency", 4usize)?,
        iterations: flags
            .get_str("iterations")
            .map(|raw| {
                raw.parse::<u64>()
                    .map_err(|_| format!("bad value for --iterations: {raw:?}"))
            })
            .transpose()?,
        duration: flags
            .get_str("duration-ms")
            .map(|raw| {
                raw.parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("bad value for --duration-ms: {raw:?}"))
            })
            .transpose()?,
        rate: flags
            .get_str("rate")
            .map(|raw| {
                raw.parse::<f64>()
                    .map_err(|_| format!("bad value for --rate: {raw:?}"))
                    .and_then(|r| {
                        if r > 0.0 {
                            Ok(r)
                        } else {
                            Err(format!("--rate must be positive, got {r}"))
                        }
                    })
            })
            .transpose()?,
        mix: match flags.get_str("mix") {
            Some(raw) => MixWeights::parse(raw)?,
            None => MixWeights::default(),
        },
        eps: flags.get("eps", 0.5f64)?,
        mu: flags.get("mu", 4u32)?,
        run_deadline_ms: flags.get("run-deadline-ms", 50u32)?,
        run_max_blocks: flags.get("run-max-blocks", 0u64)?,
        vertices: flags.get("vertices", 0u32)?,
        update_batch: flags.get("update-batch", 8u32)?,
        seed: flags.get("seed", 42u64)?,
        ..RunConfig::default()
    };

    let wait_ms: u64 = flags.get("wait-ready-ms", 0)?;
    if wait_ms > 0 {
        for endpoint in &endpoints {
            wait_ready(endpoint, Duration::from_millis(wait_ms))
                .map_err(|e| format!("daemon at {endpoint} not ready after {wait_ms}ms: {e}"))?;
        }
        println!("daemon(s) at {target} ready");
    }

    // Lookups need the vertex-id space; probe it (and optionally dump the
    // full labels for a bit-identical diff against a serial `index query`).
    let check_labels = flags.get_str("check-labels");
    if config.vertices == 0 || check_labels.is_some() {
        let labels = fetch_labels(&endpoints, config.eps, config.mu)?;
        if config.vertices == 0 {
            config.vertices = labels.labels.len() as u32;
            println!("probed {} vertices from the daemon", config.vertices);
        }
        if let Some(path) = check_labels {
            write_labels(path, &labels)?;
            println!("labels written to {path}");
        }
    }

    let telemetry = Telemetry::enabled();
    let summary = run(&config, &telemetry);
    print_summary(&config, &summary);

    if let Some(path) = flags.get_str("trace-json") {
        let mode = if config.rate.is_some() {
            "open"
        } else {
            "closed"
        };
        let meta: Vec<(&str, MetaValue)> = vec![
            ("tool", "anyscan-loadgen".into()),
            ("target", target.to_string().into()),
            ("mode", mode.into()),
            ("concurrency", (config.concurrency as u64).into()),
            ("epsilon", config.eps.into()),
            ("mu", u64::from(config.mu).into()),
            ("requests", summary.requests.into()),
            ("ok", summary.ok.into()),
            ("overloaded", summary.overloaded.into()),
            ("errors", summary.errors.into()),
            ("reconnects", summary.reconnects.into()),
            ("duration_ms", (summary.elapsed.as_millis() as u64).into()),
            ("throughput_rps", summary.throughput_rps.into()),
            ("p50_ms", summary.p50_ms.into()),
            ("p95_ms", summary.p95_ms.into()),
            ("p99_ms", summary.p99_ms.into()),
            ("max_ms", summary.max_ms.into()),
        ];
        let report = telemetry.report().ok_or("internal: telemetry disabled")?;
        std::fs::write(path, report.to_json(&meta)).map_err(|e| format!("write {path}: {e}"))?;
        println!("trace       {path}");
    }

    if flags.switch("shutdown") {
        // Targeted command: drain the first listed endpoint only.
        let mut client = Client::connect(endpoints[0].clone()).map_err(|e| e.to_string())?;
        client
            .call(&Request::Shutdown)
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("daemon asked to shut down");
    }

    let mut gates_ok = true;
    if let Some(raw) = flags.get_str("gate-p99-ms") {
        let bound: f64 = raw
            .parse()
            .map_err(|_| format!("bad value for --gate-p99-ms: {raw:?}"))?;
        if summary.p99_ms > bound {
            eprintln!("GATE FAILED: p99 {:.3}ms > {bound}ms", summary.p99_ms);
            gates_ok = false;
        }
    }
    if let Some(raw) = flags.get_str("gate-errors") {
        let bound: u64 = raw
            .parse()
            .map_err(|_| format!("bad value for --gate-errors: {raw:?}"))?;
        if summary.errors > bound {
            eprintln!("GATE FAILED: {} errors > {bound}", summary.errors);
            gates_ok = false;
        }
    }
    if gates_ok
        && (flags.get_str("gate-p99-ms").is_some() || flags.get_str("gate-errors").is_some())
    {
        println!("gates passed");
    }
    Ok(gates_ok)
}

fn fetch_labels(
    endpoints: &[Endpoint],
    eps: f64,
    mu: u32,
) -> Result<anyscan_serve::protocol::LabelBlock, String> {
    let mut client =
        Client::new(ClientConfig::new(endpoints.to_vec())).map_err(|e| e.to_string())?;
    let response = client
        .call(&Request::Query {
            eps,
            mu,
            want_labels: true,
        })
        .map_err(|e| e.to_string())?;
    match response {
        Response::Query {
            labels: Some(block),
            ..
        } => Ok(block),
        Response::Error { code, message } => Err(format!(
            "daemon rejected the probe query: {} ({message})",
            code.label()
        )),
        other => Err(format!("unexpected probe response: {other:?}")),
    }
}

/// Writes labels in exactly the CLI's `--labels-out` format so a byte-wise
/// diff against a serial `index query` proves the daemon path identical.
fn write_labels(path: &str, block: &anyscan_serve::protocol::LabelBlock) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "# vertex cluster role").map_err(|e| e.to_string())?;
    for (v, (&label, &role)) in block.labels.iter().zip(&block.roles).enumerate() {
        let label = if label == u32::MAX {
            "-".to_string()
        } else {
            label.to_string()
        };
        let role = role_name(role).ok_or("daemon sent an unknown role code")?;
        writeln!(w, "{v} {label} {role}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn print_summary(config: &RunConfig, s: &Summary) {
    let mode = match config.rate {
        Some(r) => format!("open loop @ {r} req/s"),
        None => "closed loop".to_string(),
    };
    println!(
        "\n{} workers, {mode}, {:.2}s elapsed",
        config.concurrency,
        s.elapsed.as_secs_f64()
    );
    println!(
        "requests    {} ({} ok, {} overloaded, {} errors, {} reconnects)",
        s.requests, s.ok, s.overloaded, s.errors, s.reconnects
    );
    println!("throughput  {:.1} req/s", s.throughput_rps);
    println!(
        "latency     p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms
    );
}
