//! Latency and outcome accounting for a load run.
//!
//! Each worker records into its own [`WorkerMetrics`] (no shared state on
//! the hot path); [`Summary::from_workers`] merges them after the run and
//! computes sort-based percentiles. Latency samples cover every completed
//! request/response cycle — including typed `overloaded` rejections, which
//! *are* responses (backpressure has a latency too) — while transport and
//! protocol failures carry no latency and count as errors.

use std::time::Duration;

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A successful typed response.
    Ok,
    /// A typed `overloaded` rejection (load shedding, not failure).
    Overloaded,
    /// Anything else: transport error, undecodable response, or a
    /// non-overload protocol error.
    Error,
}

/// One worker's private tallies.
#[derive(Debug, Default)]
pub struct WorkerMetrics {
    latencies_ns: Vec<u64>,
    ok: u64,
    overloaded: u64,
    errors: u64,
    reconnects: u64,
}

impl WorkerMetrics {
    pub fn record(&mut self, outcome: Outcome, latency: Option<Duration>) {
        match outcome {
            Outcome::Ok => self.ok += 1,
            Outcome::Overloaded => self.overloaded += 1,
            Outcome::Error => self.errors += 1,
        }
        if let Some(latency) = latency {
            self.latencies_ns.push(latency.as_nanos() as u64);
        }
    }

    /// Records how often this worker's client replaced a dead connection.
    /// Reconnects are *recovery*, kept apart from request errors: a retried
    /// request that succeeded is not a failure.
    pub fn set_reconnects(&mut self, reconnects: u64) {
        self.reconnects = reconnects;
    }
}

/// Merged results of a whole run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub requests: u64,
    pub ok: u64,
    pub overloaded: u64,
    pub errors: u64,
    /// Connections the workers' clients replaced mid-run (recovery, not
    /// failure — see [`WorkerMetrics::set_reconnects`]).
    pub reconnects: u64,
    pub elapsed: Duration,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl Summary {
    /// Merges per-worker tallies; `elapsed` is the whole-run wall time.
    pub fn from_workers(workers: Vec<WorkerMetrics>, elapsed: Duration) -> Summary {
        let mut latencies: Vec<u64> = Vec::new();
        let mut s = Summary {
            elapsed,
            ..Summary::default()
        };
        for w in workers {
            s.ok += w.ok;
            s.overloaded += w.overloaded;
            s.errors += w.errors;
            s.reconnects += w.reconnects;
            latencies.extend(w.latencies_ns);
        }
        s.requests = s.ok + s.overloaded + s.errors;
        latencies.sort_unstable();
        s.p50_ms = percentile_ms(&latencies, 0.50);
        s.p95_ms = percentile_ms(&latencies, 0.95);
        s.p99_ms = percentile_ms(&latencies, 0.99);
        s.max_ms = latencies.last().map_or(0.0, |&ns| ns as f64 / 1e6);
        let secs = elapsed.as_secs_f64();
        s.throughput_rps = if secs > 0.0 {
            s.requests as f64 / secs
        } else {
            0.0
        };
        s
    }
}

/// Nearest-rank percentile of a sorted sample, in milliseconds; 0 when the
/// sample is empty.
fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_known_distribution() {
        let mut w = WorkerMetrics::default();
        // 1ms..=100ms, one sample each.
        for ms in 1..=100u64 {
            w.record(Outcome::Ok, Some(Duration::from_millis(ms)));
        }
        let s = Summary::from_workers(vec![w], Duration::from_secs(1));
        assert_eq!(s.requests, 100);
        assert_eq!(s.ok, 100);
        assert!((s.p50_ms - 51.0).abs() < 1.5, "p50 {}", s.p50_ms);
        assert!((s.p95_ms - 95.0).abs() < 1.5, "p95 {}", s.p95_ms);
        assert!((s.p99_ms - 99.0).abs() < 1.5, "p99 {}", s.p99_ms);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.throughput_rps, 100.0);
    }

    #[test]
    fn outcome_buckets_merge_across_workers() {
        let mut a = WorkerMetrics::default();
        a.record(Outcome::Ok, Some(Duration::from_millis(2)));
        a.record(Outcome::Overloaded, Some(Duration::from_millis(1)));
        let mut b = WorkerMetrics::default();
        b.record(Outcome::Error, None);
        b.set_reconnects(2);
        let s = Summary::from_workers(vec![a, b], Duration::from_millis(500));
        assert_eq!((s.requests, s.ok, s.overloaded, s.errors), (3, 1, 1, 1));
        // Reconnects merge but stay out of the request/error buckets.
        assert_eq!(s.reconnects, 2);
        assert_eq!(s.throughput_rps, 6.0);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let s = Summary::from_workers(vec![], Duration::ZERO);
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.throughput_rps, 0.0);
    }
}
