//! Deterministic failpoint injection.
//!
//! Production code marks *failpoints* — named sites where an IO error, a
//! short (torn) write, or a job panic can be injected on demand. Faults are
//! armed either through the `ANYSCAN_FAULTS` environment variable or
//! programmatically (tests), and fire deterministically: each site keeps a
//! hit counter and a spec fires exactly once, on its configured hit.
//!
//! Spec syntax (`;`-separated):
//!
//! ```text
//! ANYSCAN_FAULTS="site=action[@hit];site2=action2"
//! ```
//!
//! with `action` one of `io-error`, `short-write:BYTES`, `panic` and `hit`
//! the 1-based occurrence at which to fire (default 1). Example:
//!
//! ```text
//! ANYSCAN_FAULTS="driver::block=panic@5;checkpoint::write=short-write:16"
//! ```
//!
//! Failpoint catalog (sites referenced by production code):
//!
//! | site                  | style | effect when fired                       |
//! |-----------------------|-------|-----------------------------------------|
//! | `graph::read_binary`  | io    | read fails with an injected IO error    |
//! | `graph::write_binary` | write | error, or the file is truncated         |
//! | `index::read_index`   | io    | read fails with an injected IO error    |
//! | `index::read_reorder` | io    | parsing the ASIX v3 reorder byte fails  |
//! | `index::read_sketches`| io    | parsing the ASIX v4 sketch section fails|
//! | `index::write_index`  | write | error, or the file is truncated         |
//! | `checkpoint::read`    | io    | checkpoint load fails                   |
//! | `checkpoint::write`   | write | error, or a torn (truncated) checkpoint |
//! | `pool::job`           | panic | a worker-pool job panics mid-block      |
//! | `driver::block`       | panic | the anytime loop panics at a boundary   |
//! | `serve::read_frame`   | io    | a daemon connection read fails mid-frame|
//! | `dynamic::log_read`   | io    | loading an ASUL update log fails        |
//! | `dynamic::log_write`  | write | error, or a torn (truncated) update log |
//! | `repl::ack`           | io    | primary fails writing the `Subscribed` ack |
//! | `repl::send_entry`    | io    | primary's entry-stream write to a replica fails |
//! | `repl::recv_entry`    | io    | replica's read of a replicated frame fails |
//!
//! When nothing is armed the per-site check is two relaxed atomic loads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the failpoint spec.
pub const ENV_VAR: &str = "ANYSCAN_FAULTS";

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the surrounding operation with an injected `std::io::Error`.
    IoError,
    /// Drop the last `n` bytes of a write (a torn write), then succeed.
    ShortWrite(usize),
    /// Panic at the site (exercises `catch_unwind` recovery paths).
    Panic,
}

#[derive(Debug, Clone, Copy)]
struct FaultSpec {
    action: FaultAction,
    /// 1-based hit at which the fault fires (exactly once).
    at_hit: u64,
}

#[derive(Default)]
struct Registry {
    specs: HashMap<String, FaultSpec>,
    hits: HashMap<String, u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static STATE: OnceLock<Mutex<Registry>> = OnceLock::new();

fn state() -> &'static Mutex<Registry> {
    STATE.get_or_init(|| {
        let mut reg = Registry::default();
        if let Ok(raw) = std::env::var(ENV_VAR) {
            match parse_spec(&raw) {
                Ok(specs) => reg.specs = specs,
                Err(e) => eprintln!("warning: ignoring {ENV_VAR}: {e}"),
            }
        }
        if !reg.specs.is_empty() {
            ARMED.store(true, Ordering::Release);
        }
        Mutex::new(reg)
    })
}

fn parse_spec(raw: &str) -> Result<HashMap<String, FaultSpec>, String> {
    let mut specs = HashMap::new();
    for entry in raw.split(';').filter(|e| !e.trim().is_empty()) {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("{entry:?}: expected site=action"))?;
        let (action_raw, at_hit) = match rest.split_once('@') {
            Some((a, h)) => {
                let hit: u64 = h
                    .trim()
                    .parse()
                    .map_err(|_| format!("{entry:?}: bad hit count {h:?}"))?;
                if hit == 0 {
                    return Err(format!("{entry:?}: hit count is 1-based"));
                }
                (a, hit)
            }
            None => (rest, 1),
        };
        let action = match action_raw.trim() {
            "io-error" => FaultAction::IoError,
            "panic" => FaultAction::Panic,
            other => match other.strip_prefix("short-write:") {
                Some(n) => FaultAction::ShortWrite(
                    n.parse()
                        .map_err(|_| format!("{entry:?}: bad short-write byte count {n:?}"))?,
                ),
                None => return Err(format!("{entry:?}: unknown action {other:?}")),
            },
        };
        specs.insert(site.trim().to_string(), FaultSpec { action, at_hit });
    }
    Ok(specs)
}

/// Checks the failpoint `site`; returns the action to apply if it fires.
///
/// Each call against an armed site advances that site's hit counter; the
/// spec fires exactly once, on its configured hit. Near-zero cost when no
/// fault is armed.
#[inline]
pub fn trigger(site: &str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Acquire) {
        if STATE.get().is_some() {
            return None;
        }
        state(); // first call: parse the environment once
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
    }
    trigger_slow(site)
}

#[cold]
fn trigger_slow(site: &str) -> Option<FaultAction> {
    let mut reg = state().lock().unwrap_or_else(|p| p.into_inner());
    let spec = *reg.specs.get(site)?;
    let hits = reg.hits.entry(site.to_string()).or_insert(0);
    *hits += 1;
    if *hits == spec.at_hit {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        Some(spec.action)
    } else {
        None
    }
}

/// Checks a read/open-style failpoint: `IoError` (and, degenerately, any
/// other armed action) becomes an injected `std::io::Error`, except `Panic`
/// which panics.
pub fn inject_io(site: &str) -> std::io::Result<()> {
    match trigger(site) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("injected fault: {site}"),
        Some(_) => Err(injected_io_error(site)),
    }
}

/// Panics iff a `panic` action is armed at `site` and due; other actions at
/// the site are ignored. For pure compute sites with no IO to fail.
pub fn fire_panic(site: &str) {
    if trigger(site) == Some(FaultAction::Panic) {
        panic!("injected fault: {site}");
    }
}

/// Applies a write-style failpoint to an in-memory payload about to be
/// persisted: may fail with an injected IO error, or truncate the payload
/// (a torn write that a checksum trailer must catch on read).
pub fn inject_write(site: &str, payload: &mut Vec<u8>) -> std::io::Result<()> {
    match trigger(site) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("injected fault: {site}"),
        Some(FaultAction::IoError) => Err(injected_io_error(site)),
        Some(FaultAction::ShortWrite(n)) => {
            let keep = payload.len().saturating_sub(n.max(1));
            payload.truncate(keep);
            Ok(())
        }
    }
}

fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {site}"))
}

/// Total number of faults fired process-wide (telemetry's `faults_injected`).
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Programmatically arms a failpoint (tests). `at_hit` is 1-based.
pub fn configure(site: &str, action: FaultAction, at_hit: u64) {
    let mut reg = state().lock().unwrap_or_else(|p| p.into_inner());
    reg.specs.insert(
        site.to_string(),
        FaultSpec {
            action,
            at_hit: at_hit.max(1),
        },
    );
    reg.hits.remove(site);
    ARMED.store(true, Ordering::Release);
}

/// Disarms every failpoint and resets hit counters (tests).
pub fn clear() {
    let mut reg = state().lock().unwrap_or_else(|p| p.into_inner());
    reg.specs.clear();
    reg.hits.clear();
    ARMED.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn spec_parsing_and_deterministic_firing() {
        let specs = parse_spec("a=io-error;b=short-write:16@3; c = panic @ 2").unwrap();
        assert_eq!(specs["a"].action, FaultAction::IoError);
        assert_eq!(specs["a"].at_hit, 1);
        assert_eq!(specs["b"].action, FaultAction::ShortWrite(16));
        assert_eq!(specs["b"].at_hit, 3);
        assert_eq!(specs["c"].action, FaultAction::Panic);
        assert_eq!(specs["c"].at_hit, 2);

        assert!(parse_spec("nope").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=io-error@0").is_err());
        assert!(parse_spec("a=short-write:x").is_err());
        assert!(parse_spec("").unwrap().is_empty());

        clear();
        assert_eq!(trigger("t::site"), None);

        let before = injected();
        configure("t::site", FaultAction::IoError, 3);
        assert_eq!(trigger("t::site"), None); // hit 1
        assert_eq!(trigger("t::other"), None); // foreign site: no effect
        assert_eq!(trigger("t::site"), None); // hit 2
        assert_eq!(trigger("t::site"), Some(FaultAction::IoError)); // hit 3
        assert_eq!(trigger("t::site"), None); // fires exactly once
        assert_eq!(injected(), before + 1);

        configure("t::io", FaultAction::IoError, 1);
        assert!(inject_io("t::io").is_err());
        assert!(inject_io("t::io").is_ok());

        configure("t::write", FaultAction::ShortWrite(4), 1);
        let mut payload = vec![7u8; 10];
        inject_write("t::write", &mut payload).unwrap();
        assert_eq!(payload.len(), 6);

        configure("t::panic", FaultAction::Panic, 1);
        let caught = std::panic::catch_unwind(|| fire_panic("t::panic"));
        assert!(caught.is_err());

        clear();
        assert!(inject_io("t::io").is_ok());
    }
}
