//! Clustering results and vertex roles.

use anyscan_graph::{CsrGraph, VertexId};

/// Sentinel label for vertices outside every cluster (hubs and outliers).
pub const NOISE: u32 = u32::MAX;

/// Label for vertices an anytime snapshot has not classified yet. Treated as
/// noise by the metrics (the paper scores intermediate results the same way).
pub const UNCLASSIFIED: u32 = u32::MAX - 1;

/// The role SCAN assigns to each vertex (Definition 3 plus the hub/outlier
/// split of the original SCAN paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// `|N^ε| ≥ μ`.
    Core,
    /// Non-core with a core ε-neighbor.
    Border,
    /// Noise adjacent (by plain edges) to two or more distinct clusters.
    Hub,
    /// Noise that is not a hub.
    Outlier,
    /// Not yet decided (anytime snapshots only).
    Unclassified,
}

/// Result of a SCAN-family run: a cluster label and a role per vertex.
///
/// Labels are arbitrary `u32`s (use [`Clustering::canonicalize`] for a dense
/// renumbering); `NOISE` marks hubs/outliers, `UNCLASSIFIED` marks vertices
/// an anytime snapshot has not reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    pub labels: Vec<u32>,
    pub roles: Vec<Role>,
}

impl Clustering {
    /// An all-unclassified result over `n` vertices.
    pub fn unclassified(n: usize) -> Self {
        Clustering {
            labels: vec![UNCLASSIFIED; n],
            roles: vec![Role::Unclassified; n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the clustering covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renumbers cluster labels densely (0..k, in order of first appearance)
    /// in place, leaving `NOISE`/`UNCLASSIFIED` fixed. Returns the number of
    /// clusters.
    pub fn canonicalize(&mut self) -> usize {
        let mut map = std::collections::HashMap::new();
        for l in self.labels.iter_mut() {
            if *l == NOISE || *l == UNCLASSIFIED {
                continue;
            }
            let next = map.len() as u32;
            *l = *map.entry(*l).or_insert(next);
        }
        map.len()
    }

    /// Number of distinct (non-noise) clusters.
    pub fn num_clusters(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for &l in &self.labels {
            if l != NOISE && l != UNCLASSIFIED {
                set.insert(l);
            }
        }
        set.len()
    }

    /// Sizes of all clusters, keyed by label.
    pub fn cluster_sizes(&self) -> std::collections::HashMap<u32, usize> {
        let mut sizes = std::collections::HashMap::new();
        for &l in &self.labels {
            if l != NOISE && l != UNCLASSIFIED {
                *sizes.entry(l).or_insert(0) += 1;
            }
        }
        sizes
    }

    /// Counts `(cores, borders, hubs, outliers, unclassified)` — the right
    /// panel of Fig. 7.
    pub fn role_counts(&self) -> RoleCounts {
        let mut c = RoleCounts::default();
        for &r in &self.roles {
            match r {
                Role::Core => c.cores += 1,
                Role::Border => c.borders += 1,
                Role::Hub => c.hubs += 1,
                Role::Outlier => c.outliers += 1,
                Role::Unclassified => c.unclassified += 1,
            }
        }
        c
    }

    /// Labels with every noise/unclassified vertex mapped into one shared
    /// synthetic cluster — the representation the paper feeds to NMI
    /// ("[noise vertices] could be regarded as members of a special
    /// cluster", §IV-A).
    pub fn labels_with_noise_cluster(&self) -> Vec<u32> {
        // Find a label id guaranteed unused by real clusters.
        let special = self
            .labels
            .iter()
            .filter(|&&l| l != NOISE && l != UNCLASSIFIED)
            .max()
            .map_or(0, |&m| m + 1);
        self.labels
            .iter()
            .map(|&l| {
                if l == NOISE || l == UNCLASSIFIED {
                    special
                } else {
                    l
                }
            })
            .collect()
    }

    /// Splits noise vertices into hubs and outliers: a noise vertex whose
    /// plain neighbors (excluding itself) touch ≥ 2 distinct clusters is a
    /// hub, else an outlier (SCAN's original post-processing).
    pub fn classify_noise(&mut self, g: &CsrGraph) {
        for v in 0..self.labels.len() as VertexId {
            if self.labels[v as usize] != NOISE {
                continue;
            }
            let mut first: Option<u32> = None;
            let mut is_hub = false;
            for &q in g.neighbor_ids(v) {
                if q == v {
                    continue;
                }
                let l = self.labels[q as usize];
                if l == NOISE || l == UNCLASSIFIED {
                    continue;
                }
                match first {
                    None => first = Some(l),
                    Some(f) if f != l => {
                        is_hub = true;
                        break;
                    }
                    _ => {}
                }
            }
            self.roles[v as usize] = if is_hub { Role::Hub } else { Role::Outlier };
        }
    }
}

/// Per-role tallies (Fig. 7 right panel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoleCounts {
    pub cores: usize,
    pub borders: usize,
    pub hubs: usize,
    pub outliers: usize,
    pub unclassified: usize,
}

impl RoleCounts {
    /// Hubs + outliers (the combined bottom band of Fig. 7).
    pub fn noise(&self) -> usize {
        self.hubs + self.outliers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;

    #[test]
    fn canonicalize_renumbers_densely() {
        let mut c = Clustering {
            labels: vec![7, 7, NOISE, 3, 3, 9, UNCLASSIFIED],
            roles: vec![Role::Core; 7],
        };
        let k = c.canonicalize();
        assert_eq!(k, 3);
        assert_eq!(c.labels, vec![0, 0, NOISE, 1, 1, 2, UNCLASSIFIED]);
    }

    #[test]
    fn counts_and_sizes() {
        let c = Clustering {
            labels: vec![0, 0, 1, NOISE, NOISE, UNCLASSIFIED],
            roles: vec![
                Role::Core,
                Role::Border,
                Role::Core,
                Role::Hub,
                Role::Outlier,
                Role::Unclassified,
            ],
        };
        assert_eq!(c.num_clusters(), 2);
        let sizes = c.cluster_sizes();
        assert_eq!(sizes[&0], 2);
        assert_eq!(sizes[&1], 1);
        let rc = c.role_counts();
        assert_eq!(
            (rc.cores, rc.borders, rc.hubs, rc.outliers, rc.unclassified),
            (2, 1, 1, 1, 1)
        );
        assert_eq!(rc.noise(), 2);
    }

    #[test]
    fn noise_cluster_mapping_uses_fresh_label() {
        let c = Clustering {
            labels: vec![0, 2, NOISE, UNCLASSIFIED],
            roles: vec![Role::Core, Role::Core, Role::Outlier, Role::Unclassified],
        };
        let l = c.labels_with_noise_cluster();
        assert_eq!(l, vec![0, 2, 3, 3]);
    }

    #[test]
    fn hub_outlier_classification() {
        // Path: cluster A = {0,1}, cluster B = {3,4}; vertex 2 bridges both
        // (hub); vertex 5 dangles off 4... attach to nothing -> outlier.
        let g =
            GraphBuilder::from_unweighted_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (5, 5)])
                .unwrap();
        let mut c = Clustering {
            labels: vec![0, 0, NOISE, 1, 1, NOISE],
            roles: vec![
                Role::Core,
                Role::Core,
                Role::Outlier,
                Role::Core,
                Role::Core,
                Role::Outlier,
            ],
        };
        c.classify_noise(&g);
        assert_eq!(c.roles[2], Role::Hub);
        assert_eq!(c.roles[5], Role::Outlier);
    }

    #[test]
    fn unclassified_constructor() {
        let c = Clustering::unclassified(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.role_counts().unclassified, 3);
    }
}
