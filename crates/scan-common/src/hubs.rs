//! Packed-bitset neighborhoods for high-degree vertices.
//!
//! On power-law graphs a handful of hubs participate in a large share of all
//! σ evaluations, and each of those merge-joins walks the hub's huge
//! adjacency list end to end. Following the bitmap-intersection idea of
//! GPUSCAN++ and the parallel index-based SCAN line of work, every vertex
//! above a degree threshold gets
//!
//! * a packed `u64` bitset over the vertex space (bit `r` set iff
//!   `r ∈ Γ(hub)`), and
//! * a per-word *rank* (prefix popcount), so the position of a set bit
//!   within the hub's sorted adjacency — and therefore its weight — is
//!   recovered in O(1) with no binary search.
//!
//! σ(small, hub) then costs one bit-test + weight gather per entry of the
//! *small* row instead of a merge over both rows, and σ(hub, hub) becomes a
//! word-wise AND. Both paths visit common neighbors in ascending-id order
//! and sum the same `w_ur·w_vr` products, so the numerators they produce are
//! **bit-identical** to [`crate::kernel::sigma_raw`]'s (proptest-enforced).
//!
//! Memory: 12 bytes per 64 vertices per hub (bitmap word + `u32` rank), so
//! the hub count is capped; see [`HubBitmaps::DEFAULT_MAX_HUBS`].

use anyscan_graph::{CsrGraph, VertexId};

/// Bitsets + rank tables for the highest-degree vertices of a graph.
#[derive(Debug)]
pub struct HubBitmaps {
    /// `hub_slot[v]` = index into `bitmaps`/`ranks`, or `u32::MAX`.
    hub_slot: Vec<u32>,
    /// One bitset of `words_per_row` words per hub.
    bitmaps: Vec<u64>,
    /// `ranks[slot * words_per_row + w]` = number of neighbors of the hub
    /// with id `< 64·w` (prefix popcount of the bitmap row).
    ranks: Vec<u32>,
    words_per_row: usize,
}

impl HubBitmaps {
    /// Most hubs given bitmaps (caps memory at
    /// `12 · ceil(n/64) · DEFAULT_MAX_HUBS` bytes).
    pub const DEFAULT_MAX_HUBS: usize = 128;

    /// Smallest closed degree eligible for a bitmap: below this a merge-join
    /// touches so little memory that the bitmap adds nothing.
    pub const DEFAULT_MIN_DEGREE: usize = 64;

    /// Builds bitmaps for the top-degree vertices of `g` using the default
    /// cap and degree floor.
    pub fn build(g: &CsrGraph) -> Self {
        Self::build_with(g, Self::DEFAULT_MAX_HUBS, Self::DEFAULT_MIN_DEGREE)
    }

    /// Builds bitmaps for at most `max_hubs` vertices of closed degree
    /// `>= min_degree`, chosen by descending degree (ties by ascending id —
    /// deterministic, so two builds of the same graph select the same hubs).
    pub fn build_with(g: &CsrGraph, max_hubs: usize, min_degree: usize) -> Self {
        let n = g.num_vertices();
        let words_per_row = n.div_ceil(64);
        let mut candidates: Vec<VertexId> = g
            .vertices()
            .filter(|&v| g.degree(v) >= min_degree)
            .collect();
        candidates.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        candidates.truncate(max_hubs);

        let mut hub_slot = vec![u32::MAX; n];
        let mut bitmaps = vec![0u64; candidates.len() * words_per_row];
        let mut ranks = vec![0u32; candidates.len() * words_per_row];
        for (slot, &hub) in candidates.iter().enumerate() {
            hub_slot[hub as usize] = slot as u32;
            let row = &mut bitmaps[slot * words_per_row..(slot + 1) * words_per_row];
            for &q in g.neighbor_ids(hub) {
                row[(q / 64) as usize] |= 1u64 << (q % 64);
            }
            let rank_row = &mut ranks[slot * words_per_row..(slot + 1) * words_per_row];
            let mut running = 0u32;
            for (w, rank) in rank_row.iter_mut().enumerate() {
                *rank = running;
                running += row[w].count_ones();
            }
        }
        HubBitmaps {
            hub_slot,
            bitmaps,
            ranks,
            words_per_row,
        }
    }

    /// Number of vertices that received a bitmap.
    pub fn num_hubs(&self) -> usize {
        self.bitmaps
            .len()
            .checked_div(self.words_per_row)
            .unwrap_or(0)
    }

    /// True if `v` has a bitmap.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        self.hub_slot[v as usize] != u32::MAX
    }

    /// The bitmap row of `v`, if `v` is a hub.
    #[inline]
    fn row(&self, v: VertexId) -> Option<(&[u64], &[u32])> {
        let slot = self.hub_slot[v as usize];
        if slot == u32::MAX {
            return None;
        }
        let start = slot as usize * self.words_per_row;
        Some((
            &self.bitmaps[start..start + self.words_per_row],
            &self.ranks[start..start + self.words_per_row],
        ))
    }

    /// Position of neighbor `q` within the hub's sorted adjacency (only
    /// valid when the bit is known set): rank prefix + popcount below `q`.
    #[inline]
    fn position(row: &[u64], ranks: &[u32], q: VertexId) -> usize {
        let word = (q / 64) as usize;
        let below = row[word] & ((1u64 << (q % 64)) - 1);
        ranks[word] as usize + below.count_ones() as usize
    }

    /// σ numerator `Σ_{r∈Γ(u)∩Γ(v)} w_ur·w_vr` via the bitmap of `hub`
    /// against the plain row of `small` (`hub` must be a hub; `small` may be
    /// anything). Visits common neighbors in ascending id, so the sum is
    /// bit-identical to the merge-join's.
    ///
    /// Returns `None` when `hub` has no bitmap.
    #[inline]
    pub fn numerator_small_vs_hub(
        &self,
        g: &CsrGraph,
        small: VertexId,
        hub: VertexId,
    ) -> Option<f64> {
        let (row, ranks) = self.row(hub)?;
        let hub_weights = g.neighbor_weights(hub);
        let ids = g.neighbor_ids(small);
        let weights = g.neighbor_weights(small);
        let mut num = 0.0f64;
        for (i, &r) in ids.iter().enumerate() {
            let word = row[(r / 64) as usize];
            if word & (1u64 << (r % 64)) != 0 {
                let pos = Self::position(row, ranks, r);
                num += weights[i] * hub_weights[pos];
            }
        }
        Some(num)
    }

    /// σ numerator via word-wise AND of two hub bitmaps. Iterates set bits
    /// of the intersection in ascending id (`trailing_zeros` within each
    /// word), so the sum is bit-identical to the merge-join's.
    ///
    /// Returns `None` unless both vertices have bitmaps.
    #[inline]
    pub fn numerator_hub_vs_hub(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<f64> {
        let (row_u, ranks_u) = self.row(u)?;
        let (row_v, ranks_v) = self.row(v)?;
        let wu = g.neighbor_weights(u);
        let wv = g.neighbor_weights(v);
        let mut num = 0.0f64;
        for w in 0..self.words_per_row {
            let mut common = row_u[w] & row_v[w];
            while common != 0 {
                let bit = common.trailing_zeros();
                let r = (w as u32) * 64 + bit;
                let pu = Self::position(row_u, ranks_u, r);
                let pv = Self::position(row_v, ranks_v, r);
                num += wu[pu] * wv[pv];
                common &= common - 1;
            }
        }
        Some(num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference numerator: the merge-join sum sigma_raw computes before
    /// normalizing.
    fn numerator_merge(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let (nu, wu) = (g.neighbor_ids(u), g.neighbor_weights(u));
        let (nv, wv) = (g.neighbor_ids(v), g.neighbor_weights(v));
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        while i < nu.len() && j < nv.len() {
            let (a, b) = (nu[i], nv[j]);
            if a == b {
                num += wu[i] * wv[j];
                i += 1;
                j += 1;
            } else if a < b {
                i += 1;
            } else {
                j += 1;
            }
        }
        num
    }

    #[test]
    fn selection_honors_cap_and_floor() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut rng, 200, 3_000, WeightModel::uniform_default());
        let hubs = HubBitmaps::build_with(&g, 10, 1);
        assert_eq!(hubs.num_hubs(), 10);
        // The selected hubs are exactly a top-10 by (degree desc, id asc).
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        for (rank, &v) in by_degree.iter().enumerate() {
            assert_eq!(hubs.is_hub(v), rank < 10, "vertex {v} rank {rank}");
        }
        // A floor above every degree selects nothing.
        let none = HubBitmaps::build_with(&g, 10, g.num_vertices() + 2);
        assert_eq!(none.num_hubs(), 0);
    }

    #[test]
    fn numerators_bit_identical_to_merge_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi(&mut rng, 150, 2_500, WeightModel::uniform_default());
        let hubs = HubBitmaps::build_with(&g, 20, 4);
        assert!(hubs.num_hubs() > 0);
        let hub_ids: Vec<VertexId> = g.vertices().filter(|&v| hubs.is_hub(v)).collect();
        for &h in &hub_ids {
            for u in g.vertices() {
                let expect = numerator_merge(&g, u, h);
                let got = hubs.numerator_small_vs_hub(&g, u, h).unwrap();
                assert_eq!(got.to_bits(), expect.to_bits(), "small {u} vs hub {h}");
            }
            for &h2 in &hub_ids {
                let expect = numerator_merge(&g, h, h2);
                let got = hubs.numerator_hub_vs_hub(&g, h, h2).unwrap();
                assert_eq!(got.to_bits(), expect.to_bits(), "hub {h} vs hub {h2}");
            }
        }
    }

    #[test]
    fn non_hub_lookups_return_none() {
        let g = GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let hubs = HubBitmaps::build_with(&g, 2, 100);
        assert_eq!(hubs.num_hubs(), 0);
        assert_eq!(hubs.numerator_small_vs_hub(&g, 0, 1), None);
        assert_eq!(hubs.numerator_hub_vs_hub(&g, 0, 1), None);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        let hubs = HubBitmaps::build(&g);
        assert_eq!(hubs.num_hubs(), 0);
    }
}
