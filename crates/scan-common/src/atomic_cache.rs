//! Lock-free symmetric edge-decision cache.
//!
//! anySCAN's block phases may decide the same edge several times: a core
//! check of `u` scans the arc `(u, v)`, a later core check of `v` scans the
//! mirror `(v, u)`, and Step 3's weak-merge pass revisits core–core edges
//! already traversed in Step 1. The weighted σ of Definition 1 is exactly
//! direction-symmetric (the merge-join visits the common neighbors in the
//! same ascending order from both sides, so even the floating-point result
//! is bit-identical), so a verdict reached once holds for both directions
//! forever.
//!
//! This cache keeps one tri-state [`AtomicU8`] per CSR arc — `Unknown`,
//! `Similar`, or `Dissimilar` — aligned with the graph's arc arrays, the
//! concurrent analogue of the sequential per-arc cache pSCAN uses. All
//! accesses are relaxed single-byte atomics: a racing duplicate evaluation
//! writes the same verdict (σ is deterministic), so the worst case is
//! harmlessly repeated work, never a wrong answer. Memory cost is
//! `num_arcs()` bytes (2|E| plus self-loops).
//!
//! Pairs that are not adjacent bypass the cache entirely: SCAN only ever
//! compares neighbors, and the arc arrays have no slot for strangers.

use std::sync::atomic::{AtomicU8, Ordering};

use anyscan_graph::{CsrGraph, VertexId};

const UNKNOWN: u8 = 0;
const SIMILAR: u8 = 1;
const DISSIMILAR: u8 = 2;

/// One tri-state verdict slot per CSR arc; see the module docs.
#[derive(Debug)]
pub struct AtomicEdgeCache {
    slots: Vec<AtomicU8>,
}

impl AtomicEdgeCache {
    /// All-unknown cache sized for `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let mut slots = Vec::with_capacity(g.num_arcs());
        slots.resize_with(g.num_arcs(), || AtomicU8::new(UNKNOWN));
        AtomicEdgeCache { slots }
    }

    /// Global slot index of the arc `(u, v)`, or `None` if `v ∉ Γ(u)`.
    #[inline]
    pub fn arc_index(g: &CsrGraph, u: VertexId, v: VertexId) -> Option<usize> {
        g.neighbor_ids(u)
            .binary_search(&v)
            .ok()
            .map(|local| g.arc_range(u).start + local)
    }

    /// Cached verdict at a slot returned by [`AtomicEdgeCache::arc_index`]:
    /// `Some(similar)` once decided, `None` while unknown.
    #[inline]
    pub fn get(&self, arc: usize) -> Option<bool> {
        match self.slots[arc].load(Ordering::Relaxed) {
            SIMILAR => Some(true),
            DISSIMILAR => Some(false),
            _ => None,
        }
    }

    /// Records `similar` on the arc slot `arc` = `(u, v)` **and** its mirror
    /// `(v, u)`, making the verdict visible to queries from either endpoint.
    #[inline]
    pub fn store_symmetric(
        &self,
        g: &CsrGraph,
        u: VertexId,
        v: VertexId,
        arc: usize,
        similar: bool,
    ) {
        let verdict = if similar { SIMILAR } else { DISSIMILAR };
        self.slots[arc].store(verdict, Ordering::Relaxed);
        if u != v {
            if let Some(mirror) = Self::arc_index(g, v, u) {
                self.slots[mirror].store(verdict, Ordering::Relaxed);
            }
        }
    }

    /// Number of arcs with a known verdict (diagnostics / tests).
    pub fn decided_arcs(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != UNKNOWN)
            .count()
    }

    /// Total arc slots (= `g.num_arcs()` of the graph it was built for).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when built for an edgeless graph.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn starts_unknown_and_sized_to_arcs() {
        let g = triangle();
        let c = AtomicEdgeCache::new(&g);
        assert_eq!(c.len(), g.num_arcs());
        assert_eq!(c.decided_arcs(), 0);
        let arc = AtomicEdgeCache::arc_index(&g, 0, 1).unwrap();
        assert_eq!(c.get(arc), None);
    }

    #[test]
    fn store_is_visible_from_both_directions() {
        let g = triangle();
        let c = AtomicEdgeCache::new(&g);
        let uv = AtomicEdgeCache::arc_index(&g, 0, 1).unwrap();
        let vu = AtomicEdgeCache::arc_index(&g, 1, 0).unwrap();
        c.store_symmetric(&g, 0, 1, uv, true);
        assert_eq!(c.get(uv), Some(true));
        assert_eq!(c.get(vu), Some(true));
        assert_eq!(c.decided_arcs(), 2);

        let wz = AtomicEdgeCache::arc_index(&g, 1, 2).unwrap();
        c.store_symmetric(&g, 1, 2, wz, false);
        assert_eq!(
            c.get(AtomicEdgeCache::arc_index(&g, 2, 1).unwrap()),
            Some(false)
        );
    }

    #[test]
    fn non_adjacent_pairs_have_no_arc() {
        let g = GraphBuilder::from_unweighted_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(AtomicEdgeCache::arc_index(&g, 0, 2), None);
        assert!(AtomicEdgeCache::arc_index(&g, 0, 1).is_some());
    }

    #[test]
    fn concurrent_writers_agree() {
        let g = triangle();
        let c = AtomicEdgeCache::new(&g);
        let uv = AtomicEdgeCache::arc_index(&g, 0, 1).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.store_symmetric(&g, 0, 1, uv, true);
                        assert_eq!(c.get(uv), Some(true));
                    }
                });
            }
        });
        assert_eq!(c.get(uv), Some(true));
    }
}
