//! Hash-indexed neighborhoods: the `O(min(|N_p|, |N_q|))` similarity
//! evaluation the paper mentions as the alternative to the sort-merge join
//! (§II-A, citing pSCAN). Building the index costs `O(Σ deg)` once; each σ
//! then iterates the smaller closed neighborhood and probes the larger
//! one's hash map.
//!
//! The `similarity` Criterion bench compares this against the merge-join on
//! several degree regimes; on laptop-scale graphs the merge-join usually
//! wins until neighborhoods get large and badly size-mismatched, which is
//! why the kernel keeps the merge-join as its default.

use std::collections::HashMap;

use anyscan_graph::{CsrGraph, VertexId, Weight};

/// Per-vertex hash maps from neighbor id to edge weight.
#[derive(Debug)]
pub struct NeighborIndex {
    maps: Vec<HashMap<VertexId, Weight>>,
}

impl NeighborIndex {
    /// Builds the index for all vertices.
    pub fn new(g: &CsrGraph) -> Self {
        let maps = g
            .vertices()
            .map(|v| g.neighbors(v).collect::<HashMap<VertexId, Weight>>())
            .collect();
        NeighborIndex { maps }
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when no vertex is indexed.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Exact weighted structural similarity via hash probing:
    /// iterates the smaller closed neighborhood, probes the larger.
    pub fn sigma(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let (small, large) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let probe = &self.maps[large as usize];
        let mut num = 0.0;
        for (r, w_small) in g.neighbors(small) {
            if let Some(&w_large) = probe.get(&r) {
                num += w_small * w_large;
            }
        }
        num / (g.norm_sq(u) * g.norm_sq(v)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::sigma_raw;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_merge_join_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = erdos_renyi(&mut rng, 150, 1_200, WeightModel::uniform_default());
        let idx = NeighborIndex::new(&g);
        assert_eq!(idx.len(), 150);
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                let a = idx.sigma(&g, u, v);
                let b = sigma_raw(&g, u, v);
                assert!((a - b).abs() < 1e-12, "σ({u},{v}): hash {a} vs merge {b}");
            }
        }
    }

    #[test]
    fn handles_size_mismatch() {
        // Star: hub vs leaf neighborhoods are maximally mismatched.
        let mut b = GraphBuilder::new(101);
        for v in 1..101u32 {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        let idx = NeighborIndex::new(&g);
        let expect = sigma_raw(&g, 0, 1);
        assert!((idx.sigma(&g, 0, 1) - expect).abs() < 1e-12);
        assert!((idx.sigma(&g, 1, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let idx = NeighborIndex::new(&g);
        assert!(idx.is_empty());
    }
}
