//! Hash-indexed neighborhoods: the `O(min(|N_p|, |N_q|))` similarity
//! evaluation the paper mentions as the alternative to the sort-merge join
//! (§II-A, citing pSCAN). Building the index costs `O(Σ deg)` once; each σ
//! then iterates the smaller closed neighborhood and probes the larger
//! one's hash map.
//!
//! The `similarity` Criterion bench compares this against the merge-join on
//! several degree regimes; on laptop-scale graphs the merge-join usually
//! wins until neighborhoods get large and badly size-mismatched. The
//! crossover is captured by [`HASH_PROBE_MISMATCH_RATIO`] /
//! [`prefer_hash_probe`], and [`NeighborIndex::sigma_adaptive`] applies it
//! per pair.
//!
//! For bulk evaluation — σ against *every* neighbor of one vertex, the
//! shape of a similarity-index build — [`NeighborIndex::sigma_row`] stamps
//! the row vertex's closed neighborhood into a dense [`RowScratch`] once
//! and scores each neighbor with a single `O(d_v)` pass, which beats both
//! pairwise strategies (no merge walk over the row side, no hashing).
//!
//! All evaluation strategies visit the common neighbors in the same
//! (ascending id) order, so they accumulate the identical sequence of f64
//! additions and return **bit-identical** results — callers may mix them
//! freely without perturbing ε-threshold decisions.

use std::collections::HashMap;

use anyscan_graph::{CsrGraph, VertexId, Weight};
use anyscan_parallel::parallel_map_adaptive;

use crate::kernel::sigma_raw;

/// Degree-mismatch ratio at which the hash probe overtakes the merge-join.
///
/// The merge-join walks both closed neighborhoods: `O(d_small + d_large)`
/// cheap comparisons. The hash probe walks only the smaller one but pays a
/// hash lookup per step: `O(d_small)` expensive probes. With a probe costing
/// roughly an order of magnitude more than a merge step, probing wins once
/// `d_large ≥ HASH_PROBE_MISMATCH_RATIO · d_small` — i.e. once the saved
/// `d_large` walk outweighs the per-step overhead. The default of 16 is the
/// measured crossover region of the `similarity` Criterion bench on the
/// paper-scale generators (hub-vs-leaf star probes win well before 16×;
/// balanced pairs never do).
pub const HASH_PROBE_MISMATCH_RATIO: usize = 16;

/// Whether a σ(u, v) evaluation over closed degrees `deg_u` and `deg_v`
/// should use the hash probe instead of the merge-join, per
/// [`HASH_PROBE_MISMATCH_RATIO`].
#[inline]
pub fn prefer_hash_probe(deg_u: usize, deg_v: usize) -> bool {
    prefer_hash_probe_with(HASH_PROBE_MISMATCH_RATIO, deg_u, deg_v)
}

/// [`prefer_hash_probe`] with an explicit crossover ratio — the tunable
/// behind `AnyScanConfig::probe_ratio` / `--probe-ratio`.
#[inline]
pub fn prefer_hash_probe_with(ratio: usize, deg_u: usize, deg_v: usize) -> bool {
    let (small, large) = if deg_u <= deg_v {
        (deg_u, deg_v)
    } else {
        (deg_v, deg_u)
    };
    large >= small.saturating_mul(ratio)
}

/// Per-vertex hash maps from neighbor id to edge weight.
#[derive(Debug)]
pub struct NeighborIndex {
    maps: Vec<HashMap<VertexId, Weight>>,
    /// Degree-mismatch crossover applied by [`NeighborIndex::sigma_adaptive`]
    /// and [`NeighborIndex::sigma_row`] ([`HASH_PROBE_MISMATCH_RATIO`] by
    /// default).
    probe_ratio: usize,
}

impl NeighborIndex {
    /// Builds the index for all vertices on the persistent worker pool,
    /// using every available hardware thread. Each vertex's map is built
    /// independently, so the result is identical to a sequential build.
    pub fn new(g: &CsrGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_threads(g, threads)
    }

    /// Builds the index with an explicit worker count (`<= 1` runs on the
    /// calling thread).
    pub fn with_threads(g: &CsrGraph, threads: usize) -> Self {
        let maps = parallel_map_adaptive(threads, g.num_vertices(), |v| {
            g.neighbors(v as VertexId)
                .collect::<HashMap<VertexId, Weight>>()
        });
        NeighborIndex {
            maps,
            probe_ratio: HASH_PROBE_MISMATCH_RATIO,
        }
    }

    /// Builder-style override of the merge-vs-probe crossover ratio (the
    /// promoted `HASH_PROBE_MISMATCH_RATIO` tunable). Results are
    /// bit-identical at any ratio — only which strategy computes them moves.
    pub fn with_probe_ratio(mut self, ratio: usize) -> Self {
        self.probe_ratio = ratio.max(1);
        self
    }

    /// The crossover ratio this index applies.
    pub fn probe_ratio(&self) -> usize {
        self.probe_ratio
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when no vertex is indexed.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Exact weighted structural similarity via hash probing:
    /// iterates the smaller closed neighborhood, probes the larger.
    pub fn sigma(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let (small, large) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let probe = &self.maps[large as usize];
        let mut num = 0.0;
        for (r, w_small) in g.neighbors(small) {
            if let Some(&w_large) = probe.get(&r) {
                num += w_small * w_large;
            }
        }
        num / (g.norm_sq(u) * g.norm_sq(v)).sqrt()
    }

    /// Exact σ choosing hash probe vs merge-join per [`prefer_hash_probe`].
    /// Bit-identical to [`sigma_raw`] either way (see the module docs).
    pub fn sigma_adaptive(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        if prefer_hash_probe_with(self.probe_ratio, g.degree(u), g.degree(v)) {
            self.sigma(g, u, v)
        } else {
            sigma_raw(g, u, v)
        }
    }

    /// Appends σ(u, v) for every closed neighbor `v > u` of `u` to `out`,
    /// in adjacency (ascending id) order — the bulk evaluation of the
    /// similarity-index build, where each undirected edge is scored from
    /// its lower endpoint.
    ///
    /// `u`'s closed neighborhood is stamped into the dense `scratch` once;
    /// each `v` is then scored with a single pass over its own adjacency,
    /// `O(d_v)` instead of the merge-join's `O(d_u + d_v)`. Badly
    /// size-mismatched pairs still divert to the hash probe per
    /// [`prefer_hash_probe`] (scanning all of a hub's adjacency from a leaf
    /// row would be worse than probing). Common neighbors are visited in
    /// ascending id order on every path, and the dense pass's extra `+ 0.0`
    /// terms cannot perturb a partial sum that is never `-0.0`, so the
    /// results are bit-identical to [`sigma_raw`].
    ///
    /// Returns the number of pairs that diverted to the hash probe, so
    /// callers can attribute σ work to the probe vs. batched-row kernel
    /// paths in telemetry.
    pub fn sigma_row(
        &self,
        g: &CsrGraph,
        u: VertexId,
        scratch: &mut RowScratch,
        out: &mut Vec<f64>,
    ) -> u64 {
        assert!(
            scratch.weight.len() >= g.num_vertices(),
            "RowScratch sized for {} vertices, graph has {}",
            scratch.weight.len(),
            g.num_vertices()
        );
        let nu = g.neighbor_ids(u);
        let wu = g.neighbor_weights(u);
        let tag = scratch.next_tag();
        for (i, &r) in nu.iter().enumerate() {
            scratch.weight[r as usize] = wu[i];
            scratch.stamp[r as usize] = tag;
        }
        let du = nu.len();
        let norm_u = g.norm_sq(u);
        let mut probe_diversions = 0u64;
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbor_ids(v);
            let s = if prefer_hash_probe_with(self.probe_ratio, du, nv.len()) {
                probe_diversions += 1;
                self.sigma(g, u, v)
            } else {
                let wv = g.neighbor_weights(v);
                let mut num = 0.0f64;
                // SAFETY: `j < nv.len()` bounds `nv`/`wv` (parallel CSR
                // slices), and every neighbor id is `< num_vertices()`,
                // which the assert above bounds against the scratch arrays.
                unsafe {
                    for j in 0..nv.len() {
                        let r = *nv.get_unchecked(j) as usize;
                        let m = if *scratch.stamp.get_unchecked(r) == tag {
                            *scratch.weight.get_unchecked(r)
                        } else {
                            0.0
                        };
                        num += *wv.get_unchecked(j) * m;
                    }
                }
                num / (norm_u * g.norm_sq(v)).sqrt()
            };
            out.push(s);
        }
        probe_diversions
    }
}

/// Reusable dense scratch for [`NeighborIndex::sigma_row`]: one weight and
/// one stamp slot per vertex. Allocate once per worker and reuse it across
/// every row evaluated there; stamping makes clearing between rows free.
#[derive(Debug)]
pub struct RowScratch {
    weight: Vec<Weight>,
    stamp: Vec<u32>,
    tag: u32,
}

impl RowScratch {
    /// A scratch for graphs of up to `n` vertices.
    pub fn new(n: usize) -> Self {
        RowScratch {
            weight: vec![0.0; n],
            stamp: vec![u32::MAX; n],
            tag: 0,
        }
    }

    /// Claims a fresh tag; on (u32) wrap-around all stamps are cleared so a
    /// recycled tag can never alias a stale row.
    fn next_tag(&mut self) -> u32 {
        if self.tag == u32::MAX {
            self.stamp.fill(u32::MAX);
            self.tag = 0;
        }
        let t = self.tag;
        self.tag += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_merge_join_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = erdos_renyi(&mut rng, 150, 1_200, WeightModel::uniform_default());
        let idx = NeighborIndex::new(&g);
        assert_eq!(idx.len(), 150);
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                let a = idx.sigma(&g, u, v);
                let b = sigma_raw(&g, u, v);
                assert!((a - b).abs() < 1e-12, "σ({u},{v}): hash {a} vs merge {b}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = erdos_renyi(&mut rng, 300, 2_400, WeightModel::uniform_default());
        let seq = NeighborIndex::with_threads(&g, 1);
        let par = NeighborIndex::with_threads(&g, 4);
        assert_eq!(seq.len(), par.len());
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                assert_eq!(
                    seq.sigma(&g, u, v).to_bits(),
                    par.sigma(&g, u, v).to_bits(),
                    "σ({u},{v}) differs between 1- and 4-thread builds"
                );
            }
        }
    }

    #[test]
    fn handles_size_mismatch() {
        // Star: hub vs leaf neighborhoods are maximally mismatched.
        let mut b = GraphBuilder::new(101);
        for v in 1..101u32 {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        let idx = NeighborIndex::new(&g);
        let expect = sigma_raw(&g, 0, 1);
        assert!((idx.sigma(&g, 0, 1) - expect).abs() < 1e-12);
        assert!((idx.sigma(&g, 1, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn crossover_threshold_is_pinned() {
        // Balanced pairs stay on the merge-join.
        assert!(!prefer_hash_probe(10, 10));
        assert!(!prefer_hash_probe(100, 120));
        // Just below the documented ratio: still merge-join.
        assert!(!prefer_hash_probe(10, 10 * HASH_PROBE_MISMATCH_RATIO - 1));
        assert!(!prefer_hash_probe(10 * HASH_PROBE_MISMATCH_RATIO - 1, 10));
        // At and beyond the ratio: hash probe, from either argument order.
        assert!(prefer_hash_probe(10, 10 * HASH_PROBE_MISMATCH_RATIO));
        assert!(prefer_hash_probe(10 * HASH_PROBE_MISMATCH_RATIO, 10));
        assert!(prefer_hash_probe(2, 1000));
        // Degenerate degrees never overflow.
        assert!(prefer_hash_probe(0, 0));
        assert!(prefer_hash_probe(usize::MAX, 1));
    }

    #[test]
    fn probe_ratio_override_moves_the_crossover_not_the_values() {
        // prefer_hash_probe_with generalizes the pinned default...
        assert!(!prefer_hash_probe_with(4, 10, 39));
        assert!(prefer_hash_probe_with(4, 10, 40));
        assert!(prefer_hash_probe_with(1, 10, 10));
        // ...and an index built with a different ratio diverts different
        // pairs but returns bit-identical σ. Shape: 0 meets moderately
        // wider neighbors (4× mismatch) — under the default crossover but
        // over an eager ratio of 2.
        let mut b = GraphBuilder::new(34);
        for v in 1..4u32 {
            b.add_edge(0, v, 1.0);
            for leaf in 0..10u32 {
                b.add_edge(v, 4 + (v - 1) * 10 + leaf, 0.8);
            }
        }
        let g = b.build();
        let default_idx = NeighborIndex::new(&g);
        let eager_idx = NeighborIndex::new(&g).with_probe_ratio(2);
        assert_eq!(default_idx.probe_ratio(), HASH_PROBE_MISMATCH_RATIO);
        assert_eq!(eager_idx.probe_ratio(), 2);
        let mut scratch = RowScratch::new(g.num_vertices());
        let mut row_a = Vec::new();
        let mut row_b = Vec::new();
        let div_a = default_idx.sigma_row(&g, 0, &mut scratch, &mut row_a);
        let div_b = eager_idx.sigma_row(&g, 0, &mut scratch, &mut row_b);
        assert_ne!(div_a, div_b, "different ratios must route differently");
        for (a, b) in row_a.iter().zip(&row_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sigma_adaptive_is_bit_identical_to_merge_join() {
        // Star plus a small clique: the hub/leaf pairs cross the ratio, the
        // clique pairs stay under it, so both paths are exercised.
        let mut b = GraphBuilder::new(204);
        for v in 1..200u32 {
            b.add_edge(0, v, 0.7);
        }
        for u in 200..204u32 {
            for v in (u + 1)..204 {
                b.add_edge(u, v, 0.9);
            }
        }
        b.add_edge(0, 200, 0.3);
        let g = b.build();
        let idx = NeighborIndex::new(&g);
        let mut probed = 0;
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                if prefer_hash_probe(g.degree(u), g.degree(v)) {
                    probed += 1;
                }
                assert_eq!(
                    idx.sigma_adaptive(&g, u, v).to_bits(),
                    sigma_raw(&g, u, v).to_bits(),
                    "σ({u},{v}) not bit-identical across strategies"
                );
            }
        }
        assert!(probed > 0, "the hash-probe path was never taken");
    }

    #[test]
    fn sigma_row_is_bit_identical_to_merge_join() {
        // Random graph: dense-pass path. One scratch reused across rows
        // checks that stamping isolates consecutive rows.
        let mut rng = StdRng::seed_from_u64(41);
        let g = erdos_renyi(&mut rng, 180, 1_500, WeightModel::uniform_default());
        let idx = NeighborIndex::new(&g);
        let mut scratch = RowScratch::new(g.num_vertices());
        for u in g.vertices() {
            let mut row = Vec::new();
            idx.sigma_row(&g, u, &mut scratch, &mut row);
            let upper: Vec<_> = g.neighbor_ids(u).iter().filter(|&&v| v > u).collect();
            assert_eq!(row.len(), upper.len());
            for (&&v, s) in upper.iter().zip(&row) {
                assert_eq!(
                    s.to_bits(),
                    sigma_raw(&g, u, v).to_bits(),
                    "σ({u},{v}) row evaluation not bit-identical"
                );
            }
        }
    }

    #[test]
    fn sigma_row_takes_the_probe_path_for_skewed_pairs() {
        // Star plus clique (as above): leaf rows meet the hub and divert to
        // the hash probe; the clique stays on the dense pass.
        let mut b = GraphBuilder::new(204);
        for v in 1..200u32 {
            b.add_edge(0, v, 0.7);
        }
        for u in 200..204u32 {
            for v in (u + 1)..204 {
                b.add_edge(u, v, 0.9);
            }
        }
        b.add_edge(0, 200, 0.3);
        let g = b.build();
        let idx = NeighborIndex::new(&g);
        let mut scratch = RowScratch::new(g.num_vertices());
        let mut total_diversions = 0u64;
        for u in g.vertices() {
            let mut row = Vec::new();
            let diverted = idx.sigma_row(&g, u, &mut scratch, &mut row);
            assert!(diverted as usize <= row.len());
            let expect = g
                .neighbor_ids(u)
                .iter()
                .filter(|&&v| v > u && prefer_hash_probe(g.degree(u), g.degree(v)))
                .count() as u64;
            assert_eq!(diverted, expect, "diversion count for row {u}");
            total_diversions += diverted;
            let upper: Vec<_> = g.neighbor_ids(u).iter().filter(|&&v| v > u).collect();
            for (&&v, s) in upper.iter().zip(&row) {
                assert_eq!(s.to_bits(), sigma_raw(&g, u, v).to_bits());
            }
        }
        assert!(total_diversions > 0, "the probe diversion was never taken");
    }

    #[test]
    fn row_scratch_survives_tag_wraparound() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut rng, 30, 120, WeightModel::uniform_default());
        let idx = NeighborIndex::new(&g);
        let mut scratch = RowScratch::new(g.num_vertices());
        scratch.tag = u32::MAX - 1; // two rows away from wrapping
        for u in g.vertices() {
            let mut row = Vec::new();
            idx.sigma_row(&g, u, &mut scratch, &mut row);
            for (i, &v) in g.neighbor_ids(u).iter().filter(|&&v| v > u).enumerate() {
                assert_eq!(row[i].to_bits(), sigma_raw(&g, u, v).to_bits());
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let idx = NeighborIndex::new(&g);
        assert!(idx.is_empty());
    }
}
