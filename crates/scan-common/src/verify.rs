//! The formal notion of SCAN-result equivalence used by the test suite.
//!
//! Lemma 4 of the paper states anySCAN's final result is *identical* to
//! SCAN's, with one caveat: "a shared-border vertex may be assigned to
//! different clusters according to the examining order of vertices" — true
//! of SCAN itself. Two results are therefore equivalent iff:
//!
//! 1. they agree on which vertices are cores;
//! 2. the partitions of the *core* vertices into clusters are identical;
//! 3. every border vertex is attached to a cluster of one of its core
//!    ε-neighbors (and both results agree on who is a border);
//! 4. they agree on which vertices are noise.
//!
//! Hub/outlier roles follow deterministically from the labels, so 1–4 pin
//! them too (up to the same shared-border caveat).

use std::collections::HashMap;

use anyscan_graph::{CsrGraph, VertexId};

use crate::kernel::sigma_raw;
use crate::params::ScanParams;
use crate::result::{Clustering, Role, NOISE};

/// Checks the four equivalence conditions; returns a human-readable reason
/// on the first violation.
pub fn check_scan_equivalent(
    g: &CsrGraph,
    params: ScanParams,
    a: &Clustering,
    b: &Clustering,
) -> Result<(), String> {
    if a.len() != b.len() || a.len() != g.num_vertices() {
        return Err(format!(
            "size mismatch: graph {}, a {}, b {}",
            g.num_vertices(),
            a.len(),
            b.len()
        ));
    }

    // 1. Same cores.
    for v in 0..g.num_vertices() as VertexId {
        let ca = a.roles[v as usize] == Role::Core;
        let cb = b.roles[v as usize] == Role::Core;
        if ca != cb {
            return Err(format!("core disagreement at vertex {v}: a={ca}, b={cb}"));
        }
    }

    // 2. Same partition of the cores: the label-pair bijection must hold.
    let mut ab: HashMap<u32, u32> = HashMap::new();
    let mut ba: HashMap<u32, u32> = HashMap::new();
    for v in 0..g.num_vertices() as VertexId {
        if a.roles[v as usize] != Role::Core {
            continue;
        }
        let (la, lb) = (a.labels[v as usize], b.labels[v as usize]);
        if la == NOISE || lb == NOISE {
            return Err(format!("core vertex {v} labeled noise (a={la}, b={lb})"));
        }
        if *ab.entry(la).or_insert(lb) != lb || *ba.entry(lb).or_insert(la) != la {
            return Err(format!("core partition mismatch at vertex {v}"));
        }
    }

    // 3 & 4. Border/noise agreement, and border attachments must be
    // justified by some core ε-neighbor in *both* results.
    for v in 0..g.num_vertices() as VertexId {
        if a.roles[v as usize] == Role::Core {
            continue;
        }
        let noise_a = a.labels[v as usize] == NOISE;
        let noise_b = b.labels[v as usize] == NOISE;
        if noise_a != noise_b {
            return Err(format!(
                "noise disagreement at vertex {v}: a={noise_a}, b={noise_b}"
            ));
        }
        if noise_a {
            continue;
        }
        for (c, label) in [(a, a.labels[v as usize]), (b, b.labels[v as usize])] {
            let justified = g.neighbor_ids(v).iter().any(|&q| {
                q != v
                    && c.roles[q as usize] == Role::Core
                    && c.labels[q as usize] == label
                    && sigma_raw(g, v, q) >= params.epsilon - 1e-12
            });
            if !justified {
                return Err(format!(
                    "border vertex {v} attached to cluster {label} without a core ε-neighbor there"
                ));
            }
        }
    }
    Ok(())
}

/// Panicking wrapper for tests.
pub fn assert_scan_equivalent(g: &CsrGraph, params: ScanParams, a: &Clustering, b: &Clustering) {
    if let Err(e) = check_scan_equivalent(g, params, a, b) {
        panic!("SCAN results differ: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;

    /// Two triangles joined by a path through vertex 4 (the border).
    fn two_triangles() -> CsrGraph {
        GraphBuilder::from_unweighted_edges(
            7,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 3),
                (3, 5),
                (6, 5),
            ],
        )
        .unwrap()
    }

    fn mk(labels: Vec<u32>, roles: Vec<Role>) -> Clustering {
        Clustering { labels, roles }
    }

    #[test]
    fn identical_results_pass() {
        let g = two_triangles();
        let p = ScanParams::new(0.5, 3);
        let c = mk(
            vec![0, 0, 0, 1, NOISE, 1, 1],
            vec![
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Outlier,
                Role::Core,
                Role::Core,
            ],
        );
        check_scan_equivalent(&g, p, &c, &c).unwrap();
    }

    #[test]
    fn relabeled_results_pass() {
        let g = two_triangles();
        let p = ScanParams::new(0.5, 3);
        let a = mk(
            vec![0, 0, 0, 1, NOISE, 1, 1],
            vec![Role::Core; 7]
                .into_iter()
                .enumerate()
                .map(|(i, r)| if i == 4 { Role::Outlier } else { r })
                .collect(),
        );
        let mut b = a.clone();
        for l in b.labels.iter_mut() {
            if *l != NOISE {
                *l = 10 - *l; // bijective relabeling
            }
        }
        check_scan_equivalent(&g, p, &a, &b).unwrap();
    }

    #[test]
    fn core_disagreement_fails() {
        let g = two_triangles();
        let p = ScanParams::new(0.5, 3);
        let a = mk(
            vec![0, 0, 0, 1, NOISE, 1, 1],
            vec![
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Outlier,
                Role::Core,
                Role::Core,
            ],
        );
        let mut b = a.clone();
        b.roles[0] = Role::Border;
        let err = check_scan_equivalent(&g, p, &a, &b).unwrap_err();
        assert!(err.contains("core disagreement"));
    }

    #[test]
    fn merged_clusters_fail() {
        let g = two_triangles();
        let p = ScanParams::new(0.5, 3);
        let a = mk(
            vec![0, 0, 0, 1, NOISE, 1, 1],
            vec![
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Outlier,
                Role::Core,
                Role::Core,
            ],
        );
        let mut b = a.clone();
        for l in b.labels.iter_mut() {
            if *l != NOISE {
                *l = 0; // collapse both clusters
            }
        }
        let err = check_scan_equivalent(&g, p, &a, &b).unwrap_err();
        assert!(err.contains("partition mismatch"), "{err}");
    }

    #[test]
    fn unjustified_border_fails() {
        let g = two_triangles();
        let p = ScanParams::new(0.5, 3);
        // Pretend 4 is a border of cluster 0 although σ(4, ·) < ε there.
        let a = mk(
            vec![0, 0, 0, 1, NOISE, 1, 1],
            vec![
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Core,
                Role::Outlier,
                Role::Core,
                Role::Core,
            ],
        );
        let mut b = a.clone();
        b.labels[4] = 0;
        b.roles[4] = Role::Border;
        // Noise/border disagreement triggers first.
        assert!(check_scan_equivalent(&g, p, &a, &b).is_err());
    }
}
