//! Machinery shared by every SCAN-family algorithm in this workspace.
//!
//! * [`ScanParams`] — the (ε, μ) parameter pair of SCAN (Definition 2/3).
//! * [`kernel::Kernel`] — the weighted structural-similarity kernel
//!   (Definition 1) with Lemma-5 filtering, early accept/reject, range
//!   queries and early-exit core checks, all instrumented with the counters
//!   Figures 7 and 12 report.
//! * [`atomic_cache::AtomicEdgeCache`] — lock-free symmetric per-arc
//!   verdict cache the kernel can consult so no undirected edge is
//!   merge-joined twice across steps or directions.
//! * [`hubs::HubBitmaps`] — packed `u64` neighbor bitsets (plus prefix
//!   popcount ranks) for high-degree vertices, turning σ against a hub into
//!   a word-wise AND / bit-test + weight gather that is bit-identical to
//!   the merge-join.
//! * [`result::Clustering`] — the common output type: per-vertex cluster
//!   labels and roles (core / border / hub / outlier).
//! * [`verify::assert_scan_equivalent`] — the formal notion of "two runs
//!   produce the same SCAN result" used by the exactness test-suite
//!   (identical cores, identical core partition, consistent borders — the
//!   paper notes shared borders may legitimately differ, Lemma 4).

pub mod atomic_cache;
pub mod hubs;
pub mod index;
pub mod kernel;
pub mod params;
pub mod result;
pub mod sketch;
pub mod verify;

pub use atomic_cache::AtomicEdgeCache;
pub use hubs::HubBitmaps;
pub use index::{
    prefer_hash_probe, prefer_hash_probe_with, NeighborIndex, RowScratch, HASH_PROBE_MISMATCH_RATIO,
};
pub use kernel::{BatchScratch, Kernel, SimStats};
pub use params::ScanParams;
pub use result::{Clustering, Role, RoleCounts, NOISE, UNCLASSIFIED};
pub use sketch::{NeighborhoodSketches, SketchMode};
