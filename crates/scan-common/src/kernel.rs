//! The weighted structural-similarity kernel (Definition 1) and its
//! optimizations (Section III-D), instrumented for the work-efficiency
//! figures.

use std::sync::atomic::{AtomicU64, Ordering};

use anyscan_graph::{CsrGraph, VertexId};

use crate::atomic_cache::AtomicEdgeCache;
use crate::params::ScanParams;

/// Snapshot of the kernel's evaluation counters.
///
/// `sigma_evals` is the quantity plotted on the left of Fig. 7 (the number of
/// structural-similarity calculations an algorithm performs); SCAN++'s
/// *similarity sharing* evaluations are tracked separately (`shared_evals`),
/// as the figure stacks them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Merge-join σ evaluations actually entered (full or early-stopped).
    pub sigma_evals: u64,
    /// Pairs dismissed by the O(1) Lemma-5 filter without a merge-join.
    pub lemma5_filtered: u64,
    /// SCAN++-style similarity-sharing evaluations (two-hop inference).
    pub shared_evals: u64,
    /// Decisions answered by the symmetric edge-decision cache without any
    /// similarity work (zero unless the kernel was built with the cache).
    pub cache_hits: u64,
    /// Adjacent-pair decisions that consulted the cache, found nothing, and
    /// had to be computed and stored (zero without the cache).
    pub cache_misses: u64,
    /// Merge-joins accepted before exhausting either neighbor list (the
    /// early-accept optimization fired; subset of `sigma_evals`).
    pub early_accepts: u64,
    /// Merge-joins rejected by the remaining-suffix bound (the early-reject
    /// optimization fired; subset of `sigma_evals`).
    pub early_rejects: u64,
}

impl SimStats {
    /// Total pairs decided by any means. `cache_misses`, `early_accepts`
    /// and `early_rejects` classify decisions already counted in the four
    /// terms below, so they are deliberately not summed here.
    pub fn total_decided(&self) -> u64 {
        self.sigma_evals + self.lemma5_filtered + self.shared_evals + self.cache_hits
    }
}

/// Outcome of an ε-similarity decision, distinguishing how it was reached
/// (used by tests asserting the optimizations fire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsDecision {
    /// Lemma-5 filter proved σ < ε in O(1).
    FilteredOut,
    /// Merge-join concluded σ ≥ ε (possibly early-accepted).
    Similar,
    /// Merge-join concluded σ < ε.
    Dissimilar,
}

/// The structural-similarity kernel: every σ evaluation in the workspace
/// funnels through one of these methods, so the instrumentation is complete
/// by construction.
///
/// The kernel is `Sync`; counters are relaxed atomics so the parallel block
/// phases can share one kernel without locks.
#[derive(Debug)]
pub struct Kernel<'g> {
    graph: &'g CsrGraph,
    params: ScanParams,
    /// Lemma-5 O(1) prefilter + early accept inside the merge-join
    /// (Section III-D). Disabled for the plain SCAN baseline and the
    /// filter ablation.
    optimizations: bool,
    /// Symmetric per-arc verdict cache (see [`AtomicEdgeCache`]); `None`
    /// disables caching (the ablation and the memory-frugal path).
    cache: Option<AtomicEdgeCache>,
    sigma_evals: AtomicU64,
    lemma5_filtered: AtomicU64,
    shared_evals: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    early_accepts: AtomicU64,
    early_rejects: AtomicU64,
}

impl<'g> Kernel<'g> {
    /// Kernel with the paper's optimizations enabled (the default for
    /// anySCAN, SCAN-B and pSCAN).
    pub fn new(graph: &'g CsrGraph, params: ScanParams) -> Self {
        Self::with_optimizations(graph, params, true)
    }

    /// Kernel with the Section III-D optimizations toggled explicitly.
    pub fn with_optimizations(
        graph: &'g CsrGraph,
        params: ScanParams,
        optimizations: bool,
    ) -> Self {
        Kernel {
            graph,
            params,
            optimizations,
            cache: None,
            sigma_evals: AtomicU64::new(0),
            lemma5_filtered: AtomicU64::new(0),
            shared_evals: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            early_accepts: AtomicU64::new(0),
            early_rejects: AtomicU64::new(0),
        }
    }

    /// Builder-style toggle for the lock-free symmetric edge-decision cache
    /// (O(`num_arcs`) bytes). With it on, every [`Kernel::eps_decision`] on
    /// an adjacent pair is answered from the cache when the verdict is
    /// already known — from either direction — and recorded otherwise.
    /// Results are unchanged either way; only the work counters differ.
    pub fn with_edge_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| AtomicEdgeCache::new(self.graph));
        self
    }

    /// The edge-decision cache, when enabled.
    pub fn edge_cache(&self) -> Option<&AtomicEdgeCache> {
        self.cache.as_ref()
    }

    /// The graph this kernel evaluates on.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The (ε, μ) parameters.
    pub fn params(&self) -> ScanParams {
        self.params
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SimStats {
        SimStats {
            sigma_evals: self.sigma_evals.load(Ordering::Relaxed),
            lemma5_filtered: self.lemma5_filtered.load(Ordering::Relaxed),
            shared_evals: self.shared_evals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            early_accepts: self.early_accepts.load(Ordering::Relaxed),
            early_rejects: self.early_rejects.load(Ordering::Relaxed),
        }
    }

    /// Records a SCAN++ similarity-sharing evaluation (called by that
    /// baseline; kept here so all counters live in one place).
    pub fn record_shared_eval(&self) {
        self.shared_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact weighted structural similarity
    /// `σ(u,v) = Σ_{r∈Γ(u)∩Γ(v)} w_ur·w_vr / sqrt(l_u·l_v)` (Definition 1).
    /// Always runs the full merge-join (no early stop) and counts one
    /// evaluation.
    pub fn sigma(&self, u: VertexId, v: VertexId) -> f64 {
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        sigma_raw(self.graph, u, v)
    }

    /// Decides `σ(u,v) ≥ ε`, applying (when enabled) the Lemma-5 O(1)
    /// prefilter, early accept once the accumulating numerator crosses the
    /// threshold, and early reject once it provably cannot reach it.
    ///
    /// With the edge-decision cache enabled and `v ∈ Γ(u)`, a previously
    /// reached verdict — from either direction — is returned without any
    /// similarity work (counted in `cache_hits`). A cached dissimilar
    /// verdict is reported as [`EpsDecision::Dissimilar`] even if the
    /// original decision was [`EpsDecision::FilteredOut`]; callers only
    /// branch on similar-vs-not, so results are unaffected.
    #[inline]
    pub fn eps_decision(&self, u: VertexId, v: VertexId) -> EpsDecision {
        let Some(cache) = &self.cache else {
            return self.eps_decision_uncached(u, v);
        };
        let Some(arc) = AtomicEdgeCache::arc_index(self.graph, u, v) else {
            // Non-adjacent pair: no arc slot; decide directly.
            return self.eps_decision_uncached(u, v);
        };
        if let Some(similar) = cache.get(arc) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return if similar {
                EpsDecision::Similar
            } else {
                EpsDecision::Dissimilar
            };
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let decision = self.eps_decision_uncached(u, v);
        cache.store_symmetric(
            self.graph,
            u,
            v,
            arc,
            matches!(decision, EpsDecision::Similar),
        );
        decision
    }

    /// The Section III-D decision procedure itself, never touching the
    /// edge-decision cache.
    fn eps_decision_uncached(&self, u: VertexId, v: VertexId) -> EpsDecision {
        let g = self.graph;
        let lu = g.norm_sq(u);
        let lv = g.norm_sq(v);
        let threshold = self.params.epsilon * (lu * lv).sqrt();

        if self.optimizations {
            // Lemma 5: σ̂(u,v) = min(|Γ_u|,|Γ_v|)·max(w_u,w_v); if
            // σ̂² < ε²·l_u·l_v then σ < ε without touching the edge arrays.
            let min_deg = g.degree(u).min(g.degree(v)) as f64;
            let max_w = g.max_weight(u).max(g.max_weight(v));
            let sigma_hat = min_deg * max_w;
            if sigma_hat * sigma_hat < self.params.epsilon * self.params.epsilon * lu * lv {
                self.lemma5_filtered.fetch_add(1, Ordering::Relaxed);
                return EpsDecision::FilteredOut;
            }
        }

        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        let nu = g.neighbor_ids(u);
        let wu = g.neighbor_weights(u);
        let nv = g.neighbor_ids(v);
        let wv = g.neighbor_weights(v);
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        if self.optimizations {
            // Early accept / early reject: track the best the remaining
            // suffixes could still contribute.
            let max_w = g.max_weight(u) * g.max_weight(v);
            loop {
                if num >= threshold {
                    if i < nu.len() && j < nv.len() {
                        self.early_accepts.fetch_add(1, Ordering::Relaxed);
                    }
                    return EpsDecision::Similar;
                }
                if i >= nu.len() || j >= nv.len() {
                    break;
                }
                let remaining = (nu.len() - i).min(nv.len() - j) as f64;
                if num + remaining * max_w < threshold {
                    self.early_rejects.fetch_add(1, Ordering::Relaxed);
                    return EpsDecision::Dissimilar;
                }
                let (a, b) = (nu[i], nv[j]);
                if a == b {
                    num += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        } else {
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                if a == b {
                    num += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
        if num >= threshold {
            EpsDecision::Similar
        } else {
            EpsDecision::Dissimilar
        }
    }

    /// Boolean form of [`Kernel::eps_decision`].
    pub fn is_eps_neighbor(&self, u: VertexId, v: VertexId) -> bool {
        matches!(self.eps_decision(u, v), EpsDecision::Similar)
    }

    /// Range query: the full structural neighborhood
    /// `N^ε_p = {q ∈ Γ(p) | σ(p,q) ≥ ε}` (includes `p` itself, since
    /// σ(p,p) = 1). This is the neighborhood query of anySCAN's Step 1.
    pub fn eps_neighborhood(&self, p: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.eps_neighborhood_into(p, &mut out);
        out
    }

    /// [`Kernel::eps_neighborhood`] into a caller-owned buffer (cleared
    /// first). Lets hot parallel loops reuse one scratch vector per worker
    /// instead of allocating per queried vertex.
    pub fn eps_neighborhood_into(&self, p: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        for &q in self.graph.neighbor_ids(p) {
            if q == p || self.is_eps_neighbor(p, q) {
                out.push(q);
            }
        }
    }

    /// Early-exit core check (Steps 2/3 of anySCAN).
    ///
    /// If `known` already-confirmed ε-neighbors (including `p` itself — the
    /// paper's `nei(p)`, which starts at 1) reach μ, the answer is yes with
    /// no similarity work at all. Otherwise the neighborhood is rescanned
    /// from scratch (a partial `known` cannot safely seed a rescan: the scan
    /// would recount the same neighbors), stopping as soon as μ ε-neighbors
    /// are confirmed or provably unreachable.
    pub fn core_check_early_exit(&self, p: VertexId, known: usize) -> bool {
        if known >= self.params.mu {
            return true;
        }
        self.core_check_with_skip(p, 1, |_| false)
    }

    /// Core check that *does* exploit partial knowledge: `confirmed` counts
    /// ε-neighbors already established (including `p` itself), and `skip`
    /// must return true exactly for the neighbors whose ε-relation to `p` is
    /// already decided (so the scan neither revisits nor recounts them).
    ///
    /// anySCAN uses this with `confirmed = 1 + |SN_p|` and `skip` matching
    /// the representatives of the super-nodes containing `p`: membership of
    /// `p` in `sn(c)` certifies σ(p,c) ≥ ε, bought during Step 1.
    pub fn core_check_with_skip(
        &self,
        p: VertexId,
        confirmed: usize,
        skip: impl Fn(VertexId) -> bool,
    ) -> bool {
        let mu = self.params.mu;
        let mut count = confirmed.max(1);
        if count >= mu {
            return true;
        }
        let ids = self.graph.neighbor_ids(p);
        let mut remaining = ids.iter().filter(|&&q| q != p && !skip(q)).count();
        for &q in ids {
            if q == p || skip(q) {
                continue;
            }
            if count + remaining < mu {
                return false;
            }
            remaining -= 1;
            if self.is_eps_neighbor(p, q) {
                count += 1;
                if count >= mu {
                    return true;
                }
            }
        }
        false
    }

    /// Whether `p` is a core (Definition 3), evaluating the neighborhood
    /// exhaustively (no early exit). Mostly useful in tests and the naive
    /// baseline.
    pub fn is_core_exhaustive(&self, p: VertexId) -> bool {
        self.eps_neighborhood(p).len() >= self.params.mu
    }
}

/// Uninstrumented exact similarity; the reference implementation used by
/// property tests and by callers outside any experiment accounting.
pub fn sigma_raw(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    let nu = g.neighbor_ids(u);
    let wu = g.neighbor_weights(u);
    let nv = g.neighbor_ids(v);
    let wv = g.neighbor_weights(v);
    let (mut i, mut j) = (0usize, 0usize);
    let mut num = 0.0f64;
    while i < nu.len() && j < nv.len() {
        let (a, b) = (nu[i], nv[j]);
        if a == b {
            num += wu[i] * wv[j];
            i += 1;
            j += 1;
        } else if a < b {
            i += 1;
        } else {
            j += 1;
        }
    }
    num / (g.norm_sq(u) * g.norm_sq(v)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;
    use proptest::prelude::*;

    fn unweighted_clique_plus_pendant() -> CsrGraph {
        // K4 over {0,1,2,3} plus pendant 4 attached to 0.
        GraphBuilder::from_unweighted_edges(
            5,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)],
        )
        .unwrap()
    }

    #[test]
    fn unweighted_sigma_matches_scan_formula() {
        // SCAN: σ(u,v) = |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)|·|Γ(v)|) with closed
        // neighborhoods.
        let g = unweighted_clique_plus_pendant();
        // Γ(1) = {0,1,2,3}, Γ(2) = {0,1,2,3}: σ = 4/4 = 1.
        assert!((sigma_raw(&g, 1, 2) - 1.0).abs() < 1e-12);
        // Γ(0) = {0,1,2,3,4}, Γ(4) = {0,4}: common {0,4}, σ = 2/sqrt(10).
        assert!((sigma_raw(&g, 0, 4) - 2.0 / 10.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one() {
        let g = unweighted_clique_plus_pendant();
        for v in 0..5 {
            assert!((sigma_raw(&g, v, v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_sigma_hand_computed() {
        // Path 0 -(2.0)- 1 -(0.5)- 2, all with unit self-loops.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, 0.5)]).unwrap();
        // Γ(0)={0(1),1(2)}, Γ(1)={0(2),1(1),2(0.5)}.
        // common: 0 → w_00·w_10 = 1·2 = 2; 1 → w_01·w_11 = 2·1 = 2. num=4.
        // l_0 = 1+4 = 5; l_1 = 4+1+0.25 = 5.25. σ = 4/sqrt(26.25).
        let expect = 4.0 / (5.0f64 * 5.25).sqrt();
        assert!((sigma_raw(&g, 0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn eps_decision_agrees_with_exact_sigma() {
        let g = unweighted_clique_plus_pendant();
        let params = ScanParams::new(0.6, 2);
        let k_opt = Kernel::new(&g, params);
        let k_plain = Kernel::with_optimizations(&g, params, false);
        for u in 0..5u32 {
            for &v in g.neighbor_ids(u) {
                let exact = sigma_raw(&g, u, v) >= 0.6;
                assert_eq!(k_opt.is_eps_neighbor(u, v), exact, "opt ({u},{v})");
                assert_eq!(k_plain.is_eps_neighbor(u, v), exact, "plain ({u},{v})");
            }
        }
    }

    #[test]
    fn lemma5_filter_fires_and_is_sound() {
        // High ε over a weak, long-degree-mismatch edge should be filtered.
        let mut b = GraphBuilder::new(12);
        for v in 1..11 {
            b.add_edge(0, v, 1.0);
        }
        b.add_edge(0, 11, 0.05); // weak pendant
        let g = b.build();
        let k = Kernel::new(&g, ScanParams::new(0.9, 2));
        let d = k.eps_decision(0, 11);
        // Whether filtered or merge-joined, it must be "not similar"...
        assert_ne!(d, EpsDecision::Similar);
        // ...and the exact value confirms.
        assert!(sigma_raw(&g, 0, 11) < 0.9);
    }

    #[test]
    fn counters_track_each_path() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2));
        let _ = k.sigma(0, 1);
        let _ = k.eps_decision(1, 2);
        k.record_shared_eval();
        let s = k.stats();
        assert_eq!(s.sigma_evals, 2);
        assert_eq!(s.shared_evals, 1);
        // Neither call above can trip the Lemma-5 prefilter, and a kernel
        // without the edge cache never records hits; total_decided must be
        // the exact sum of the four work counters.
        assert_eq!(s.lemma5_filtered, 0);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(
            s.total_decided(),
            s.sigma_evals + s.lemma5_filtered + s.shared_evals + s.cache_hits
        );
        assert_eq!(s.total_decided(), 3);
    }

    #[test]
    fn cache_misses_complement_hits() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(true);
        let _ = k.eps_decision(0, 1); // miss: computed + stored
        let _ = k.eps_decision(0, 1); // hit
        let _ = k.eps_decision(1, 0); // hit (symmetric)
        let _ = k.eps_decision(0, 2); // miss
        let s = k.stats();
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_hits, 2);
        // A miss always falls through to a real decision.
        assert_eq!(s.cache_misses, s.sigma_evals + s.lemma5_filtered);
    }

    #[test]
    fn early_exit_counters_are_subsets_of_sigma_evals() {
        // Clique pairs at low ε early-accept (num crosses the threshold with
        // suffixes left); the weak pendant at high ε early-rejects via the
        // remaining-suffix bound when it survives the Lemma-5 prefilter.
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.3, 2));
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let _ = k.eps_decision(u, v);
            }
        }
        let s = k.stats();
        assert!(s.early_accepts > 0, "low ε on a clique must early-accept");
        assert!(s.early_accepts + s.early_rejects <= s.sigma_evals);
        // The unoptimized kernel never records either.
        let plain = Kernel::with_optimizations(&g, ScanParams::new(0.3, 2), false);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let _ = plain.eps_decision(u, v);
            }
        }
        assert_eq!(plain.stats().early_accepts, 0);
        assert_eq!(plain.stats().early_rejects, 0);
    }

    #[test]
    fn eps_neighborhood_includes_self() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.99, 2));
        let n0 = k.eps_neighborhood(0);
        assert!(n0.contains(&0));
        // Clique members 1,2,3 have σ(i,j)=1 among themselves.
        let n1 = k.eps_neighborhood(1);
        assert!(n1.contains(&2) && n1.contains(&3));
    }

    #[test]
    fn core_check_early_exit_matches_exhaustive() {
        let g = unweighted_clique_plus_pendant();
        for eps in [0.3, 0.5, 0.7, 0.9] {
            for mu in 1..6 {
                let k = Kernel::new(&g, ScanParams::new(eps, mu));
                for v in 0..5u32 {
                    assert_eq!(
                        k.core_check_early_exit(v, 0),
                        k.is_core_exhaustive(v),
                        "eps={eps} mu={mu} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn core_check_uses_known_count() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 4));
        // With enough already-known ε-neighbors, no scanning is needed.
        assert!(k.core_check_early_exit(4, 10));
    }

    #[test]
    fn edge_cache_hits_on_repeat_and_mirror_queries() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(true);
        let first = k.eps_decision(0, 1);
        assert_eq!(k.stats().cache_hits, 0);
        // Same direction again: answered from the cache.
        assert_eq!(k.eps_decision(0, 1), first);
        // Mirror direction: the symmetric store makes this a hit too.
        assert_eq!(k.eps_decision(1, 0), first);
        let s = k.stats();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.sigma_evals + s.lemma5_filtered, 1);
    }

    #[test]
    fn edge_cache_reports_filtered_pairs_as_dissimilar() {
        // Lemma-5 filters the weak pendant edge; the cached verdict loses
        // the FilteredOut/Dissimilar distinction but never the boolean.
        let mut b = GraphBuilder::new(12);
        for v in 1..11 {
            b.add_edge(0, v, 1.0);
        }
        b.add_edge(0, 11, 0.05);
        let g = b.build();
        let k = Kernel::new(&g, ScanParams::new(0.9, 2)).with_edge_cache(true);
        assert_eq!(k.eps_decision(0, 11), EpsDecision::FilteredOut);
        assert_eq!(k.eps_decision(0, 11), EpsDecision::Dissimilar);
        assert_eq!(k.eps_decision(11, 0), EpsDecision::Dissimilar);
        assert_eq!(k.stats().cache_hits, 2);
        assert_eq!(k.stats().lemma5_filtered, 1);
    }

    #[test]
    fn edge_cache_disabled_never_counts_hits() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(false);
        assert!(k.edge_cache().is_none());
        let _ = k.eps_decision(0, 1);
        let _ = k.eps_decision(0, 1);
        assert_eq!(k.stats().cache_hits, 0);
        assert_eq!(k.stats().sigma_evals, 2);
    }

    proptest! {
        /// σ is symmetric, in [0,1], and the optimized ε-decision always
        /// agrees with the exact value, on random weighted graphs.
        #[test]
        fn sigma_properties_on_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0.05f64..1.0), 1..60),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(12, edges).unwrap();
            let params = ScanParams::new(eps, 2);
            let k = Kernel::new(&g, params);
            for u in 0..12u32 {
                for &v in g.neighbor_ids(u) {
                    let s_uv = sigma_raw(&g, u, v);
                    let s_vu = sigma_raw(&g, v, u);
                    prop_assert!((s_uv - s_vu).abs() < 1e-9, "asymmetric σ({u},{v})");
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&s_uv));
                    // Guard the threshold comparison against float ties.
                    if (s_uv - eps).abs() > 1e-9 {
                        prop_assert_eq!(
                            k.is_eps_neighbor(u, v),
                            s_uv >= eps,
                            "decision mismatch at ({}, {}), σ={}", u, v, s_uv
                        );
                    }
                }
            }
        }

        /// The cached ε-decision agrees with the exact σ from both edge
        /// directions and on repeat queries, and every decision past the
        /// first per undirected edge is a cache hit.
        #[test]
        fn cached_eps_decision_agrees_with_sigma_raw(
            edges in proptest::collection::vec((0u32..14, 0u32..14, 0.05f64..1.0), 1..70),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(14, edges).unwrap();
            let k = Kernel::new(&g, ScanParams::new(eps, 2)).with_edge_cache(true);
            for _pass in 0..2 {
                for u in g.vertices() {
                    for &v in g.neighbor_ids(u) {
                        if v == u {
                            continue;
                        }
                        let exact = sigma_raw(&g, u, v);
                        // Skip float ties: FilteredOut/Dissimilar vs Similar
                        // could legitimately flip within rounding noise.
                        if (exact - eps).abs() <= 1e-9 {
                            continue;
                        }
                        prop_assert_eq!(
                            matches!(k.eps_decision(u, v), EpsDecision::Similar),
                            exact >= eps,
                            "cached decision mismatch at ({}, {}), σ={}", u, v, exact
                        );
                    }
                }
            }
            // Per undirected edge: ≤ 1 real decision; everything else hits.
            let s = k.stats();
            prop_assert!(s.sigma_evals + s.lemma5_filtered <= g.num_edges());
        }

        /// Cauchy–Schwarz: σ ≤ 1 even under adversarial weights.
        #[test]
        fn sigma_never_exceeds_one(
            w1 in 0.05f64..1.0, w2 in 0.05f64..1.0, w3 in 0.05f64..1.0,
        ) {
            let g = GraphBuilder::from_edges(3, vec![(0,1,w1),(1,2,w2),(0,2,w3)]).unwrap();
            for u in 0..3u32 {
                for v in 0..3u32 {
                    prop_assert!(sigma_raw(&g, u, v) <= 1.0 + 1e-9);
                }
            }
        }
    }
}
