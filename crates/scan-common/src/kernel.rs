//! The weighted structural-similarity kernel (Definition 1) and its
//! optimizations (Section III-D), instrumented for the work-efficiency
//! figures.

use std::sync::atomic::{AtomicU64, Ordering};

use anyscan_graph::{CsrGraph, VertexId, Weight};

use crate::atomic_cache::AtomicEdgeCache;
use crate::hubs::HubBitmaps;
use crate::params::ScanParams;
use crate::sketch::{NeighborhoodSketches, SketchMode};

/// Pairs whose smaller closed degree is at or below this run the branchless
/// full merge-join instead of the early-exit merge when the locality bundle
/// is enabled: short rows rarely profit from early exit, while the
/// data-dependent branches of the classic merge mispredict on them.
const BRANCHLESS_MERGE_CUTOFF: usize = 64;

/// Prefetch distance (in elements) inside the branchless merge-join.
#[cfg(target_arch = "x86_64")]
const MERGE_PREFETCH_AHEAD: usize = 16;

/// Hints the CPU to pull the start of a slice into cache. No-op off x86_64.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: the pointer is within (or one past) a live allocation;
        // prefetch has no memory effects and tolerates any address.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(idx) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

/// Snapshot of the kernel's evaluation counters.
///
/// `sigma_evals` is the quantity plotted on the left of Fig. 7 (the number of
/// structural-similarity calculations an algorithm performs); SCAN++'s
/// *similarity sharing* evaluations are tracked separately (`shared_evals`),
/// as the figure stacks them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Merge-join σ evaluations actually entered (full or early-stopped).
    pub sigma_evals: u64,
    /// Pairs dismissed by the O(1) Lemma-5 filter without a merge-join.
    pub lemma5_filtered: u64,
    /// SCAN++-style similarity-sharing evaluations (two-hop inference).
    pub shared_evals: u64,
    /// Decisions answered by the symmetric edge-decision cache without any
    /// similarity work (zero unless the kernel was built with the cache).
    pub cache_hits: u64,
    /// Adjacent-pair decisions that consulted the cache, found nothing, and
    /// had to be computed and stored (zero without the cache).
    pub cache_misses: u64,
    /// Merge-joins accepted before exhausting either neighbor list (the
    /// early-accept optimization fired; subset of `sigma_evals`).
    pub early_accepts: u64,
    /// Merge-joins rejected by the remaining-suffix bound (the early-reject
    /// optimization fired; subset of `sigma_evals`).
    pub early_rejects: u64,
    /// σ evaluations that ran a merge-join (classic or branchless). The
    /// kernel-side path counters (`path_merge`, `path_bitmap`,
    /// `path_batched`, `path_sketch`) partition `sigma_evals` exactly, so
    /// traces show where σ time goes; `path_probe` is recorded externally
    /// and counts separate work.
    pub path_merge: u64,
    /// σ evaluations diverted to the hash-probe path (recorded externally by
    /// the index build via [`Kernel::record_probe_evals`]; the anytime
    /// kernel itself never probes).
    pub path_probe: u64,
    /// σ evaluations answered through a hub bitmap (word-wise AND or
    /// bit-test + weight gather).
    pub path_bitmap: u64,
    /// σ evaluations answered by the batched Step-1 dense-row gather.
    pub path_batched: u64,
    /// σ decisions emitted directly from a MinHash sketch estimate
    /// ([`SketchMode::Approx`] only; always zero in assist mode, where
    /// sketches order and route but never decide).
    pub path_sketch: u64,
    /// Assist-mode confirmations: exact decisions routed by a confident
    /// sketch estimate whose exact verdict agreed with the sketch's side
    /// (diagnostic, like `early_accepts`; not a partition member).
    pub sketch_confirms: u64,
}

impl SimStats {
    /// Total pairs decided by any means. `cache_misses`, `early_accepts`
    /// and `early_rejects` classify decisions already counted in the four
    /// terms below, so they are deliberately not summed here.
    pub fn total_decided(&self) -> u64 {
        self.sigma_evals + self.lemma5_filtered + self.shared_evals + self.cache_hits
    }
}

/// Outcome of an ε-similarity decision, distinguishing how it was reached
/// (used by tests asserting the optimizations fire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsDecision {
    /// Lemma-5 filter proved σ < ε in O(1).
    FilteredOut,
    /// Merge-join concluded σ ≥ ε (possibly early-accepted).
    Similar,
    /// Merge-join concluded σ < ε.
    Dissimilar,
}

/// The structural-similarity kernel: every σ evaluation in the workspace
/// funnels through one of these methods, so the instrumentation is complete
/// by construction.
///
/// The kernel is `Sync`; counters are relaxed atomics so the parallel block
/// phases can share one kernel without locks.
#[derive(Debug)]
pub struct Kernel<'g> {
    graph: &'g CsrGraph,
    params: ScanParams,
    /// Lemma-5 O(1) prefilter + early accept inside the merge-join
    /// (Section III-D). Disabled for the plain SCAN baseline and the
    /// filter ablation.
    optimizations: bool,
    /// Symmetric per-arc verdict cache (see [`AtomicEdgeCache`]); `None`
    /// disables caching (the ablation and the memory-frugal path).
    cache: Option<AtomicEdgeCache>,
    /// Packed neighbor bitsets for high-degree vertices plus the branchless
    /// small-pair merge — the cache-locality bundle. `None` keeps the
    /// classic merge-join on every pair (the pre-bundle behavior, used by
    /// the baselines and the bench's before/after comparison).
    hubs: Option<HubBitmaps>,
    /// MinHash signatures of every closed neighborhood plus how the kernel
    /// may use them (order/route in assist mode, decide in approx mode).
    /// `None` ⇔ `sketch_mode == Off`.
    sketches: Option<NeighborhoodSketches>,
    sketch_mode: SketchMode,
    /// Assist-mode confidence half-width `t`: pairs with `|σ̂ − ε| > t` are
    /// routed as confidently decided (precomputed from the signature size).
    sketch_band: f64,
    sigma_evals: AtomicU64,
    lemma5_filtered: AtomicU64,
    shared_evals: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    early_accepts: AtomicU64,
    early_rejects: AtomicU64,
    path_merge: AtomicU64,
    path_probe: AtomicU64,
    path_bitmap: AtomicU64,
    path_batched: AtomicU64,
    path_sketch: AtomicU64,
    sketch_confirms: AtomicU64,
}

/// How a sketch consultation routed a pair (internal to the kernel).
enum SketchRoute {
    /// Sketches off, or the pair must take the normal exact routing.
    Exact,
    /// Assist: the estimate is confidently on one side of ε; run the
    /// cheapest exact path and record agreement. Payload: the sketch's
    /// similar/dissimilar guess.
    Confident(bool),
    /// Approx: the sketch decided outright.
    Decided(EpsDecision),
}

impl<'g> Kernel<'g> {
    /// Kernel with the paper's optimizations enabled (the default for
    /// anySCAN, SCAN-B and pSCAN).
    pub fn new(graph: &'g CsrGraph, params: ScanParams) -> Self {
        Self::with_optimizations(graph, params, true)
    }

    /// Kernel with the Section III-D optimizations toggled explicitly.
    pub fn with_optimizations(
        graph: &'g CsrGraph,
        params: ScanParams,
        optimizations: bool,
    ) -> Self {
        Kernel {
            graph,
            params,
            optimizations,
            cache: None,
            hubs: None,
            sketches: None,
            sketch_mode: SketchMode::Off,
            sketch_band: 0.0,
            sigma_evals: AtomicU64::new(0),
            lemma5_filtered: AtomicU64::new(0),
            shared_evals: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            early_accepts: AtomicU64::new(0),
            early_rejects: AtomicU64::new(0),
            path_merge: AtomicU64::new(0),
            path_probe: AtomicU64::new(0),
            path_bitmap: AtomicU64::new(0),
            path_batched: AtomicU64::new(0),
            path_sketch: AtomicU64::new(0),
            sketch_confirms: AtomicU64::new(0),
        }
    }

    /// Builder-style toggle for the lock-free symmetric edge-decision cache
    /// (O(`num_arcs`) bytes). With it on, every [`Kernel::eps_decision`] on
    /// an adjacent pair is answered from the cache when the verdict is
    /// already known — from either direction — and recorded otherwise.
    /// Results are unchanged either way; only the work counters differ.
    pub fn with_edge_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| AtomicEdgeCache::new(self.graph));
        self
    }

    /// Builder-style toggle for the hub-bitmap / branchless-merge locality
    /// bundle. With it on, pairs touching a high-degree vertex are decided
    /// through a packed bitset (word-wise AND or bit-test + weight gather)
    /// and small pairs run a branchless full merge-join; both produce
    /// numerators bit-identical to [`sigma_raw`]'s, so results never change
    /// — only memory traffic and the `path_*` counters do.
    pub fn with_hub_bitmaps(mut self, enabled: bool) -> Self {
        self.hubs = enabled.then(|| HubBitmaps::build(self.graph));
        self
    }

    /// [`Kernel::with_hub_bitmaps`] with an explicit hub cap and degree
    /// floor — for tuning experiments and for tests on graphs too small for
    /// the default floor to select any hubs.
    pub fn with_hub_bitmaps_params(mut self, max_hubs: usize, min_degree: usize) -> Self {
        self.hubs = Some(HubBitmaps::build_with(self.graph, max_hubs, min_degree));
        self
    }

    /// Builder-style attachment of prebuilt neighborhood sketches.
    /// [`SketchMode::Off`] drops any sketches; otherwise the signatures must
    /// cover this kernel's graph.
    ///
    /// * **Assist** keeps every decision exact: sketches only order
    ///   core-check candidates (most promising first, so the μ-early-exit
    ///   fires sooner) and route confidently-estimated pairs straight to the
    ///   classic early-accept/early-reject merge. Clusterings are
    ///   bit-identical to a sketch-free kernel's.
    /// * **Approx** lets the estimate decide adjacent pairs outright
    ///   (`σ̂ ≥ ε` ⇒ similar), counted under `path_sketch`.
    pub fn with_sketches(mut self, sketches: NeighborhoodSketches, mode: SketchMode) -> Self {
        if mode == SketchMode::Off {
            self.sketches = None;
            self.sketch_mode = mode;
            self.sketch_band = 0.0;
            return self;
        }
        assert_eq!(
            sketches.num_vertices(),
            self.graph.num_vertices(),
            "sketches were built for a different graph"
        );
        self.sketch_band = sketches.tolerance();
        self.sketches = Some(sketches);
        self.sketch_mode = mode;
        self
    }

    /// [`Kernel::with_sketches`], building the signatures here (in parallel
    /// on the shared worker pool) from explicit parameters. A no-op for
    /// [`SketchMode::Off`].
    pub fn with_sketch_params(
        self,
        mode: SketchMode,
        rows: usize,
        bits: u32,
        seed: u64,
        threads: usize,
    ) -> Self {
        if mode == SketchMode::Off {
            return self;
        }
        let sketches = NeighborhoodSketches::build(self.graph, rows, bits, seed, threads);
        self.with_sketches(sketches, mode)
    }

    /// The attached neighborhood sketches, when any.
    pub fn sketches(&self) -> Option<&NeighborhoodSketches> {
        self.sketches.as_ref()
    }

    /// How this kernel uses sketches.
    pub fn sketch_mode(&self) -> SketchMode {
        self.sketch_mode
    }

    /// The edge-decision cache, when enabled.
    pub fn edge_cache(&self) -> Option<&AtomicEdgeCache> {
        self.cache.as_ref()
    }

    /// The hub bitmaps, when the locality bundle is enabled.
    pub fn hub_bitmaps(&self) -> Option<&HubBitmaps> {
        self.hubs.as_ref()
    }

    /// The graph this kernel evaluates on.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The (ε, μ) parameters.
    pub fn params(&self) -> ScanParams {
        self.params
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SimStats {
        SimStats {
            sigma_evals: self.sigma_evals.load(Ordering::Relaxed),
            lemma5_filtered: self.lemma5_filtered.load(Ordering::Relaxed),
            shared_evals: self.shared_evals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            early_accepts: self.early_accepts.load(Ordering::Relaxed),
            early_rejects: self.early_rejects.load(Ordering::Relaxed),
            path_merge: self.path_merge.load(Ordering::Relaxed),
            path_probe: self.path_probe.load(Ordering::Relaxed),
            path_bitmap: self.path_bitmap.load(Ordering::Relaxed),
            path_batched: self.path_batched.load(Ordering::Relaxed),
            path_sketch: self.path_sketch.load(Ordering::Relaxed),
            sketch_confirms: self.sketch_confirms.load(Ordering::Relaxed),
        }
    }

    /// Records a SCAN++ similarity-sharing evaluation (called by that
    /// baseline; kept here so all counters live in one place).
    pub fn record_shared_eval(&self) {
        self.shared_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` hash-probe σ evaluations performed outside the kernel
    /// (the index build's skew diversion); kept here so the per-path
    /// counters all live in one snapshot.
    pub fn record_probe_evals(&self, n: u64) {
        self.path_probe.fetch_add(n, Ordering::Relaxed);
    }

    /// Exact weighted structural similarity
    /// `σ(u,v) = Σ_{r∈Γ(u)∩Γ(v)} w_ur·w_vr / sqrt(l_u·l_v)` (Definition 1).
    /// Always runs the full merge-join (no early stop) and counts one
    /// evaluation.
    pub fn sigma(&self, u: VertexId, v: VertexId) -> f64 {
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        sigma_raw(self.graph, u, v)
    }

    /// Decides `σ(u,v) ≥ ε`, applying (when enabled) the Lemma-5 O(1)
    /// prefilter, early accept once the accumulating numerator crosses the
    /// threshold, and early reject once it provably cannot reach it.
    ///
    /// With the edge-decision cache enabled and `v ∈ Γ(u)`, a previously
    /// reached verdict — from either direction — is returned without any
    /// similarity work (counted in `cache_hits`). A cached dissimilar
    /// verdict is reported as [`EpsDecision::Dissimilar`] even if the
    /// original decision was [`EpsDecision::FilteredOut`]; callers only
    /// branch on similar-vs-not, so results are unaffected.
    #[inline]
    pub fn eps_decision(&self, u: VertexId, v: VertexId) -> EpsDecision {
        let Some(cache) = &self.cache else {
            return self.eps_decision_uncached(u, v);
        };
        let Some(arc) = AtomicEdgeCache::arc_index(self.graph, u, v) else {
            // Non-adjacent pair: no arc slot; decide directly.
            return self.eps_decision_uncached(u, v);
        };
        if let Some(similar) = cache.get(arc) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return if similar {
                EpsDecision::Similar
            } else {
                EpsDecision::Dissimilar
            };
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let decision = self.eps_decision_uncached(u, v);
        cache.store_symmetric(
            self.graph,
            u,
            v,
            arc,
            matches!(decision, EpsDecision::Similar),
        );
        decision
    }

    /// Lemma-5 O(1) prefilter: true iff σ(u,v) is provably `< ε` from the
    /// precomputed per-vertex bounds alone (σ̂² < ε²·l_u·l_v).
    #[inline]
    fn lemma5_filters(&self, u: VertexId, v: VertexId, lu: f64, lv: f64) -> bool {
        let g = self.graph;
        let min_deg = g.degree(u).min(g.degree(v)) as f64;
        let max_w = g.max_weight(u).max(g.max_weight(v));
        let sigma_hat = min_deg * max_w;
        sigma_hat * sigma_hat < self.params.epsilon * self.params.epsilon * lu * lv
    }

    /// Decides a pair through a hub bitmap if one applies, counting the
    /// evaluation. Returns `None` when neither endpoint has a bitmap.
    ///
    /// The bitmap paths compute the **full** numerator (no early exit);
    /// since every term is non-negative, the full-sum comparison against the
    /// threshold reaches the same verdict the early-exit merge would.
    #[inline]
    fn bitmap_decision(&self, u: VertexId, v: VertexId, threshold: f64) -> Option<EpsDecision> {
        let hubs = self.hubs.as_ref()?;
        let g = self.graph;
        let (du, dv) = (g.degree(u), g.degree(v));
        // Word-wise AND when both rows are wide enough to amortize the full
        // bitmap sweep; otherwise bit-test the smaller row against the
        // bigger hub's bitset.
        let words = g.num_vertices().div_ceil(64);
        let num = if hubs.is_hub(u) && hubs.is_hub(v) && du + dv >= words {
            hubs.numerator_hub_vs_hub(g, u, v)?
        } else {
            // Bit-test the other row against a hub endpoint's bitset,
            // preferring the wider endpoint as the bitset side.
            let (first, second) = if du <= dv { (u, v) } else { (v, u) };
            if hubs.is_hub(second) {
                hubs.numerator_small_vs_hub(g, first, second)?
            } else if hubs.is_hub(first) {
                hubs.numerator_small_vs_hub(g, second, first)?
            } else {
                return None;
            }
        };
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        self.path_bitmap.fetch_add(1, Ordering::Relaxed);
        Some(if num >= threshold {
            EpsDecision::Similar
        } else {
            EpsDecision::Dissimilar
        })
    }

    /// Branchless full merge-join numerator with explicit prefetch: index
    /// advances and the accumulate are computed arithmetically, so the
    /// data-dependent `a < b` comparison never becomes a mispredicted
    /// branch. Adds `+0.0` on non-matches — partial sums stay bit-identical
    /// to the classic merge's (all terms are non-negative, so no `-0.0`).
    #[inline]
    fn merge_numerator_branchless(&self, u: VertexId, v: VertexId) -> f64 {
        let g = self.graph;
        let nu = g.neighbor_ids(u);
        let wu = g.neighbor_weights(u);
        let nv = g.neighbor_ids(v);
        let wv = g.neighbor_weights(v);
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        while i < nu.len() && j < nv.len() {
            #[cfg(target_arch = "x86_64")]
            {
                prefetch_read(nu, i + MERGE_PREFETCH_AHEAD);
                prefetch_read(nv, j + MERGE_PREFETCH_AHEAD);
            }
            let (a, b) = (nu[i], nv[j]);
            num += if a == b { wu[i] * wv[j] } else { 0.0 };
            i += (a <= b) as usize;
            j += (b <= a) as usize;
        }
        num
    }

    /// Consults the sketches to route one pair. [`SketchRoute::Exact`] when
    /// sketches are off or the assist estimate falls inside the ambiguous
    /// band `|σ̂ − ε| ≤ t`; in approx mode the estimate decides outright
    /// (counted as one `path_sketch` evaluation); a confident assist
    /// estimate requests the classic merge with agreement tracking.
    #[inline]
    fn sketch_route(&self, u: VertexId, v: VertexId) -> SketchRoute {
        let Some(sk) = &self.sketches else {
            return SketchRoute::Exact;
        };
        let est = sk.sigma_estimate(self.graph, u, v);
        match self.sketch_mode {
            SketchMode::Off => SketchRoute::Exact,
            SketchMode::Approx => {
                self.sigma_evals.fetch_add(1, Ordering::Relaxed);
                self.path_sketch.fetch_add(1, Ordering::Relaxed);
                SketchRoute::Decided(if est >= self.params.epsilon {
                    EpsDecision::Similar
                } else {
                    EpsDecision::Dissimilar
                })
            }
            SketchMode::Assist => {
                if (est - self.params.epsilon).abs() > self.sketch_band {
                    SketchRoute::Confident(est >= self.params.epsilon)
                } else {
                    SketchRoute::Exact
                }
            }
        }
    }

    /// The Section III-D decision procedure itself, never touching the
    /// edge-decision cache.
    fn eps_decision_uncached(&self, u: VertexId, v: VertexId) -> EpsDecision {
        let g = self.graph;
        let lu = g.norm_sq(u);
        let lv = g.norm_sq(v);
        let threshold = self.params.epsilon * (lu * lv).sqrt();

        if self.optimizations && self.lemma5_filters(u, v, lu, lv) {
            self.lemma5_filtered.fetch_add(1, Ordering::Relaxed);
            return EpsDecision::FilteredOut;
        }

        match self.sketch_route(u, v) {
            SketchRoute::Decided(decision) => return decision,
            SketchRoute::Confident(guess) => {
                // Prune-confirm routing: a confidently-estimated pair skips
                // the bitmap/branchless selection and runs the classic
                // early-accept/early-reject merge, which exits fastest on
                // pairs far from the threshold. The emitted decision is
                // still made by the exact merge below.
                let decision = self.merge_decision(u, v, threshold);
                if matches!(decision, EpsDecision::Similar) == guess {
                    self.sketch_confirms.fetch_add(1, Ordering::Relaxed);
                }
                return decision;
            }
            SketchRoute::Exact => {}
        }

        // Locality bundle: hub pairs go through the packed bitsets, and
        // small pairs run the branchless merge (counted below).
        if self.hubs.is_some() {
            if let Some(decision) = self.bitmap_decision(u, v, threshold) {
                return decision;
            }
            if g.degree(u).min(g.degree(v)) <= BRANCHLESS_MERGE_CUTOFF {
                self.sigma_evals.fetch_add(1, Ordering::Relaxed);
                self.path_merge.fetch_add(1, Ordering::Relaxed);
                let num = self.merge_numerator_branchless(u, v);
                return if num >= threshold {
                    EpsDecision::Similar
                } else {
                    EpsDecision::Dissimilar
                };
            }
        }

        self.merge_decision(u, v, threshold)
    }

    /// The classic merge-join decision (with the Section III-D early
    /// accept/reject when optimizations are on), counted under `path_merge`.
    fn merge_decision(&self, u: VertexId, v: VertexId, threshold: f64) -> EpsDecision {
        let g = self.graph;
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        self.path_merge.fetch_add(1, Ordering::Relaxed);
        let nu = g.neighbor_ids(u);
        let wu = g.neighbor_weights(u);
        let nv = g.neighbor_ids(v);
        let wv = g.neighbor_weights(v);
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        if self.optimizations {
            // Early accept / early reject: track the best the remaining
            // suffixes could still contribute.
            let max_w = g.max_weight(u) * g.max_weight(v);
            loop {
                if num >= threshold {
                    if i < nu.len() && j < nv.len() {
                        self.early_accepts.fetch_add(1, Ordering::Relaxed);
                    }
                    return EpsDecision::Similar;
                }
                if i >= nu.len() || j >= nv.len() {
                    break;
                }
                let remaining = (nu.len() - i).min(nv.len() - j) as f64;
                if num + remaining * max_w < threshold {
                    self.early_rejects.fetch_add(1, Ordering::Relaxed);
                    return EpsDecision::Dissimilar;
                }
                let (a, b) = (nu[i], nv[j]);
                if a == b {
                    num += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        } else {
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                if a == b {
                    num += wu[i] * wv[j];
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
        if num >= threshold {
            EpsDecision::Similar
        } else {
            EpsDecision::Dissimilar
        }
    }

    /// Boolean form of [`Kernel::eps_decision`].
    pub fn is_eps_neighbor(&self, u: VertexId, v: VertexId) -> bool {
        matches!(self.eps_decision(u, v), EpsDecision::Similar)
    }

    /// Range query: the full structural neighborhood
    /// `N^ε_p = {q ∈ Γ(p) | σ(p,q) ≥ ε}` (includes `p` itself, since
    /// σ(p,p) = 1). This is the neighborhood query of anySCAN's Step 1.
    pub fn eps_neighborhood(&self, p: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.eps_neighborhood_into(p, &mut out);
        out
    }

    /// [`Kernel::eps_neighborhood`] into a caller-owned buffer (cleared
    /// first). Lets hot parallel loops reuse one scratch vector per worker
    /// instead of allocating per queried vertex.
    pub fn eps_neighborhood_into(&self, p: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        for &q in self.graph.neighbor_ids(p) {
            if q == p || self.is_eps_neighbor(p, q) {
                out.push(q);
            }
        }
    }

    /// [`Kernel::eps_neighborhood_into`], batched source-major: the source
    /// row `Γ(p)` is scattered **once** into the per-worker dense scratch
    /// and reused across all candidate pairs of the range query, so each
    /// decision costs one sequential sweep of the candidate's row instead of
    /// a two-row merge. Pairs answered by the edge cache never touch the
    /// scratch (and the row is not even stamped when every pair hits).
    ///
    /// Accounting is identical to the per-pair path: each adjacent decision
    /// counts exactly one of `cache_hits` or `cache_misses` (cache on), and
    /// each computed decision exactly one of `lemma5_filtered` or
    /// `sigma_evals` — never both a hit and a fresh evaluation (see the
    /// regression tests; a naive route through [`Kernel::eps_decision`]
    /// after a row-level cache pass would double-count).
    pub fn eps_neighborhood_batched(
        &self,
        p: VertexId,
        scratch: &mut BatchScratch,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        let g = self.graph;
        scratch.invalidate_row();
        let ids = g.neighbor_ids(p);
        for (k, &q) in ids.iter().enumerate() {
            if k + 1 < ids.len() {
                // The candidate rows are visited in arbitrary memory order:
                // hint the next row in while deciding this one.
                let next = ids[k + 1];
                prefetch_read(g.neighbor_ids(next), 0);
                prefetch_read(g.neighbor_weights(next), 0);
            }
            if q == p {
                out.push(q);
                continue;
            }
            let similar = match &self.cache {
                None => matches!(self.batched_decision(p, q, scratch), EpsDecision::Similar),
                Some(cache) => {
                    let arc = AtomicEdgeCache::arc_index(g, p, q)
                        .expect("range-query candidate is adjacent to the source");
                    if let Some(similar) = cache.get(arc) {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        similar
                    } else {
                        self.cache_misses.fetch_add(1, Ordering::Relaxed);
                        let similar =
                            matches!(self.batched_decision(p, q, scratch), EpsDecision::Similar);
                        cache.store_symmetric(g, p, q, arc, similar);
                        similar
                    }
                }
            };
            if similar {
                out.push(q);
            }
        }
    }

    /// One batched-pair decision: Lemma-5, then the hub bitmap when the
    /// candidate is a wide hub (bit-testing the short source row beats
    /// sweeping the hub's), then the dense-row gather with the early
    /// accept/reject bounds of the classic merge.
    fn batched_decision(
        &self,
        p: VertexId,
        q: VertexId,
        scratch: &mut BatchScratch,
    ) -> EpsDecision {
        let g = self.graph;
        let lp = g.norm_sq(p);
        let lq = g.norm_sq(q);
        let threshold = self.params.epsilon * (lp * lq).sqrt();

        if self.optimizations && self.lemma5_filters(p, q, lp, lq) {
            self.lemma5_filtered.fetch_add(1, Ordering::Relaxed);
            return EpsDecision::FilteredOut;
        }

        // Approx mode: the sketch decides batched pairs outright too.
        // Assist mode deliberately leaves the batched path alone — the
        // source row is already stamped, so the dense gather *is* the cheap
        // exact path here and routing could only reshuffle equals.
        if self.sketch_mode == SketchMode::Approx {
            if let SketchRoute::Decided(decision) = self.sketch_route(p, q) {
                return decision;
            }
        }

        if let Some(hubs) = &self.hubs {
            if g.degree(q) > g.degree(p) {
                if let Some(num) = hubs.numerator_small_vs_hub(g, p, q) {
                    self.sigma_evals.fetch_add(1, Ordering::Relaxed);
                    self.path_bitmap.fetch_add(1, Ordering::Relaxed);
                    return if num >= threshold {
                        EpsDecision::Similar
                    } else {
                        EpsDecision::Dissimilar
                    };
                }
            }
        }

        let tag = scratch.stamp_row(g, p);
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        self.path_batched.fetch_add(1, Ordering::Relaxed);
        let nq = g.neighbor_ids(q);
        let wq = g.neighbor_weights(q);
        let mut num = 0.0f64;
        if self.optimizations {
            let max_w = g.max_weight(p) * g.max_weight(q);
            for (j, (&r, &w)) in nq.iter().zip(wq.iter()).enumerate() {
                if num >= threshold {
                    self.early_accepts.fetch_add(1, Ordering::Relaxed);
                    return EpsDecision::Similar;
                }
                // Weaker than the merge's two-sided bound (the source index
                // is not tracked here) but still sound: at most `|Γ(q)| - j`
                // terms remain, each at most `max_w`.
                let remaining = (nq.len() - j) as f64;
                if num + remaining * max_w < threshold {
                    self.early_rejects.fetch_add(1, Ordering::Relaxed);
                    return EpsDecision::Dissimilar;
                }
                let m = scratch.gather(r, tag);
                num += m * w;
            }
        } else {
            for (&r, &w) in nq.iter().zip(wq.iter()) {
                num += scratch.gather(r, tag) * w;
            }
        }
        if num >= threshold {
            EpsDecision::Similar
        } else {
            EpsDecision::Dissimilar
        }
    }

    /// Exact σ through the batched dense-row gather (full sum, no early
    /// exit); bit-identical to [`sigma_raw`] — the non-common terms add
    /// `+0.0`, which cannot perturb a non-negative partial sum. Counts one
    /// evaluation, like [`Kernel::sigma`].
    pub fn sigma_batched(&self, p: VertexId, q: VertexId, scratch: &mut BatchScratch) -> f64 {
        let g = self.graph;
        let tag = scratch.stamp_row(g, p);
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        self.path_batched.fetch_add(1, Ordering::Relaxed);
        let nq = g.neighbor_ids(q);
        let wq = g.neighbor_weights(q);
        let mut num = 0.0f64;
        for (&r, &w) in nq.iter().zip(wq.iter()) {
            num += scratch.gather(r, tag) * w;
        }
        num / (g.norm_sq(p) * g.norm_sq(q)).sqrt()
    }

    /// Exact σ through a hub bitmap, or `None` when neither endpoint has
    /// one; bit-identical to [`sigma_raw`] (same ascending-id visit order,
    /// same products). Counts one evaluation when it applies.
    pub fn sigma_bitmap(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let hubs = self.hubs.as_ref()?;
        let g = self.graph;
        let (du, dv) = (g.degree(u), g.degree(v));
        let words = g.num_vertices().div_ceil(64);
        let num = if hubs.is_hub(u) && hubs.is_hub(v) && du + dv >= words {
            hubs.numerator_hub_vs_hub(g, u, v)?
        } else {
            let (first, second) = if du <= dv { (u, v) } else { (v, u) };
            if hubs.is_hub(second) {
                hubs.numerator_small_vs_hub(g, first, second)?
            } else if hubs.is_hub(first) {
                hubs.numerator_small_vs_hub(g, second, first)?
            } else {
                return None;
            }
        };
        self.sigma_evals.fetch_add(1, Ordering::Relaxed);
        self.path_bitmap.fetch_add(1, Ordering::Relaxed);
        Some(num / (g.norm_sq(u) * g.norm_sq(v)).sqrt())
    }

    /// Early-exit core check (Steps 2/3 of anySCAN).
    ///
    /// If `known` already-confirmed ε-neighbors (including `p` itself — the
    /// paper's `nei(p)`, which starts at 1) reach μ, the answer is yes with
    /// no similarity work at all. Otherwise the neighborhood is rescanned
    /// from scratch (a partial `known` cannot safely seed a rescan: the scan
    /// would recount the same neighbors), stopping as soon as μ ε-neighbors
    /// are confirmed or provably unreachable.
    pub fn core_check_early_exit(&self, p: VertexId, known: usize) -> bool {
        if known >= self.params.mu {
            return true;
        }
        self.core_check_with_skip(p, 1, |_| false)
    }

    /// Core check that *does* exploit partial knowledge: `confirmed` counts
    /// ε-neighbors already established (including `p` itself), and `skip`
    /// must return true exactly for the neighbors whose ε-relation to `p` is
    /// already decided (so the scan neither revisits nor recounts them).
    ///
    /// anySCAN uses this with `confirmed = 1 + |SN_p|` and `skip` matching
    /// the representatives of the super-nodes containing `p`: membership of
    /// `p` in `sn(c)` certifies σ(p,c) ≥ ε, bought during Step 1.
    pub fn core_check_with_skip(
        &self,
        p: VertexId,
        confirmed: usize,
        skip: impl Fn(VertexId) -> bool,
    ) -> bool {
        let mu = self.params.mu;
        let mut count = confirmed.max(1);
        if count >= mu {
            return true;
        }
        let ids = self.graph.neighbor_ids(p);
        // Sketch-assisted candidate ordering (assist *and* approx): each
        // per-pair decision is order-independent (and exact in assist mode),
        // so the verdict — and in assist mode the whole clustering — is
        // identical to the unordered scan; only which pairs ever get
        // evaluated changes. The direction is outcome-adaptive: when the
        // estimates predict ≥ μ hits, scanning the most promising first
        // makes the μ-early-exit fire after ~μ confirmed neighbors; when
        // they predict failure, scanning the *least* promising first keeps
        // the confirmed count low so the remaining-candidates bound fires
        // as early as possible (evaluating hits first only postpones it).
        if let Some(sk) = &self.sketches {
            let mut cand: Vec<(f64, VertexId)> = ids
                .iter()
                .copied()
                .filter(|&q| q != p && !skip(q))
                .map(|q| (sk.sigma_estimate(self.graph, p, q), q))
                .collect();
            let eps = self.params.epsilon;
            let predicted = count + cand.iter().filter(|&&(est, _)| est >= eps).count();
            // Ties in ascending id for determinism.
            if predicted >= mu {
                cand.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            } else {
                cand.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            }
            let mut remaining = cand.len();
            for &(_, q) in &cand {
                if count + remaining < mu {
                    return false;
                }
                remaining -= 1;
                if self.is_eps_neighbor(p, q) {
                    count += 1;
                    if count >= mu {
                        return true;
                    }
                }
            }
            return false;
        }
        let mut remaining = ids.iter().filter(|&&q| q != p && !skip(q)).count();
        for &q in ids {
            if q == p || skip(q) {
                continue;
            }
            if count + remaining < mu {
                return false;
            }
            remaining -= 1;
            if self.is_eps_neighbor(p, q) {
                count += 1;
                if count >= mu {
                    return true;
                }
            }
        }
        false
    }

    /// Whether `p` is a core (Definition 3), evaluating the neighborhood
    /// exhaustively (no early exit). Mostly useful in tests and the naive
    /// baseline.
    pub fn is_core_exhaustive(&self, p: VertexId) -> bool {
        self.eps_neighborhood(p).len() >= self.params.mu
    }
}

/// Per-worker dense scratch for [`Kernel::eps_neighborhood_batched`].
///
/// Holds one *stamped* source row: `weight[r]` is `w_{p r}` for every
/// neighbor `r` of the current source `p`, and `stamp[r]` equals the current
/// tag iff `r ∈ Γ(p)`. Stamping is lazy (only on the first computed decision
/// of a range query) and O(deg p); switching sources bumps the tag instead of
/// clearing the dense arrays, with a full clear only on `u32` wraparound.
#[derive(Debug)]
pub struct BatchScratch {
    weight: Vec<Weight>,
    stamp: Vec<u32>,
    tag: u32,
    row: Option<VertexId>,
}

impl BatchScratch {
    /// Scratch for graphs of `n` vertices (sized once per worker).
    pub fn new(n: usize) -> Self {
        BatchScratch {
            weight: vec![0.0; n],
            stamp: vec![u32::MAX; n],
            tag: 0,
            row: None,
        }
    }

    /// Forgets the cached source row, forcing the next decision to restamp.
    fn invalidate_row(&mut self) {
        self.row = None;
    }

    /// Ensures the dense row holds `Γ(p)`'s weights; returns the tag that
    /// marks valid entries. Stamps at most once per source.
    fn stamp_row(&mut self, g: &CsrGraph, p: VertexId) -> u32 {
        if self.row != Some(p) {
            if self.tag == u32::MAX - 1 {
                // Leave u32::MAX free as the "never stamped" sentinel.
                self.stamp.fill(u32::MAX);
                self.tag = 0;
            } else {
                self.tag += 1;
            }
            for (&r, &w) in g.neighbor_ids(p).iter().zip(g.neighbor_weights(p)) {
                self.stamp[r as usize] = self.tag;
                self.weight[r as usize] = w;
            }
            self.row = Some(p);
        }
        self.tag
    }

    /// The stamped source weight `w_{p r}`, or `+0.0` when `r ∉ Γ(p)` (a
    /// `+0.0` term cannot perturb the non-negative σ partial sum, which is
    /// what keeps the batched path bit-identical to the merge-join).
    #[inline(always)]
    fn gather(&self, r: VertexId, tag: u32) -> f64 {
        if self.stamp[r as usize] == tag {
            self.weight[r as usize]
        } else {
            0.0
        }
    }
}

/// Uninstrumented exact similarity; the reference implementation used by
/// property tests and by callers outside any experiment accounting.
pub fn sigma_raw(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    let nu = g.neighbor_ids(u);
    let wu = g.neighbor_weights(u);
    let nv = g.neighbor_ids(v);
    let wv = g.neighbor_weights(v);
    let (mut i, mut j) = (0usize, 0usize);
    let mut num = 0.0f64;
    while i < nu.len() && j < nv.len() {
        let (a, b) = (nu[i], nv[j]);
        if a == b {
            num += wu[i] * wv[j];
            i += 1;
            j += 1;
        } else if a < b {
            i += 1;
        } else {
            j += 1;
        }
    }
    num / (g.norm_sq(u) * g.norm_sq(v)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::GraphBuilder;
    use proptest::prelude::*;

    fn unweighted_clique_plus_pendant() -> CsrGraph {
        // K4 over {0,1,2,3} plus pendant 4 attached to 0.
        GraphBuilder::from_unweighted_edges(
            5,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)],
        )
        .unwrap()
    }

    #[test]
    fn unweighted_sigma_matches_scan_formula() {
        // SCAN: σ(u,v) = |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)|·|Γ(v)|) with closed
        // neighborhoods.
        let g = unweighted_clique_plus_pendant();
        // Γ(1) = {0,1,2,3}, Γ(2) = {0,1,2,3}: σ = 4/4 = 1.
        assert!((sigma_raw(&g, 1, 2) - 1.0).abs() < 1e-12);
        // Γ(0) = {0,1,2,3,4}, Γ(4) = {0,4}: common {0,4}, σ = 2/sqrt(10).
        assert!((sigma_raw(&g, 0, 4) - 2.0 / 10.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one() {
        let g = unweighted_clique_plus_pendant();
        for v in 0..5 {
            assert!((sigma_raw(&g, v, v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_sigma_hand_computed() {
        // Path 0 -(2.0)- 1 -(0.5)- 2, all with unit self-loops.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, 0.5)]).unwrap();
        // Γ(0)={0(1),1(2)}, Γ(1)={0(2),1(1),2(0.5)}.
        // common: 0 → w_00·w_10 = 1·2 = 2; 1 → w_01·w_11 = 2·1 = 2. num=4.
        // l_0 = 1+4 = 5; l_1 = 4+1+0.25 = 5.25. σ = 4/sqrt(26.25).
        let expect = 4.0 / (5.0f64 * 5.25).sqrt();
        assert!((sigma_raw(&g, 0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn eps_decision_agrees_with_exact_sigma() {
        let g = unweighted_clique_plus_pendant();
        let params = ScanParams::new(0.6, 2);
        let k_opt = Kernel::new(&g, params);
        let k_plain = Kernel::with_optimizations(&g, params, false);
        for u in 0..5u32 {
            for &v in g.neighbor_ids(u) {
                let exact = sigma_raw(&g, u, v) >= 0.6;
                assert_eq!(k_opt.is_eps_neighbor(u, v), exact, "opt ({u},{v})");
                assert_eq!(k_plain.is_eps_neighbor(u, v), exact, "plain ({u},{v})");
            }
        }
    }

    #[test]
    fn lemma5_filter_fires_and_is_sound() {
        // High ε over a weak, long-degree-mismatch edge should be filtered.
        let mut b = GraphBuilder::new(12);
        for v in 1..11 {
            b.add_edge(0, v, 1.0);
        }
        b.add_edge(0, 11, 0.05); // weak pendant
        let g = b.build();
        let k = Kernel::new(&g, ScanParams::new(0.9, 2));
        let d = k.eps_decision(0, 11);
        // Whether filtered or merge-joined, it must be "not similar"...
        assert_ne!(d, EpsDecision::Similar);
        // ...and the exact value confirms.
        assert!(sigma_raw(&g, 0, 11) < 0.9);
    }

    #[test]
    fn counters_track_each_path() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2));
        let _ = k.sigma(0, 1);
        let _ = k.eps_decision(1, 2);
        k.record_shared_eval();
        let s = k.stats();
        assert_eq!(s.sigma_evals, 2);
        assert_eq!(s.shared_evals, 1);
        // Neither call above can trip the Lemma-5 prefilter, and a kernel
        // without the edge cache never records hits; total_decided must be
        // the exact sum of the four work counters.
        assert_eq!(s.lemma5_filtered, 0);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(
            s.total_decided(),
            s.sigma_evals + s.lemma5_filtered + s.shared_evals + s.cache_hits
        );
        assert_eq!(s.total_decided(), 3);
    }

    #[test]
    fn cache_misses_complement_hits() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(true);
        let _ = k.eps_decision(0, 1); // miss: computed + stored
        let _ = k.eps_decision(0, 1); // hit
        let _ = k.eps_decision(1, 0); // hit (symmetric)
        let _ = k.eps_decision(0, 2); // miss
        let s = k.stats();
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_hits, 2);
        // A miss always falls through to a real decision.
        assert_eq!(s.cache_misses, s.sigma_evals + s.lemma5_filtered);
    }

    #[test]
    fn early_exit_counters_are_subsets_of_sigma_evals() {
        // Clique pairs at low ε early-accept (num crosses the threshold with
        // suffixes left); the weak pendant at high ε early-rejects via the
        // remaining-suffix bound when it survives the Lemma-5 prefilter.
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.3, 2));
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let _ = k.eps_decision(u, v);
            }
        }
        let s = k.stats();
        assert!(s.early_accepts > 0, "low ε on a clique must early-accept");
        assert!(s.early_accepts + s.early_rejects <= s.sigma_evals);
        // The unoptimized kernel never records either.
        let plain = Kernel::with_optimizations(&g, ScanParams::new(0.3, 2), false);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                let _ = plain.eps_decision(u, v);
            }
        }
        assert_eq!(plain.stats().early_accepts, 0);
        assert_eq!(plain.stats().early_rejects, 0);
    }

    #[test]
    fn eps_neighborhood_includes_self() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.99, 2));
        let n0 = k.eps_neighborhood(0);
        assert!(n0.contains(&0));
        // Clique members 1,2,3 have σ(i,j)=1 among themselves.
        let n1 = k.eps_neighborhood(1);
        assert!(n1.contains(&2) && n1.contains(&3));
    }

    #[test]
    fn core_check_early_exit_matches_exhaustive() {
        let g = unweighted_clique_plus_pendant();
        for eps in [0.3, 0.5, 0.7, 0.9] {
            for mu in 1..6 {
                let k = Kernel::new(&g, ScanParams::new(eps, mu));
                for v in 0..5u32 {
                    assert_eq!(
                        k.core_check_early_exit(v, 0),
                        k.is_core_exhaustive(v),
                        "eps={eps} mu={mu} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn core_check_uses_known_count() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 4));
        // With enough already-known ε-neighbors, no scanning is needed.
        assert!(k.core_check_early_exit(4, 10));
    }

    #[test]
    fn edge_cache_hits_on_repeat_and_mirror_queries() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(true);
        let first = k.eps_decision(0, 1);
        assert_eq!(k.stats().cache_hits, 0);
        // Same direction again: answered from the cache.
        assert_eq!(k.eps_decision(0, 1), first);
        // Mirror direction: the symmetric store makes this a hit too.
        assert_eq!(k.eps_decision(1, 0), first);
        let s = k.stats();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.sigma_evals + s.lemma5_filtered, 1);
    }

    #[test]
    fn edge_cache_reports_filtered_pairs_as_dissimilar() {
        // Lemma-5 filters the weak pendant edge; the cached verdict loses
        // the FilteredOut/Dissimilar distinction but never the boolean.
        let mut b = GraphBuilder::new(12);
        for v in 1..11 {
            b.add_edge(0, v, 1.0);
        }
        b.add_edge(0, 11, 0.05);
        let g = b.build();
        let k = Kernel::new(&g, ScanParams::new(0.9, 2)).with_edge_cache(true);
        assert_eq!(k.eps_decision(0, 11), EpsDecision::FilteredOut);
        assert_eq!(k.eps_decision(0, 11), EpsDecision::Dissimilar);
        assert_eq!(k.eps_decision(11, 0), EpsDecision::Dissimilar);
        assert_eq!(k.stats().cache_hits, 2);
        assert_eq!(k.stats().lemma5_filtered, 1);
    }

    #[test]
    fn edge_cache_disabled_never_counts_hits() {
        let g = unweighted_clique_plus_pendant();
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_edge_cache(false);
        assert!(k.edge_cache().is_none());
        let _ = k.eps_decision(0, 1);
        let _ = k.eps_decision(0, 1);
        assert_eq!(k.stats().cache_hits, 0);
        assert_eq!(k.stats().sigma_evals, 2);
    }

    /// A moderately dense random graph with a few genuine hubs.
    fn hubby_random_graph(seed: u64) -> CsrGraph {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 60u32;
        let mut b = GraphBuilder::new(n as usize);
        // Background sparse edges...
        for _ in 0..160 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v, rng.gen_range(0.05..1.0));
            }
        }
        // ...plus three hubs wired to most of the graph.
        for hub in [0u32, 1, 2] {
            for v in 3..n {
                if rng.gen_bool(0.7) {
                    b.add_edge(hub, v, rng.gen_range(0.05..1.0));
                }
            }
        }
        b.build()
    }

    /// Satellite fix regression: when the edge cache and the batched /
    /// hash-probe-style row pass are both active, each adjacent decision
    /// must count exactly one of {cache_hit, cache_miss}, and each computed
    /// decision exactly one of {lemma5_filtered, sigma_evals} — the batched
    /// path must not re-route cache-answered pairs through a second
    /// accounting site.
    #[test]
    fn batched_accounting_matches_per_pair_path() {
        let g = hubby_random_graph(7);
        let params = ScanParams::new(0.4, 3);
        let reference = Kernel::new(&g, params).with_edge_cache(true);
        let batched = Kernel::new(&g, params)
            .with_edge_cache(true)
            .with_hub_bitmaps_params(8, 4);
        let mut scratch = BatchScratch::new(g.num_vertices());
        let mut out = Vec::new();
        let mut adjacent_decisions = 0u64;
        for p in g.vertices() {
            let expect = reference.eps_neighborhood(p);
            batched.eps_neighborhood_batched(p, &mut scratch, &mut out);
            assert_eq!(out, expect, "neighborhood of {p}");
            adjacent_decisions += (g.degree(p) - 1) as u64; // minus self
        }
        let (a, b) = (reference.stats(), batched.stats());
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_misses, b.cache_misses);
        assert_eq!(a.cache_hits + a.cache_misses, adjacent_decisions);
        assert_eq!(b.cache_hits + b.cache_misses, adjacent_decisions);
        // Same Lemma-5 prefilter, so the computed split matches exactly too.
        assert_eq!(a.lemma5_filtered, b.lemma5_filtered);
        assert_eq!(a.sigma_evals, b.sigma_evals);
        assert_eq!(b.cache_misses, b.sigma_evals + b.lemma5_filtered);
    }

    /// Second half of the regression: repeat range queries are answered
    /// entirely from the cache — hits grow, evaluations do not.
    #[test]
    fn repeat_batched_queries_hit_cache_without_recounting_evals() {
        let g = hubby_random_graph(8);
        let k = Kernel::new(&g, ScanParams::new(0.4, 3))
            .with_edge_cache(true)
            .with_hub_bitmaps_params(8, 4);
        let mut scratch = BatchScratch::new(g.num_vertices());
        let mut out = Vec::new();
        for p in g.vertices() {
            k.eps_neighborhood_batched(p, &mut scratch, &mut out);
        }
        let first = k.stats();
        for p in g.vertices() {
            k.eps_neighborhood_batched(p, &mut scratch, &mut out);
        }
        let second = k.stats();
        assert!(second.cache_hits > first.cache_hits);
        assert_eq!(second.sigma_evals, first.sigma_evals);
        assert_eq!(second.lemma5_filtered, first.lemma5_filtered);
        assert_eq!(second.cache_misses, first.cache_misses);
        assert_eq!(
            second.cache_hits - first.cache_hits,
            first.cache_hits + first.cache_misses,
            "every adjacent decision of the second sweep is a hit"
        );
    }

    /// The kernel-side path counters partition sigma_evals exactly, and
    /// probe evaluations recorded externally land in their own counter.
    #[test]
    fn path_counters_partition_sigma_evals() {
        let g = hubby_random_graph(9);
        let k = Kernel::new(&g, ScanParams::new(0.4, 3)).with_hub_bitmaps_params(8, 4);
        let mut scratch = BatchScratch::new(g.num_vertices());
        let mut out = Vec::new();
        for p in g.vertices().take(20) {
            let _ = k.eps_neighborhood(p);
        }
        for p in g.vertices().skip(20) {
            k.eps_neighborhood_batched(p, &mut scratch, &mut out);
        }
        k.record_probe_evals(5);
        let s = k.stats();
        assert!(s.path_bitmap > 0, "hub pairs must take the bitmap path");
        assert!(
            s.path_batched > 0,
            "range queries must take the batched path"
        );
        assert_eq!(s.path_merge + s.path_bitmap + s.path_batched, s.sigma_evals);
        assert_eq!(s.path_probe, 5);
        // A kernel without the locality bundle runs everything as merges.
        let plain = Kernel::new(&g, ScanParams::new(0.4, 3));
        for p in g.vertices().take(10) {
            let _ = plain.eps_neighborhood(p);
        }
        let ps = plain.stats();
        assert_eq!(ps.path_merge, ps.sigma_evals);
        assert_eq!(ps.path_bitmap + ps.path_batched + ps.path_probe, 0);
    }

    /// σ through the hub bitmaps and the batched dense row is bit-identical
    /// to the merge-join reference on a hub-heavy graph.
    #[test]
    fn fast_path_sigma_bit_identical_on_hubby_graph() {
        let g = hubby_random_graph(10);
        let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_hub_bitmaps_params(8, 4);
        let hubs = k.hub_bitmaps().unwrap();
        assert!(hubs.num_hubs() > 0);
        let mut scratch = BatchScratch::new(g.num_vertices());
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                let expect = sigma_raw(&g, u, v).to_bits();
                assert_eq!(
                    k.sigma_batched(u, v, &mut scratch).to_bits(),
                    expect,
                    "batched σ({u},{v})"
                );
                if let Some(s) = k.sigma_bitmap(u, v) {
                    assert_eq!(s.to_bits(), expect, "bitmap σ({u},{v})");
                }
            }
        }
    }

    /// Approx mode lets the sketch decide every surviving adjacent pair:
    /// `path_sketch` absorbs all of `sigma_evals` and the exact paths never
    /// run.
    #[test]
    fn approx_mode_decides_from_the_sketch() {
        let g = hubby_random_graph(11);
        let k = Kernel::new(&g, ScanParams::new(0.4, 3))
            .with_hub_bitmaps_params(8, 4)
            .with_sketch_params(SketchMode::Approx, 256, 8, 5, 1);
        let mut scratch = BatchScratch::new(g.num_vertices());
        let mut out = Vec::new();
        for p in g.vertices() {
            if p % 2 == 0 {
                let _ = k.eps_neighborhood(p);
            } else {
                k.eps_neighborhood_batched(p, &mut scratch, &mut out);
            }
        }
        let s = k.stats();
        assert!(s.path_sketch > 0, "approx decisions must be counted");
        assert_eq!(
            s.path_merge + s.path_bitmap + s.path_batched + s.path_sketch,
            s.sigma_evals
        );
        assert_eq!(
            s.path_merge + s.path_bitmap + s.path_batched,
            0,
            "approx mode must never run an exact kernel path"
        );
    }

    /// Assist mode routes confidently-estimated pairs to the classic merge
    /// and records exact agreements, while emitting zero sketch decisions.
    #[test]
    fn assist_routes_and_confirms_confident_pairs() {
        let g = hubby_random_graph(12);
        let k = Kernel::new(&g, ScanParams::new(0.4, 3)).with_sketch_params(
            SketchMode::Assist,
            512,
            16,
            5,
            1,
        );
        for p in g.vertices() {
            let _ = k.eps_neighborhood(p);
        }
        let s = k.stats();
        assert_eq!(s.path_sketch, 0, "assist never decides from the sketch");
        assert!(
            s.sketch_confirms > 0,
            "wide signatures must confidently route some pairs"
        );
        assert!(s.sketch_confirms <= s.path_merge);
    }

    proptest! {
        /// Satellite: the `sigma_path_{merge,probe,bitmap,batched,sketch}`
        /// counters exactly partition `sigma_evals` across every combination
        /// of SketchMode × hub-bitmaps × batched Step-1 × edge cache
        /// (probe stays zero — it is recorded externally by the index
        /// build, never by these kernel paths).
        #[test]
        fn sigma_paths_partition_across_modes(
            edges in proptest::collection::vec((0u32..14, 0u32..14, 0.05f64..1.0), 1..70),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(14, edges).unwrap();
            let params = ScanParams::new(eps, 3);
            for mode in [SketchMode::Off, SketchMode::Assist, SketchMode::Approx] {
                for hub in [false, true] {
                    for batched in [false, true] {
                        for cache in [false, true] {
                            let mut k = Kernel::new(&g, params).with_edge_cache(cache);
                            if hub {
                                k = k.with_hub_bitmaps_params(4, 1);
                            }
                            k = k.with_sketch_params(mode, 32, 8, 7, 1);
                            let mut scratch = BatchScratch::new(g.num_vertices());
                            let mut out = Vec::new();
                            for p in g.vertices() {
                                if batched {
                                    k.eps_neighborhood_batched(p, &mut scratch, &mut out);
                                } else {
                                    let _ = k.eps_neighborhood(p);
                                }
                                let _ = k.core_check_early_exit(p, 0);
                            }
                            let s = k.stats();
                            prop_assert_eq!(
                                s.path_merge + s.path_bitmap + s.path_batched + s.path_sketch,
                                s.sigma_evals,
                                "mode={:?} hub={} batched={} cache={}",
                                mode, hub, batched, cache
                            );
                            prop_assert_eq!(s.path_probe, 0u64);
                            if mode != SketchMode::Approx {
                                prop_assert_eq!(
                                    s.path_sketch, 0u64,
                                    "only approx mode may decide via sketch"
                                );
                            }
                        }
                    }
                }
            }
        }

        /// Assist mode is exact-preserving at the decision level even with
        /// deliberately tiny (noisy) signatures: every adjacent ε-decision
        /// and core check matches the sketch-free kernel's.
        #[test]
        fn assist_decisions_match_sketch_free(
            edges in proptest::collection::vec((0u32..14, 0u32..14, 0.05f64..1.0), 1..70),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(14, edges).unwrap();
            let params = ScanParams::new(eps, 2);
            let plain = Kernel::new(&g, params);
            let assist =
                Kernel::new(&g, params).with_sketch_params(SketchMode::Assist, 16, 4, 3, 1);
            for u in g.vertices() {
                for &v in g.neighbor_ids(u) {
                    if v == u {
                        continue;
                    }
                    prop_assert_eq!(
                        plain.is_eps_neighbor(u, v),
                        assist.is_eps_neighbor(u, v),
                        "assist decision drifted at ({}, {})", u, v
                    );
                }
                prop_assert_eq!(
                    plain.core_check_early_exit(u, 0),
                    assist.core_check_early_exit(u, 0),
                    "assist core check drifted at {}", u
                );
            }
            prop_assert_eq!(assist.stats().path_sketch, 0u64);
        }

        /// σ is symmetric, in [0,1], and the optimized ε-decision always
        /// agrees with the exact value, on random weighted graphs.
        #[test]
        fn sigma_properties_on_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0.05f64..1.0), 1..60),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(12, edges).unwrap();
            let params = ScanParams::new(eps, 2);
            let k = Kernel::new(&g, params);
            for u in 0..12u32 {
                for &v in g.neighbor_ids(u) {
                    let s_uv = sigma_raw(&g, u, v);
                    let s_vu = sigma_raw(&g, v, u);
                    prop_assert!((s_uv - s_vu).abs() < 1e-9, "asymmetric σ({u},{v})");
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&s_uv));
                    // Guard the threshold comparison against float ties.
                    if (s_uv - eps).abs() > 1e-9 {
                        prop_assert_eq!(
                            k.is_eps_neighbor(u, v),
                            s_uv >= eps,
                            "decision mismatch at ({}, {}), σ={}", u, v, s_uv
                        );
                    }
                }
            }
        }

        /// The cached ε-decision agrees with the exact σ from both edge
        /// directions and on repeat queries, and every decision past the
        /// first per undirected edge is a cache hit.
        #[test]
        fn cached_eps_decision_agrees_with_sigma_raw(
            edges in proptest::collection::vec((0u32..14, 0u32..14, 0.05f64..1.0), 1..70),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(14, edges).unwrap();
            let k = Kernel::new(&g, ScanParams::new(eps, 2)).with_edge_cache(true);
            for _pass in 0..2 {
                for u in g.vertices() {
                    for &v in g.neighbor_ids(u) {
                        if v == u {
                            continue;
                        }
                        let exact = sigma_raw(&g, u, v);
                        // Skip float ties: FilteredOut/Dissimilar vs Similar
                        // could legitimately flip within rounding noise.
                        if (exact - eps).abs() <= 1e-9 {
                            continue;
                        }
                        prop_assert_eq!(
                            matches!(k.eps_decision(u, v), EpsDecision::Similar),
                            exact >= eps,
                            "cached decision mismatch at ({}, {}), σ={}", u, v, exact
                        );
                    }
                }
            }
            // Per undirected edge: ≤ 1 real decision; everything else hits.
            let s = k.stats();
            prop_assert!(s.sigma_evals + s.lemma5_filtered <= g.num_edges());
        }

        /// The batched dense-row σ and the hub-bitmap σ are bit-identical
        /// to `sigma_raw` on arbitrary random weighted graphs (ISSUE 5
        /// acceptance: all σ fast paths proptest-proven bit-identical).
        #[test]
        fn fast_path_sigma_bit_identical_to_sigma_raw(
            edges in proptest::collection::vec((0u32..16, 0u32..16, 0.05f64..1.0), 1..90),
        ) {
            let g = GraphBuilder::from_edges(16, edges).unwrap();
            // Degree floor 1 makes every vertex bitmap-eligible, so the
            // bitmap path is exercised even on tiny graphs.
            let k = Kernel::new(&g, ScanParams::new(0.5, 2)).with_hub_bitmaps_params(6, 1);
            let mut scratch = BatchScratch::new(g.num_vertices());
            for u in g.vertices() {
                for &v in g.neighbor_ids(u) {
                    let expect = sigma_raw(&g, u, v).to_bits();
                    prop_assert_eq!(
                        k.sigma_batched(u, v, &mut scratch).to_bits(),
                        expect,
                        "batched σ({}, {})", u, v
                    );
                    if let Some(s) = k.sigma_bitmap(u, v) {
                        prop_assert_eq!(s.to_bits(), expect, "bitmap σ({}, {})", u, v);
                    }
                }
            }
        }

        /// Batched range queries return exactly the per-pair ε-neighborhood
        /// and agree with the exact σ, away from float ties, whatever the
        /// kernel path (bitmap, branchless merge, dense gather) decided each
        /// pair.
        #[test]
        fn batched_neighborhood_matches_per_pair(
            edges in proptest::collection::vec((0u32..14, 0u32..14, 0.05f64..1.0), 1..70),
            eps in 0.05f64..0.95,
        ) {
            let g = GraphBuilder::from_edges(14, edges).unwrap();
            let params = ScanParams::new(eps, 2);
            let per_pair = Kernel::new(&g, params);
            let batched = Kernel::new(&g, params).with_hub_bitmaps_params(4, 1);
            let mut scratch = BatchScratch::new(g.num_vertices());
            let mut out = Vec::new();
            for p in g.vertices() {
                batched.eps_neighborhood_batched(p, &mut scratch, &mut out);
                prop_assert_eq!(&out, &per_pair.eps_neighborhood(p), "Γε({})", p);
                for &q in &out {
                    if q != p {
                        let exact = sigma_raw(&g, p, q);
                        if (exact - eps).abs() > 1e-9 {
                            prop_assert!(exact >= eps, "false positive at ({}, {})", p, q);
                        }
                    }
                }
            }
        }

        /// Cauchy–Schwarz: σ ≤ 1 even under adversarial weights.
        #[test]
        fn sigma_never_exceeds_one(
            w1 in 0.05f64..1.0, w2 in 0.05f64..1.0, w3 in 0.05f64..1.0,
        ) {
            let g = GraphBuilder::from_edges(3, vec![(0,1,w1),(1,2,w2),(0,2,w3)]).unwrap();
            for u in 0..3u32 {
                for v in 0..3u32 {
                    prop_assert!(sigma_raw(&g, u, v) <= 1.0 + 1e-9);
                }
            }
        }
    }
}
