//! SCAN parameters.

/// The (ε, μ) parameter pair shared by SCAN, SCAN-B, pSCAN, SCAN++ and
/// anySCAN.
///
/// * `epsilon` — similarity threshold of the structural neighborhood
///   (Definition 2), in `(0, 1]`.
/// * `mu` — minimum size of a structural neighborhood for its center to be
///   a core (Definition 3). Counts the vertex itself (closed neighborhood),
///   as in the original SCAN.
///
/// The paper's default is ε = 0.5, μ = 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanParams {
    pub epsilon: f64,
    pub mu: usize,
}

impl ScanParams {
    /// Creates a parameter pair, panicking on out-of-domain values.
    pub fn new(epsilon: f64, mu: usize) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0 && epsilon.is_finite(),
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(mu >= 1, "mu must be at least 1");
        ScanParams { epsilon, mu }
    }

    /// The paper's defaults (ε = 0.5, μ = 5).
    pub fn paper_defaults() -> Self {
        ScanParams::new(0.5, 5)
    }
}

impl Default for ScanParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ScanParams::default();
        assert_eq!(p.epsilon, 0.5);
        assert_eq!(p.mu, 5);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        let _ = ScanParams::new(0.0, 5);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_epsilon_above_one() {
        let _ = ScanParams::new(1.5, 5);
    }

    #[test]
    #[should_panic(expected = "mu")]
    fn rejects_zero_mu() {
        let _ = ScanParams::new(0.5, 0);
    }
}
