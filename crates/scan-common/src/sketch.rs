//! b-bit MinHash signatures over closed neighborhoods.
//!
//! Following the sketch-accelerated line of "Parallel Index-Based
//! Structural Graph Clustering and Its Approximation", every vertex gets a
//! fixed-width signature of its **closed** neighborhood Γ̄(v) = Γ(v) ∪ {v}:
//! `rows` independent MinHash rows, each truncated to the low `bits` bits
//! (b-bit MinHash, Li & König). Two signatures are compared with a packed
//! word-wise walk — `rows · bits / 64` XOR/mask operations, independent of
//! degree — and the matching-row rate `m` is de-biased for truncation
//! collisions to a Jaccard estimate
//!
//! ```text
//! Ĵ = (m − 2⁻ᵇ) / (1 − 2⁻ᵇ)          (clamped to [0, 1])
//! ```
//!
//! which converts to an estimated structural similarity through the
//! inclusion–exclusion identity `|A ∩ B| = J·(|A| + |B|) / (1 + J)`:
//!
//! ```text
//! σ̂(u, v) = |Γ̄(u) ∩ Γ̄(v)|_est / √(|Γ̄(u)|·|Γ̄(v)|)
//! ```
//!
//! **Error model.** Per-row matches are i.i.d. Bernoulli, so the standard
//! error of `m` is at most `0.5/√rows`; [`NeighborhoodSketches::tolerance`]
//! widens that into the confidence half-width assist mode uses to route
//! only the ambiguous band `|σ̂ − ε| ≤ t` through the exact kernels. The
//! estimator targets the *unweighted* cosine: edge weights are invisible to
//! a set sketch, which is exact for unit-weight graphs and a documented
//! source of bias on weighted ones (DESIGN.md §11). Assist mode is immune —
//! sketches there only order and route, never decide.
//!
//! Construction is deterministic: row `r` hashes vertex `x` with a
//! splitmix64-style mixer keyed on `seed` and `r`, so equal `(graph, rows,
//! bits, seed)` always yields byte-identical signatures regardless of
//! thread count.

use anyscan_graph::{CsrGraph, VertexId};
use anyscan_parallel::parallel_map_adaptive;

/// How the σ kernel uses neighborhood sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchMode {
    /// No sketches: every decision runs the exact kernels (the baseline).
    #[default]
    Off,
    /// Exact-preserving acceleration: sketch estimates *order* core-check
    /// candidates (most promising first, so the μ-early-exit fires sooner)
    /// and route confident pairs to the cheapest exact path. Every emitted
    /// decision is still made by `sigma_raw`-equivalent code; clusterings
    /// are bit-identical to [`SketchMode::Off`].
    Assist,
    /// The sketch estimate decides outright (`σ̂ ≥ ε` ⇒ similar). Signature
    /// size is the error knob; see the crate-level error model.
    Approx,
}

impl SketchMode {
    /// Stable one-byte code used by the `ASIX`/`ASCK` serializers.
    pub fn code(self) -> u8 {
        match self {
            SketchMode::Off => 0,
            SketchMode::Assist => 1,
            SketchMode::Approx => 2,
        }
    }

    /// Inverse of [`SketchMode::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<SketchMode> {
        match code {
            0 => Some(SketchMode::Off),
            1 => Some(SketchMode::Assist),
            2 => Some(SketchMode::Approx),
            _ => None,
        }
    }

    /// CLI spelling (`--sketch off|assist|approx`).
    pub fn as_str(self) -> &'static str {
        match self {
            SketchMode::Off => "off",
            SketchMode::Assist => "assist",
            SketchMode::Approx => "approx",
        }
    }
}

impl std::str::FromStr for SketchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SketchMode::Off),
            "assist" => Ok(SketchMode::Assist),
            "approx" => Ok(SketchMode::Approx),
            other => Err(format!(
                "unknown sketch mode {other:?} (expected off, assist or approx)"
            )),
        }
    }
}

impl std::fmt::Display for SketchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Default number of MinHash rows per signature.
pub const DEFAULT_ROWS: usize = 128;
/// Default truncation width in bits per row.
pub const DEFAULT_BITS: u32 = 8;
/// Hard cap on rows (keeps signatures and the ASIX section bounded).
pub const MAX_ROWS: usize = 4096;

/// Row widths that pack evenly into `u64` words.
pub const VALID_BITS: [u32; 5] = [1, 2, 4, 8, 16];

/// splitmix64 finalizer: the per-row hash of a vertex id.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// b-bit MinHash signatures for every closed neighborhood of a graph.
///
/// Storage is row-major per vertex: vertex `v` owns
/// `words_per_vertex` consecutive `u64` words, each packing `64 / bits`
/// row lanes in ascending row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborhoodSketches {
    rows: usize,
    bits: u32,
    words_per_vertex: usize,
    seed: u64,
    data: Vec<u64>,
}

impl NeighborhoodSketches {
    /// Builds signatures for all `g.num_vertices()` closed neighborhoods on
    /// the shared worker pool.
    ///
    /// # Panics
    /// If `rows` is 0 or exceeds [`MAX_ROWS`], or `bits` is not one of
    /// [`VALID_BITS`].
    pub fn build(g: &CsrGraph, rows: usize, bits: u32, seed: u64, threads: usize) -> Self {
        assert!(
            (1..=MAX_ROWS).contains(&rows),
            "sketch rows {rows} outside 1..={MAX_ROWS}"
        );
        assert!(
            VALID_BITS.contains(&bits),
            "sketch bits {bits} not one of {VALID_BITS:?}"
        );
        let lanes = (64 / bits) as usize;
        let words_per_vertex = rows.div_ceil(lanes);
        let n = g.num_vertices();
        let per_vertex: Vec<Vec<u64>> = parallel_map_adaptive(threads, n, |i| {
            let v = i as VertexId;
            let mut words = vec![0u64; words_per_vertex];
            sign_closed_neighborhood(g, v, rows, bits, seed, &mut words);
            words
        });
        let mut data = Vec::with_capacity(n * words_per_vertex);
        for words in per_vertex {
            data.extend_from_slice(&words);
        }
        NeighborhoodSketches {
            rows,
            bits,
            words_per_vertex,
            seed,
            data,
        }
    }

    /// Reassembles sketches from their serialized parts (the ASIX reader).
    /// Validates the same bounds as [`NeighborhoodSketches::build`] but
    /// returns an error message instead of panicking.
    pub fn from_raw_parts(
        rows: usize,
        bits: u32,
        seed: u64,
        num_vertices: usize,
        data: Vec<u64>,
    ) -> Result<Self, String> {
        if !(1..=MAX_ROWS).contains(&rows) {
            return Err(format!("sketch rows {rows} outside 1..={MAX_ROWS}"));
        }
        if !VALID_BITS.contains(&bits) {
            return Err(format!("sketch bits {bits} not one of {VALID_BITS:?}"));
        }
        let lanes = (64 / bits) as usize;
        let words_per_vertex = rows.div_ceil(lanes);
        let expect = num_vertices * words_per_vertex;
        if data.len() != expect {
            return Err(format!(
                "sketch data has {} words, expected {expect} ({num_vertices} vertices × {words_per_vertex})",
                data.len()
            ));
        }
        Ok(NeighborhoodSketches {
            rows,
            bits,
            words_per_vertex,
            seed,
            data,
        })
    }

    /// Number of MinHash rows per signature.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Truncation width in bits per row.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `u64` words per vertex signature.
    pub fn words_per_vertex(&self) -> usize {
        self.words_per_vertex
    }

    /// Seed the row hashes were keyed on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of signed vertices.
    pub fn num_vertices(&self) -> usize {
        self.data.len() / self.words_per_vertex
    }

    /// The packed signature words (serialization).
    pub fn raw_data(&self) -> &[u64] {
        &self.data
    }

    /// Confidence half-width `t` for assist-mode routing: pairs with
    /// `|σ̂ − ε| > t` are considered confidently decided by the sketch
    /// (≈2 standard errors of the matching-row rate, widened for the
    /// truncation de-bias and the J→σ transfer slope).
    pub fn tolerance(&self) -> f64 {
        let c = collision_rate(self.bits);
        2.0 / ((self.rows as f64).sqrt() * (1.0 - c))
    }

    #[inline]
    fn words(&self, v: VertexId) -> &[u64] {
        let start = v as usize * self.words_per_vertex;
        &self.data[start..start + self.words_per_vertex]
    }

    /// Fraction of rows whose b-bit lanes agree between `u` and `v`.
    pub fn match_rate(&self, u: VertexId, v: VertexId) -> f64 {
        let (wu, wv) = (self.words(u), self.words(v));
        let lanes = (64 / self.bits) as usize;
        let mut matches = 0u32;
        let mut remaining = self.rows;
        for (a, b) in wu.iter().zip(wv) {
            let in_word = remaining.min(lanes);
            matches += matching_lanes(a ^ b, self.bits, in_word);
            remaining -= in_word;
        }
        f64::from(matches) / self.rows as f64
    }

    /// Estimated Jaccard similarity of the two closed neighborhoods,
    /// de-biased for b-bit truncation collisions and clamped to `[0, 1]`.
    pub fn jaccard_estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let c = collision_rate(self.bits);
        ((self.match_rate(u, v) - c) / (1.0 - c)).clamp(0.0, 1.0)
    }

    /// Estimated structural similarity σ̂(u, v) from the Jaccard estimate
    /// and the closed degrees (see the crate-level error model).
    pub fn sigma_estimate(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let j = self.jaccard_estimate(u, v);
        let du = g.degree(u) as f64;
        let dv = g.degree(v) as f64;
        let inter = j * (du + dv) / (1.0 + j);
        (inter / (du * dv).sqrt()).clamp(0.0, 1.0)
    }
}

/// Expected matching-row rate between two *independent* sets under b-bit
/// truncation: 2⁻ᵇ.
fn collision_rate(bits: u32) -> f64 {
    1.0 / (1u64 << bits) as f64
}

/// Counts lanes of width `bits` that are zero in `diff`, considering only
/// the first `lanes` lanes of the word.
#[inline]
fn matching_lanes(diff: u64, bits: u32, lanes: usize) -> u32 {
    // SWAR: OR-collapse every lane onto its own LSB (log₂ b shift-ORs;
    // bits shifted across a lane boundary only ever land in the *upper*
    // half of the lower lane, never on its LSB), then count the LSBs that
    // stayed zero among the live lanes with a single popcount.
    let mut d = diff;
    let mut w = bits;
    while w > 1 {
        w /= 2;
        d |= d >> w;
    }
    let lane_lsbs = if bits == 64 {
        1u64
    } else {
        u64::MAX / ((1u64 << bits) - 1)
    };
    let live = if lanes as u32 * bits >= 64 {
        u64::MAX
    } else {
        (1u64 << (lanes as u32 * bits)) - 1
    };
    (!d & lane_lsbs & live).count_ones()
}

/// Signs one closed neighborhood into `words` (already zeroed,
/// `words.len() == rows.div_ceil(64 / bits)`).
fn sign_closed_neighborhood(
    g: &CsrGraph,
    v: VertexId,
    rows: usize,
    bits: u32,
    seed: u64,
    words: &mut [u64],
) {
    let lanes = (64 / bits) as usize;
    let lane_mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let nbrs = g.neighbor_ids(v);
    for r in 0..rows {
        // Row key: one mix of (seed, row) reused for every vertex of the row.
        let row_key = mix64(seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut min = mix64(row_key ^ u64::from(v));
        for &x in nbrs {
            if x == v {
                continue;
            }
            let h = mix64(row_key ^ u64::from(x));
            min = min.min(h);
        }
        let lane = min & lane_mask;
        words[r / lanes] |= lane << ((r % lanes) as u32 * bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as VertexId, (v + 1) as VertexId, 1.0);
        }
        b.build()
    }

    #[test]
    fn mode_codes_roundtrip() {
        for mode in [SketchMode::Off, SketchMode::Assist, SketchMode::Approx] {
            assert_eq!(SketchMode::from_code(mode.code()), Some(mode));
            assert_eq!(mode.as_str().parse::<SketchMode>().unwrap(), mode);
        }
        assert_eq!(SketchMode::from_code(9), None);
        assert!("fuzzy".parse::<SketchMode>().is_err());
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi(
            &mut rng,
            200,
            1000,
            WeightModel::Uniform { lo: 0.2, hi: 1.0 },
        );
        let a = NeighborhoodSketches::build(&g, 96, 8, 42, 1);
        let b = NeighborhoodSketches::build(&g, 96, 8, 42, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_neighborhoods_match_fully() {
        // K4: every closed neighborhood is {0,1,2,3}.
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in u + 1..4 {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        let sk = NeighborhoodSketches::build(&g, 64, 8, 1, 1);
        for u in 0..4u32 {
            for v in 0..4 {
                assert_eq!(sk.match_rate(u, v), 1.0);
                assert_eq!(sk.jaccard_estimate(u, v), 1.0);
            }
        }
        // Jaccard 1 with equal degrees ⇒ σ̂ = 1.
        assert!((sk.sigma_estimate(&g, 0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_neighborhoods_estimate_near_zero() {
        // Two far-apart path segments: closed neighborhoods are disjoint.
        let g = path_graph(40);
        let sk = NeighborhoodSketches::build(&g, 256, 8, 3, 1);
        let j = sk.jaccard_estimate(0, 30);
        assert!(j < 0.1, "disjoint Jaccard estimate {j} too large");
    }

    #[test]
    fn estimate_tracks_exact_sigma_on_unit_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi(&mut rng, 150, 1100, WeightModel::Unit);
        let sk = NeighborhoodSketches::build(&g, 512, 16, 5, 2);
        let mut worst: f64 = 0.0;
        for u in g.vertices() {
            for &v in g.neighbor_ids(u) {
                if v <= u {
                    continue;
                }
                let exact = crate::kernel::sigma_raw(&g, u, v);
                let est = sk.sigma_estimate(&g, u, v);
                worst = worst.max((exact - est).abs());
            }
        }
        // 512 rows × 16 bits: estimates should sit well within ~3 standard
        // errors of the exact unweighted cosine.
        assert!(worst < 0.16, "worst |σ − σ̂| = {worst}");
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let g = path_graph(10);
        let sk = NeighborhoodSketches::build(&g, 33, 4, 9, 1);
        let back = NeighborhoodSketches::from_raw_parts(
            sk.rows(),
            sk.bits(),
            sk.seed(),
            sk.num_vertices(),
            sk.raw_data().to_vec(),
        )
        .unwrap();
        assert_eq!(back, sk);
        assert!(NeighborhoodSketches::from_raw_parts(0, 8, 9, 10, vec![]).is_err());
        assert!(NeighborhoodSketches::from_raw_parts(33, 7, 9, 10, vec![]).is_err());
        assert!(
            NeighborhoodSketches::from_raw_parts(33, 4, 9, 10, vec![0; 3]).is_err(),
            "length mismatch must be rejected"
        );
    }

    #[test]
    fn tolerance_shrinks_with_rows() {
        let g = path_graph(8);
        let small = NeighborhoodSketches::build(&g, 32, 8, 1, 1);
        let large = NeighborhoodSketches::build(&g, 512, 8, 1, 1);
        assert!(large.tolerance() < small.tolerance());
    }
}
