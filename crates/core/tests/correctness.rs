//! The heart of the reproduction: anySCAN's final result must be identical
//! to SCAN's (Lemma 4) under every configuration knob.

use anyscan::{anyscan, AnyScan, AnyScanConfig, DsuKind, Phase};
use anyscan_baselines::scan;
use anyscan_graph::gen::{
    erdos_renyi, lfr, planted_partition, LfrParams, PlantedPartitionParams, WeightModel,
};
use anyscan_graph::{CsrGraph, GraphBuilder};
use anyscan_metrics::nmi;
use anyscan_scan_common::verify::assert_scan_equivalent;
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_cliques_bridge() -> CsrGraph {
    let mut edges = Vec::new();
    for a in 0..4u32 {
        for b in (a + 1)..4 {
            edges.push((a, b));
            edges.push((a + 4, b + 4));
        }
    }
    edges.push((2, 4));
    GraphBuilder::from_unweighted_edges(8, edges).unwrap()
}

#[test]
fn matches_scan_on_handmade_graph() {
    let g = two_cliques_bridge();
    for (eps, mu) in [(0.7, 3), (0.4, 3), (0.5, 2), (0.9, 5), (0.2, 2)] {
        let params = ScanParams::new(eps, mu);
        let truth = scan(&g, params);
        let ours = anyscan(&g, params);
        assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
    }
}

#[test]
fn matches_scan_on_random_weighted_graphs() {
    let mut rng = StdRng::seed_from_u64(51);
    for m in [60usize, 300, 1200] {
        let g = erdos_renyi(&mut rng, 150, m, WeightModel::uniform_default());
        for (eps, mu) in [(0.3, 3), (0.5, 5), (0.7, 2), (0.6, 8)] {
            let params = ScanParams::new(eps, mu);
            let truth = scan(&g, params);
            let ours = anyscan(&g, params);
            assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
        }
    }
}

#[test]
fn matches_scan_on_community_graphs() {
    let mut rng = StdRng::seed_from_u64(52);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 500,
            num_communities: 10,
            p_in: 0.4,
            p_out: 0.01,
            weights: WeightModel::CommunityCorrelated,
        },
    );
    for (eps, mu) in [(0.3, 4), (0.5, 5), (0.7, 3)] {
        let params = ScanParams::new(eps, mu);
        let truth = scan(&g, params);
        let ours = anyscan(&g, params);
        assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
    }
}

#[test]
fn matches_scan_on_lfr_graph() {
    let mut rng = StdRng::seed_from_u64(53);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(1_500, 18.0));
    for eps in [0.3, 0.5, 0.65] {
        let params = ScanParams::new(eps, 5);
        let truth = scan(&g, params);
        let ours = anyscan(&g, params);
        assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
    }
}

#[test]
fn every_block_size_gives_the_same_result() {
    let mut rng = StdRng::seed_from_u64(54);
    let g = erdos_renyi(&mut rng, 400, 3_000, WeightModel::uniform_default());
    let params = ScanParams::paper_defaults();
    let truth = scan(&g, params);
    for block in [1usize, 7, 64, 500, 100_000] {
        let config = AnyScanConfig::new(params).with_block_size(block);
        let mut algo = AnyScan::new(&g, config);
        let result = algo.run();
        assert_scan_equivalent(&g, params, &truth.clustering, &result);
    }
}

#[test]
fn every_seed_gives_the_same_result() {
    let mut rng = StdRng::seed_from_u64(55);
    let g = erdos_renyi(&mut rng, 300, 2_000, WeightModel::uniform_default());
    let params = ScanParams::new(0.45, 4);
    let truth = scan(&g, params);
    for seed in [0u64, 1, 99, 0xDEAD_BEEF] {
        let config = AnyScanConfig::new(params)
            .with_seed(seed)
            .with_block_size(128);
        let result = AnyScan::new(&g, config).run();
        assert_scan_equivalent(&g, params, &truth.clustering, &result);
    }
}

#[test]
fn ablation_knobs_preserve_exactness() {
    let mut rng = StdRng::seed_from_u64(56);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 400,
            num_communities: 8,
            p_in: 0.35,
            p_out: 0.02,
            weights: WeightModel::uniform_default(),
        },
    );
    let params = ScanParams::paper_defaults();
    let truth = scan(&g, params);
    for (opt, s2, s3, skip2, dsu) in [
        (false, true, true, false, DsuKind::Atomic),
        (true, false, false, false, DsuKind::Atomic),
        (true, true, true, true, DsuKind::Atomic),
        (true, true, true, false, DsuKind::Locked),
        (false, false, false, true, DsuKind::Locked),
    ] {
        let mut config = AnyScanConfig::new(params).with_block_size(256);
        config.optimizations = opt;
        config.sort_step2 = s2;
        config.sort_step3 = s3;
        config.skip_step2 = skip2;
        config.dsu = dsu;
        let result = AnyScan::new(&g, config).run();
        assert_scan_equivalent(&g, params, &truth.clustering, &result);
    }
}

#[test]
fn parallel_equals_sequential() {
    let mut rng = StdRng::seed_from_u64(57);
    let (g, _) = lfr(&mut rng, &LfrParams::paper_defaults(1_200, 16.0));
    let params = ScanParams::paper_defaults();
    let truth = scan(&g, params);
    for threads in [1usize, 2, 4, 8] {
        let config = AnyScanConfig::new(params)
            .with_threads(threads)
            .with_block_size(300);
        let result = AnyScan::new(&g, config).run();
        assert_scan_equivalent(&g, params, &truth.clustering, &result);
    }
}

#[test]
fn anytime_snapshots_converge_to_exact() {
    let mut rng = StdRng::seed_from_u64(58);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 600,
            num_communities: 6,
            p_in: 0.4,
            p_out: 0.01,
            weights: WeightModel::uniform_default(),
        },
    );
    let params = ScanParams::new(0.4, 5);
    let truth = scan(&g, params).clustering.labels_with_noise_cluster();

    let config = AnyScanConfig::new(params).with_block_size(64);
    let mut algo = AnyScan::new(&g, config);
    let mut scores = Vec::new();
    while algo.phase() != Phase::Done {
        algo.step();
        let snap = algo.snapshot();
        scores.push(nmi(&snap.labels_with_noise_cluster(), &truth));
    }
    let last = *scores.last().unwrap();
    assert!(last > 0.999, "final snapshot must match SCAN, NMI = {last}");
    // Quality trends upward: the last snapshot dominates the first, and the
    // mean of the second half dominates the first half.
    assert!(last >= scores[0]);
    let (a, b) = scores.split_at(scores.len() / 2);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    assert!(
        mean(b) >= mean(a) - 1e-9,
        "NMI should improve over time: first half {:.3}, second half {:.3}",
        mean(a),
        mean(b)
    );
}

#[test]
fn suspend_and_resume_is_equivalent_to_straight_run() {
    let mut rng = StdRng::seed_from_u64(59);
    let g = erdos_renyi(&mut rng, 250, 1_500, WeightModel::uniform_default());
    let params = ScanParams::paper_defaults();
    let config = AnyScanConfig::new(params).with_block_size(50);

    let straight = AnyScan::new(&g, config).run();

    // "Suspend" = stop stepping, inspect snapshots, continue later.
    let mut algo = AnyScan::new(&g, config);
    let mut pauses = 0;
    while algo.phase() != Phase::Done {
        algo.step();
        if pauses % 3 == 0 {
            let _ = algo.snapshot(); // inspection must not perturb the run
            let _ = algo.stats();
            let _ = algo.union_breakdown();
        }
        pauses += 1;
    }
    let resumed = algo.result();
    assert_eq!(straight, resumed);
}

#[test]
fn work_efficiency_beats_scan() {
    // A workload with real cluster structure (cores exist), where anySCAN's
    // super-node shortcuts actually have something to save. On core-free
    // inputs both algorithms pay the full 2|E| range-query cost.
    let mut rng = StdRng::seed_from_u64(60);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 1_000,
            num_communities: 10,
            p_in: 0.5,
            p_out: 0.005,
            weights: WeightModel::Unit,
        },
    );
    let params = ScanParams::new(0.4, 5);
    let s = scan(&g, params);
    let a = anyscan(&g, params);
    assert!(
        a.clustering.num_clusters() >= 8,
        "workload must actually cluster"
    );
    assert!(
        a.stats.sigma_evals < s.stats.sigma_evals,
        "anySCAN must evaluate fewer σ than SCAN: {} vs {}",
        a.stats.sigma_evals,
        s.stats.sigma_evals
    );
}

#[test]
fn union_counts_are_tiny_and_mostly_in_step1() {
    let mut rng = StdRng::seed_from_u64(61);
    let (g, _) = planted_partition(
        &mut rng,
        &PlantedPartitionParams {
            n: 800,
            num_communities: 8,
            p_in: 0.4,
            p_out: 0.01,
            weights: WeightModel::uniform_default(),
        },
    );
    let out = anyscan(&g, ScanParams::new(0.4, 5));
    let u = out.unions;
    assert!(u.total() > 0);
    assert!(
        u.total() < g.num_vertices() as u64,
        "unions {} should undercut |V| {}",
        u.total(),
        g.num_vertices()
    );
    // The paper reports most unions happen in (sequential) Step 1.
    assert!(
        u.step1 >= u.step2 + u.step3,
        "step1={} step2={} step3={}",
        u.step1,
        u.step2,
        u.step3
    );
}

#[test]
fn degenerate_graphs() {
    let params = ScanParams::paper_defaults();
    // Empty graph.
    let g = GraphBuilder::new(0).build();
    let out = anyscan(&g, params);
    assert!(out.clustering.is_empty());
    // Isolated vertices only.
    let g = GraphBuilder::new(10).build();
    let out = anyscan(&g, params);
    assert_eq!(out.clustering.num_clusters(), 0);
    assert_eq!(out.clustering.role_counts().outliers, 10);
    // Single edge.
    let g = GraphBuilder::from_unweighted_edges(2, vec![(0, 1)]).unwrap();
    let truth = scan(&g, ScanParams::new(0.5, 2));
    let ours = anyscan(&g, ScanParams::new(0.5, 2));
    assert_scan_equivalent(
        &g,
        ScanParams::new(0.5, 2),
        &truth.clustering,
        &ours.clustering,
    );
}

#[test]
fn mu_one_and_low_epsilon_edge_cases() {
    let g = two_cliques_bridge();
    for params in [
        ScanParams::new(0.01, 1),
        ScanParams::new(1.0, 2),
        ScanParams::new(0.999, 1),
    ] {
        let truth = scan(&g, params);
        let ours = anyscan(&g, params);
        assert_scan_equivalent(&g, params, &truth.clustering, &ours.clustering);
    }
}
