//! Property-based validation: for *arbitrary* random weighted graphs and
//! parameters, anySCAN must be SCAN-equivalent under every knob, and its
//! invariants must hold.

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_baselines::scan;
use anyscan_graph::GraphBuilder;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Role, ScanParams, SketchMode, NOISE};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = anyscan_graph::CsrGraph> {
    // 8..40 vertices, up to ~120 weighted edges (dense enough for clusters).
    (8usize..40)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..120))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn anyscan_is_scan_equivalent(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        block in 1usize..64,
        seed in 0u64..1000,
        threads in 1usize..4,
        cache in 0usize..2,
    ) {
        let params = ScanParams::new(eps, mu);
        let edge_cache = cache == 1;
        let truth = scan(&g, params).clustering;
        let config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_seed(seed)
            .with_threads(threads)
            .with_edge_cache(edge_cache);
        let ours = AnyScan::new(&g, config).run();
        if let Err(e) = check_scan_equivalent(&g, params, &truth, &ours) {
            prop_assert!(
                false,
                "divergence (eps={eps}, mu={mu}, block={block}, seed={seed}, \
                 threads={threads}, cache={edge_cache}): {e}"
            );
        }
    }

    /// Assist mode is exact-preserving at the driver level: with the same
    /// seed and schedule, the whole run — labels *and* roles — is identical
    /// to a sketch-free run, for arbitrary graphs and (deliberately noisy)
    /// tiny signatures. The sketches may only reorder and route work among
    /// exact kernels, never change a decision.
    #[test]
    fn assist_clustering_is_bit_identical_to_off(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        block in 1usize..64,
        seed in 0u64..1000,
        rows in 8usize..48,
        bits_pick in 0usize..3,
    ) {
        let params = ScanParams::new(eps, mu);
        let bits = [1u32, 4, 8][bits_pick];
        let base = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_seed(seed);
        let off = AnyScan::new(&g, base).run();
        let assist = AnyScan::new(
            &g,
            base.with_sketch(SketchMode::Assist).with_sketch_params(rows, bits),
        )
        .run();
        prop_assert_eq!(&off.labels, &assist.labels,
            "labels diverged (eps={}, mu={}, block={}, seed={}, rows={}, bits={})",
            eps, mu, block, seed, rows, bits);
        prop_assert_eq!(&off.roles, &assist.roles,
            "roles diverged (eps={}, mu={}, block={}, seed={}, rows={}, bits={})",
            eps, mu, block, seed, rows, bits);
    }

    #[test]
    fn result_invariants(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
    ) {
        let params = ScanParams::new(eps, mu);
        let config = AnyScanConfig::new(params).with_block_size(8);
        let mut algo = AnyScan::new(&g, config);
        let result = algo.run();

        // Role/label coherence.
        for v in 0..g.num_vertices() {
            let (l, r) = (result.labels[v], result.roles[v]);
            match r {
                Role::Core | Role::Border => prop_assert!(l != NOISE, "clustered role with noise label at {}", v),
                Role::Hub | Role::Outlier => prop_assert_eq!(l, NOISE, "noise role with cluster label at {}", v),
                Role::Unclassified => prop_assert!(false, "finished run left {v} unclassified"),
            }
        }
        // Every cluster contains at least one core.
        let mut has_core = std::collections::HashSet::new();
        for v in 0..g.num_vertices() {
            if result.roles[v] == Role::Core {
                has_core.insert(result.labels[v]);
            }
        }
        for v in 0..g.num_vertices() {
            if result.labels[v] != NOISE {
                prop_assert!(
                    has_core.contains(&result.labels[v]),
                    "cluster {} has no core",
                    result.labels[v]
                );
            }
        }
        // Union accounting: at most (#super-nodes − 1) successful unions.
        let u = algo.union_breakdown();
        if algo.num_supernodes() > 0 {
            prop_assert!(u.total() < algo.num_supernodes() as u64);
        } else {
            prop_assert_eq!(u.total(), 0);
        }
    }

    #[test]
    fn snapshot_labels_always_well_formed(
        g in arb_graph(),
        steps in 0usize..12,
    ) {
        let params = ScanParams::new(0.5, 3);
        let config = AnyScanConfig::new(params).with_block_size(4);
        let mut algo = AnyScan::new(&g, config);
        for _ in 0..steps {
            algo.step();
        }
        let snap = algo.snapshot();
        prop_assert_eq!(snap.len(), g.num_vertices());
        // Unclassified ↔ role unclassified.
        for v in 0..g.num_vertices() {
            let unclassified_label = snap.labels[v] == anyscan_scan_common::UNCLASSIFIED;
            let unclassified_role = snap.roles[v] == Role::Unclassified;
            prop_assert_eq!(unclassified_label, unclassified_role, "mismatch at {}", v);
        }
    }
}
