//! End-to-end telemetry of an anytime run: every block boundary publishes a
//! consistent [`anyscan::BlockSnapshot`], and the final report round-trips
//! through the JSON writer, parser and validator that CI gates on.

use anyscan::telemetry::json::JsonValue;
use anyscan::telemetry::validate::{validate_trace, KNOWN_PHASES};
use anyscan::{AnyScan, AnyScanConfig, Counter, Phase, Telemetry};
use anyscan_graph::gen::{erdos_renyi, WeightModel};
use anyscan_graph::CsrGraph;
use anyscan_scan_common::ScanParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    erdos_renyi(&mut rng, n, m, WeightModel::uniform_default())
}

fn traced_run(g: &CsrGraph, config: AnyScanConfig) -> (Telemetry, AnyScan<'_>) {
    let telemetry = Telemetry::enabled();
    let mut algo = AnyScan::new(g, config).with_telemetry(telemetry.clone());
    algo.run();
    (telemetry, algo)
}

/// The histogram invariant the snapshots exist for: at *every* block
/// boundary the seven state counts partition the vertex set, untouched
/// never grows, and the processed population never shrinks.
#[test]
fn state_histogram_partitions_v_and_is_monotone() {
    let g = test_graph(300, 1800, 42);
    let config = AnyScanConfig::new(ScanParams::new(0.5, 4))
        .with_block_size(64)
        .with_threads(2);
    let (telemetry, algo) = traced_run(&g, config);
    assert_eq!(algo.phase(), Phase::Done);

    let report = telemetry.report().expect("enabled handle has a report");
    let snaps = &report.snapshots;
    assert!(
        snaps.len() >= algo.iterations().len().min(2),
        "one snapshot per block iteration expected, got {}",
        snaps.len()
    );
    let n = g.num_vertices() as u64;
    let mut prev_untouched = n;
    let mut prev_processed = 0u64;
    let mut prev_index = None;
    for s in snaps {
        assert!(KNOWN_PHASES.contains(&s.phase), "phase {:?}", s.phase);
        assert_eq!(
            s.states.iter().sum::<u64>(),
            n,
            "histogram must partition |V| at block {}",
            s.index
        );
        let untouched = s.states[0];
        // Processed states are discriminants 2 (noise), 4 (border), 6 (core).
        let processed = s.states[2] + s.states[4] + s.states[6];
        assert!(
            untouched <= prev_untouched,
            "untouched grew {prev_untouched} -> {untouched} at block {}",
            s.index
        );
        assert!(
            processed >= prev_processed,
            "processed shrank {prev_processed} -> {processed} at block {}",
            s.index
        );
        if let Some(prev) = prev_index {
            assert!(s.index > prev, "indices must strictly increase");
        }
        assert!(s.supernodes >= s.components || s.supernodes == 0);
        prev_untouched = untouched;
        prev_processed = processed;
        prev_index = Some(s.index);
    }
    assert_eq!(prev_untouched, 0, "a finished run leaves nothing untouched");
}

/// Counters must agree with the driver's own public accounting.
#[test]
fn final_counters_match_driver_accounting() {
    let g = test_graph(250, 1500, 7);
    let config = AnyScanConfig::new(ScanParams::new(0.45, 3))
        .with_block_size(50)
        .with_threads(2);
    let (telemetry, algo) = traced_run(&g, config);
    let report = telemetry.report().unwrap();

    let stats = algo.stats();
    assert_eq!(report.counter(Counter::SigmaEvals), stats.sigma_evals);
    assert_eq!(
        report.counter(Counter::Lemma5Filtered),
        stats.lemma5_filtered
    );
    assert_eq!(report.counter(Counter::EdgeCacheHits), stats.cache_hits);
    assert_eq!(report.counter(Counter::EdgeCacheMisses), stats.cache_misses);
    let unions = algo.union_breakdown();
    assert_eq!(report.counter(Counter::UnionsStep1), unions.step1);
    assert_eq!(report.counter(Counter::UnionsStep2), unions.step2);
    assert_eq!(report.counter(Counter::UnionsStep3), unions.step3);
    assert_eq!(
        report.counter(Counter::SupernodesCreated),
        algo.num_supernodes() as u64
    );
    // The anytime phases each contributed at least one span.
    for name in ["summarize", "merge_strong", "merge_weak", "borders"] {
        let span = report.span_total(name);
        assert!(span.is_some(), "missing span {name:?}");
        assert!(span.unwrap().count >= 1);
    }
}

/// A parallel traced run publishes the pool-utilization delta of exactly
/// this run's jobs.
#[test]
fn pool_utilization_is_published_for_parallel_runs() {
    let g = test_graph(400, 3000, 11);
    let config = AnyScanConfig::new(ScanParams::new(0.5, 4))
        .with_block_size(100)
        .with_threads(3);
    let (telemetry, _algo) = traced_run(&g, config);
    let report = telemetry.report().unwrap();
    let pool = report.pool.as_ref().expect("parallel run records the pool");
    assert!(pool.jobs > 0, "parallel phases dispatch pool jobs");
    assert!(!pool.slots.is_empty());
    assert!(pool.slots.iter().any(|s| s.busy_ns > 0));
}

/// The report serializes to the schema the checker binary enforces.
#[test]
fn report_round_trips_through_the_validator() {
    let g = test_graph(200, 1200, 13);
    let config = AnyScanConfig::new(ScanParams::new(0.5, 3))
        .with_block_size(40)
        .with_threads(2);
    let (telemetry, algo) = traced_run(&g, config);
    let report = telemetry.report().unwrap();
    let json = report.to_json(&[
        ("vertices", (g.num_vertices() as u64).into()),
        ("edges", g.num_edges().into()),
        ("threads", 2u64.into()),
    ]);
    let value = JsonValue::parse(&json).expect("writer emits valid JSON");
    let summary = validate_trace(&value).expect("trace must validate");
    assert_eq!(summary.vertices, Some(g.num_vertices() as u64));
    assert!(summary.snapshots >= algo.iterations().len().min(2));
    assert!(summary.spans >= 4);
}

/// A disabled handle records nothing and never allocates a report.
#[test]
fn disabled_telemetry_is_silent_and_harmless() {
    let g = test_graph(150, 800, 17);
    let config = AnyScanConfig::new(ScanParams::new(0.5, 3)).with_threads(2);
    let telemetry = Telemetry::disabled();
    let mut algo = AnyScan::new(&g, config).with_telemetry(telemetry.clone());
    let clustering = algo.run();
    assert!(telemetry.report().is_none());
    // Same result as an un-instrumented run with the same seed.
    let mut plain = AnyScan::new(&g, config);
    assert_eq!(plain.run().labels, clustering.labels);
}
