//! Anytime execution control, checkpoint/resume, and Lemma-1 snapshot
//! properties over arbitrary random graphs.
//!
//! The load-bearing claim of the checkpoint subsystem: interrupting a run at
//! *any* block boundary, serializing it through the full `ASCK` byte format,
//! and resuming the deserialized state converges to a clustering
//! SCAN-equivalent (Lemma 4) to the uninterrupted run's. And every
//! intermediate snapshot must already be a valid Lemma-1 anytime result.

use anyscan::{AnyScan, AnyScanConfig, Checkpoint, Completion, Phase, RunControl};
use anyscan_graph::GraphBuilder;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Clustering, Role, ScanParams, NOISE, UNCLASSIFIED};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = anyscan_graph::CsrGraph> {
    (8usize..36)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..100))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Lemma 1: a snapshot is a valid anytime clustering — full coverage of the
/// vertex set, and no vertex both carries a cluster label and a noise role.
fn assert_lemma1(c: &Clustering, n: usize) {
    prop_assert_eq!(c.labels.len(), n);
    prop_assert_eq!(c.roles.len(), n);
    let rc = c.role_counts();
    prop_assert_eq!(
        rc.cores + rc.borders + rc.hubs + rc.outliers + rc.unclassified,
        n,
        "role histogram must cover every vertex"
    );
    for (v, (&l, &r)) in c.labels.iter().zip(&c.roles).enumerate() {
        if l != NOISE && l != UNCLASSIFIED {
            prop_assert!(
                !matches!(r, Role::Hub | Role::Outlier),
                "vertex {} is clustered (label {}) but holds noise role {:?}",
                v,
                l,
                r
            );
        }
        if matches!(r, Role::Core) {
            prop_assert!(
                l != NOISE && l != UNCLASSIFIED,
                "core vertex {} must carry a cluster label",
                v
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// cancel → checkpoint → serialize → parse → restore → run ≡ the
    /// uninterrupted run, at an arbitrary stop point, under arbitrary
    /// parameters and thread counts.
    #[test]
    fn resume_converges_to_uninterrupted_run(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        block in 1usize..32,
        seed in 0u64..1000,
        threads in 1usize..4,
        stop in 0u64..40,
    ) {
        let params = ScanParams::new(eps, mu);
        let config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_seed(seed)
            .with_threads(threads);
        let expected = AnyScan::new(&g, config).run();

        // Interrupt a second instance after `stop` blocks (budget trip).
        let mut victim = AnyScan::new(&g, config);
        let ctl = RunControl::new().with_max_blocks(stop);
        let partial = victim.run_controlled(&ctl).expect("no faults armed");
        if partial.completion != Completion::Complete {
            prop_assert_eq!(partial.completion, Completion::BudgetExhausted);
            prop_assert_eq!(partial.blocks, stop);
        }

        // Full serialization roundtrip, then resume to completion.
        let bytes = victim.checkpoint().to_bytes();
        let parsed = Checkpoint::from_bytes(bytes).expect("own bytes parse");
        prop_assert_eq!(parsed.phase(), victim.phase());
        let mut resumed = AnyScan::resume(&g, &parsed, threads).expect("restore");
        let done = resumed.run_controlled(&RunControl::new()).expect("no faults armed");
        prop_assert_eq!(done.completion, Completion::Complete);

        if let Err(e) = check_scan_equivalent(&g, params, &expected, &done.clustering) {
            prop_assert!(
                false,
                "resume diverged (eps={eps}, mu={mu}, block={block}, seed={seed}, \
                 threads={threads}, stop={stop}): {e}"
            );
        }
    }

    /// Every intermediate snapshot — and the partial result a budget trip
    /// hands back — satisfies the Lemma-1 anytime invariant.
    #[test]
    fn every_snapshot_satisfies_lemma1(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        block in 1usize..32,
        seed in 0u64..1000,
    ) {
        let params = ScanParams::new(eps, mu);
        let config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_seed(seed);
        let n = g.num_vertices();
        let mut algo = AnyScan::new(&g, config);
        let mut guard = 0;
        while algo.phase() != Phase::Done {
            assert_lemma1(&algo.snapshot(), n);
            let partial = algo.partial();
            prop_assert_eq!(partial.completion, Completion::Suspended);
            assert_lemma1(&partial.clustering, n);
            algo.step();
            guard += 1;
            prop_assert!(guard < 10_000, "driver failed to terminate");
        }
        let finished = algo.partial();
        prop_assert_eq!(finished.completion, Completion::Complete);
        assert_lemma1(&finished.clustering, n);
    }

    /// Corrupting any single bit — or truncating at any point — of a
    /// serialized checkpoint yields a typed error, never a panic or a
    /// silently-wrong load.
    #[test]
    fn corrupt_checkpoints_are_rejected(
        seed in 0u64..4,
        stop in 0u64..12,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let g = GraphBuilder::from_unweighted_edges(
            10,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (6, 7), (8, 9)],
        ).unwrap();
        let config = AnyScanConfig::new(ScanParams::new(0.5, 3))
            .with_block_size(2)
            .with_seed(seed);
        let mut algo = AnyScan::new(&g, config);
        let ctl = RunControl::new().with_max_blocks(stop);
        algo.run_controlled(&ctl).expect("no faults armed");
        let bytes = algo.checkpoint().to_bytes();

        // Bit flip anywhere must be caught (header, payload, or trailer).
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        let mut flipped = bytes.clone();
        flipped[idx] ^= 1 << bit;
        prop_assert!(
            Checkpoint::from_bytes(flipped).is_err(),
            "bit {} of byte {} flipped undetected", bit, idx
        );

        // Truncation at any prefix must be caught.
        let cut = (bytes.len() as f64 * byte_frac) as usize;
        prop_assert!(
            Checkpoint::from_bytes(bytes[..cut.min(bytes.len() - 1)].to_vec()).is_err(),
            "truncation to {} bytes undetected", cut
        );
    }
}
