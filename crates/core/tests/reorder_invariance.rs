//! Property-based reorder invariance: running the anytime driver on a
//! cache-locality-relabeled graph and mapping the result back through the
//! permutation must yield the *same clustering* (in original vertex ids)
//! as running on the graph as-given — exact core label-set equality, same
//! noise set, justified border attachments (Lemma 4 equivalence).
//!
//! One guard: σ values are summed in ascending-id order, so a relabeling
//! can perturb a sum by an ulp. A vertex pair whose σ sits *exactly* on the
//! ε threshold could then flip its verdict — a float tie, not a bug. Cases
//! where any adjacent pair has |σ − ε| ≤ 1e-9 are discarded.

use std::collections::BTreeSet;

use anyscan::{AnyScan, AnyScanConfig};
use anyscan_graph::reorder::reorder;
use anyscan_graph::{CsrGraph, GraphBuilder, ReorderMode, VertexId};
use anyscan_scan_common::kernel::sigma_raw;
use anyscan_scan_common::verify::check_scan_equivalent;
use anyscan_scan_common::{Clustering, Role, ScanParams};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    // 8..40 vertices, up to ~120 weighted edges (dense enough for clusters).
    (8usize..40)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.1f64..1.0);
            (Just(n), proptest::collection::vec(edge, 0..120))
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// True when some adjacent pair's σ is within `tol` of ε — the float-tie
/// situation where reordering may legitimately flip an edge verdict.
fn has_threshold_tie(g: &CsrGraph, eps: f64, tol: f64) -> bool {
    (0..g.num_vertices() as VertexId).any(|u| {
        g.neighbor_ids(u)
            .iter()
            .any(|&v| v > u && (sigma_raw(g, u, v) - eps).abs() <= tol)
    })
}

/// The clusters as sets of their *core* members — the representation in
/// which two equivalent SCAN results are literally equal (borders may
/// legally attach to either adjacent cluster).
fn core_label_sets(c: &Clustering) -> BTreeSet<BTreeSet<VertexId>> {
    let mut by_label = std::collections::HashMap::<u32, BTreeSet<VertexId>>::new();
    for v in 0..c.len() as VertexId {
        if c.roles[v as usize] == Role::Core {
            by_label.entry(c.labels[v as usize]).or_default().insert(v);
        }
    }
    by_label.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn driver_clustering_invariant_under_reordering(
        g in arb_graph(),
        eps in 0.1f64..0.95,
        mu in 1usize..7,
        block in 1usize..64,
        seed in 0u64..1000,
        threads in 1usize..4,
        mode_idx in 0usize..3,
    ) {
        let mode = ReorderMode::ALL[mode_idx];
        let params = ScanParams::new(eps, mu);
        if has_threshold_tie(&g, eps, 1e-9) {
            continue; // float tie at the ε threshold: verdict may legally flip
        }

        let config = AnyScanConfig::new(params)
            .with_block_size(block)
            .with_seed(seed)
            .with_threads(threads);
        let base = AnyScan::new(&g, config).run();

        let (g2, perm) = reorder(&g, mode);
        let mut ours = AnyScan::new(&g2, config.with_reorder(mode)).run();
        ours.labels = perm.to_original(&ours.labels);
        ours.roles = perm.to_original(&ours.roles);

        // Exact core label-set equality in original ids.
        prop_assert_eq!(
            core_label_sets(&base),
            core_label_sets(&ours),
            "core partitions differ under {} reordering (eps={}, mu={}, seed={})",
            mode, eps, mu, seed
        );
        // Full Lemma 4 equivalence (noise agreement, border justification).
        if let Err(e) = check_scan_equivalent(&g, params, &base, &ours) {
            prop_assert!(
                false,
                "divergence under {mode} reordering (eps={eps}, mu={mu}, \
                 block={block}, seed={seed}, threads={threads}): {e}"
            );
        }
    }
}
