//! Best-so-far labeling (Lemma 1: every super-node member carries its
//! super-node's cluster).

use anyscan_graph::VertexId;
use anyscan_scan_common::{Clustering, Role, NOISE, UNCLASSIFIED};

use crate::driver::AnyScan;
use crate::state::VertexState;

/// Builds the clustering implied by the current super-node DSU and state
/// table. `finalize` additionally splits noise into hubs and outliers (only
/// meaningful once the run is done).
pub(crate) fn build_snapshot(algo: &AnyScan<'_>, finalize: bool) -> Clustering {
    let g = algo.graph();
    let n = g.num_vertices();
    let mut labels = vec![UNCLASSIFIED; n];
    let mut roles = vec![Role::Unclassified; n];
    for v in 0..n as VertexId {
        let state = algo.states.get(v);
        let (label, role) = match algo.vertex_root(v) {
            Some(root) => {
                let role = match state {
                    VertexState::ProcessedCore | VertexState::UnprocessedCore => Role::Core,
                    // Unprocessed-border = clustered, core status unknown
                    // (or deliberately unresolved): reported as border.
                    VertexState::UnprocessedBorder | VertexState::ProcessedBorder => Role::Border,
                    other => {
                        debug_assert!(false, "clustered vertex {v} in noise state {other:?}");
                        Role::Border
                    }
                };
                (root, role)
            }
            None => match state {
                VertexState::Untouched => (UNCLASSIFIED, Role::Unclassified),
                VertexState::UnprocessedNoise | VertexState::ProcessedNoise => {
                    (NOISE, Role::Outlier)
                }
                other => {
                    debug_assert!(false, "member-less vertex {v} in state {other:?}");
                    (NOISE, Role::Outlier)
                }
            },
        };
        labels[v as usize] = label;
        roles[v as usize] = role;
    }
    let mut clustering = Clustering { labels, roles };
    if finalize {
        clustering.classify_noise(g);
    }
    clustering
}
