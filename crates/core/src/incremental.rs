//! Incremental SCAN over dynamic graphs.
//!
//! The paper's related work highlights DENGRAPH [22] — incremental
//! density-based clustering for evolving social networks. This module
//! brings that capability to the workspace: a [`DynamicScan`] maintains the
//! structural similarity of every edge under edge insertions, removals and
//! reweightings, recomputing only what an update can actually change.
//!
//! The key locality fact: `σ(x, y)` depends only on the closed
//! neighborhoods of `x` and `y`, so an update touching the edge `(u, v)`
//! can change σ only on edges incident to `u` or `v` — `O(deg u + deg v)`
//! recomputations instead of `O(|E|)`. Cluster labels are then derived on
//! demand from the cached similarities with one union-find sweep, exactly
//! like [`crate::explore::EpsilonExplorer`].
//!
//! # Vertex ids: dynamic mode runs on the unreordered graph
//!
//! A `DynamicScan` speaks whatever vertex ids its input graph uses and
//! never remaps them: updates are addressed by those ids and
//! [`DynamicScan::clustering`] answers in them. The cache-locality
//! reorderings (`--reorder degree|bfs`) relabel vertices, so feeding a
//! reordered [`CsrGraph`] to [`DynamicScan::from_csr`] means every
//! subsequent `insert_edge(u, v, …)` must use *reordered* ids and every
//! answer comes back in them too. Hand this type the original-id graph
//! (the only mode the rest of the dynamic stack supports —
//! `anyscan-dynamic` rejects reordered indexes outright), or map ids both
//! ways through the [`VertexPermutation`](anyscan_graph::VertexPermutation)
//! yourself; the `reordered_ids_round_trip_through_the_permutation` test
//! shows the second contract in full.
//!
//! ```
//! use anyscan::incremental::DynamicScan;
//! use anyscan_graph::AdjGraph;
//! use anyscan_scan_common::ScanParams;
//!
//! // Two triangles, initially disconnected.
//! let mut g = AdjGraph::new(6);
//! for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
//!     g.insert_edge(u, v, 1.0).unwrap();
//! }
//! let mut ds = DynamicScan::new(g, ScanParams::new(0.5, 3));
//! assert_eq!(ds.clustering().num_clusters(), 2);
//!
//! // A strong bridge appears: the communities merge...
//! ds.insert_edge(2, 3, 1.0).unwrap();
//! ds.insert_edge(1, 4, 1.0).unwrap();
//! ds.insert_edge(1, 3, 1.0).unwrap();
//! ds.insert_edge(2, 4, 1.0).unwrap();
//! assert_eq!(ds.clustering().num_clusters(), 1);
//!
//! // ...and dissolves again when the links churn away.
//! for (u, v) in [(2, 3), (1, 4), (1, 3), (2, 4)] {
//!     ds.remove_edge(u, v);
//! }
//! assert_eq!(ds.clustering().num_clusters(), 2);
//! ```

use std::collections::HashMap;

use anyscan_dsu::DsuSeq;
use anyscan_graph::{AdjGraph, CsrGraph, GraphError, VertexId, Weight};
use anyscan_scan_common::{Clustering, Role, ScanParams, NOISE};
use anyscan_telemetry::Telemetry;

/// Maintains SCAN clusterings under edge updates.
#[derive(Debug)]
pub struct DynamicScan {
    graph: AdjGraph,
    params: ScanParams,
    /// σ per edge, keyed by the ordered endpoint pair.
    sigmas: HashMap<(VertexId, VertexId), f64>,
    /// Total σ recomputations performed (initial build + updates).
    recomputations: u64,
}

#[inline]
fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    (u.min(v), u.max(v))
}

impl DynamicScan {
    /// Takes ownership of a dynamic graph and evaluates every edge's σ.
    pub fn new(graph: AdjGraph, params: ScanParams) -> Self {
        let mut ds = DynamicScan {
            graph,
            params,
            sigmas: HashMap::new(),
            recomputations: 0,
        };
        for u in 0..ds.graph.num_vertices() as VertexId {
            let nbrs: Vec<VertexId> = ds
                .graph
                .neighbors(u)
                .map(|(q, _)| q)
                .filter(|&q| q > u)
                .collect();
            for v in nbrs {
                let s = ds.graph.sigma(u, v);
                ds.recomputations += 1;
                ds.sigmas.insert(key(u, v), s);
            }
        }
        ds
    }

    /// [`DynamicScan::new`] with the initial σ build recorded as an
    /// `"incremental"` span on `telemetry` (free when the handle is
    /// disabled).
    pub fn new_traced(graph: AdjGraph, params: ScanParams, telemetry: &Telemetry) -> Self {
        let _span = telemetry.span("incremental");
        Self::new(graph, params)
    }

    /// Convenience: start from a frozen CSR graph.
    ///
    /// Ids are adopted verbatim — pass the **unreordered** graph (or commit
    /// to addressing every update in the reordered labeling and mapping the
    /// answers back; see the module docs on vertex ids).
    pub fn from_csr(g: &CsrGraph, params: ScanParams) -> Self {
        Self::new(AdjGraph::from_csr(g), params)
    }

    /// The current graph.
    pub fn graph(&self) -> &AdjGraph {
        self.graph_ref()
    }

    fn graph_ref(&self) -> &AdjGraph {
        &self.graph
    }

    /// The (ε, μ) parameters.
    pub fn params(&self) -> ScanParams {
        self.params
    }

    /// σ recomputations so far (measures the incremental saving vs. the
    /// `|E|` a from-scratch rebuild would pay per update).
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    /// Inserts (or reweights) an edge and refreshes the affected σ values.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), GraphError> {
        self.graph.insert_edge(u, v, w)?;
        self.refresh_incident(u);
        self.refresh_incident(v);
        Ok(())
    }

    /// Removes an edge (if present) and refreshes the affected σ values.
    /// Returns whether the edge existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.graph.remove_edge(u, v).is_none() {
            return false;
        }
        self.sigmas.remove(&key(u, v));
        self.refresh_incident(u);
        self.refresh_incident(v);
        true
    }

    /// Recomputes σ for every edge incident to `c` (its neighborhood
    /// changed, so all of them are stale).
    fn refresh_incident(&mut self, c: VertexId) {
        let nbrs: Vec<VertexId> = self.graph.neighbors(c).map(|(q, _)| q).collect();
        for q in nbrs {
            let s = self.graph.sigma(c, q);
            self.recomputations += 1;
            self.sigmas.insert(key(c, q), s);
        }
    }

    /// The SCAN clustering of the current graph (one union-find sweep over
    /// the cached similarities; no σ evaluations).
    pub fn clustering(&self) -> Clustering {
        let n = self.graph.num_vertices();
        let eps = self.params.epsilon;
        let mut similar = vec![1u32; n]; // counts the vertex itself
        for (&(u, v), &s) in &self.sigmas {
            if s >= eps {
                similar[u as usize] += 1;
                similar[v as usize] += 1;
            }
        }
        let is_core = |v: VertexId| similar[v as usize] as usize >= self.params.mu;

        let mut dsu = DsuSeq::new(n);
        for (&(u, v), &s) in &self.sigmas {
            if s >= eps && is_core(u) && is_core(v) {
                dsu.union(u, v);
            }
        }
        let mut labels = vec![NOISE; n];
        let mut roles = vec![Role::Outlier; n];
        for v in 0..n as VertexId {
            if is_core(v) {
                labels[v as usize] = dsu.find(v);
                roles[v as usize] = Role::Core;
            }
        }
        // Borders: adopt non-cores via any ε-similar core neighbor
        // (deterministic: smallest core id wins so results are stable
        // across hash orders).
        for v in 0..n as VertexId {
            if is_core(v) {
                continue;
            }
            let adopter = self
                .graph
                .neighbors(v)
                .map(|(q, _)| q)
                .filter(|&q| is_core(q))
                .find(|&q| self.sigmas.get(&key(v, q)).is_some_and(|&s| s >= eps));
            if let Some(q) = adopter {
                labels[v as usize] = labels[q as usize];
                roles[v as usize] = Role::Border;
            }
        }
        // Hubs vs outliers from the dynamic adjacency.
        for v in 0..n as VertexId {
            if labels[v as usize] != NOISE {
                continue;
            }
            let mut first = None;
            let mut hub = false;
            for (q, _) in self.graph.neighbors(v) {
                let l = labels[q as usize];
                if l == NOISE {
                    continue;
                }
                match first {
                    None => first = Some(l),
                    Some(f) if f != l => {
                        hub = true;
                        break;
                    }
                    _ => {}
                }
            }
            roles[v as usize] = if hub { Role::Hub } else { Role::Outlier };
        }
        Clustering { labels, roles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyscan_baselines::scan;
    use anyscan_graph::gen::{erdos_renyi, WeightModel};
    use anyscan_scan_common::verify::assert_scan_equivalent;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The invariant everything hangs on: after any update sequence the
    /// incremental clustering equals a from-scratch SCAN of the same graph.
    fn assert_matches_scratch(ds: &DynamicScan) {
        let csr = ds.graph().to_csr();
        let truth = scan(&csr, ds.params()).clustering;
        let ours = ds.clustering();
        assert_scan_equivalent(&csr, ds.params(), &truth, &ours);
    }

    #[test]
    fn random_update_stream_stays_exact() {
        let mut rng = StdRng::seed_from_u64(700);
        let csr = erdos_renyi(&mut rng, 60, 240, WeightModel::uniform_default());
        let params = ScanParams::new(0.45, 3);
        let mut ds = DynamicScan::from_csr(&csr, params);
        assert_matches_scratch(&ds);
        for step in 0..120 {
            let u = rng.gen_range(0..60u32);
            let v = rng.gen_range(0..60u32);
            if u == v {
                continue;
            }
            if rng.gen_bool(0.6) {
                ds.insert_edge(u, v, rng.gen_range(0.3..1.0)).unwrap();
            } else {
                ds.remove_edge(u, v);
            }
            if step % 10 == 0 {
                assert_matches_scratch(&ds);
            }
        }
        assert_matches_scratch(&ds);
    }

    #[test]
    fn updates_recompute_only_the_neighborhood() {
        let mut rng = StdRng::seed_from_u64(701);
        let csr = erdos_renyi(&mut rng, 400, 4_000, WeightModel::uniform_default());
        let mut ds = DynamicScan::from_csr(&csr, ScanParams::paper_defaults());
        let initial = ds.recomputations();
        assert_eq!(initial, csr.num_edges());
        ds.insert_edge(0, 1, 0.9).unwrap();
        let delta = ds.recomputations() - initial;
        // deg(0) + deg(1) edges refresh — far below |E|.
        let bound = (ds.graph().degree(0) + ds.graph().degree(1)) as u64;
        assert!(delta <= bound, "recomputed {delta} > {bound}");
        assert!(
            delta * 20 < csr.num_edges(),
            "not incremental: {delta} vs |E|"
        );
    }

    #[test]
    fn reweighting_changes_the_outcome() {
        // Bridge weight decides whether two triangles merge at low ε.
        let mut g = AdjGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.insert_edge(u, v, 1.0).unwrap();
        }
        g.insert_edge(2, 3, 0.05).unwrap();
        let mut ds = DynamicScan::new(g, ScanParams::new(0.55, 3));
        assert_eq!(ds.clustering().num_clusters(), 2);
        // Strengthen the bridge: σ(2,3) rises above ε.
        ds.insert_edge(2, 3, 10.0_f64.min(1.0)).unwrap();
        // Still two clusters or one depends on σ: check against scratch
        // rather than hard-coding.
        assert_matches_scratch(&ds);
    }

    /// The id contract from the module docs: on a reordered graph the
    /// updates and answers live in reordered ids, and mapping the answers
    /// back through the permutation reproduces the original-id clustering.
    #[test]
    fn reordered_ids_round_trip_through_the_permutation() {
        use anyscan_graph::{reorder, ReorderMode};

        let mut rng = StdRng::seed_from_u64(702);
        let g = erdos_renyi(&mut rng, 80, 400, WeightModel::uniform_default());
        let params = ScanParams::new(0.45, 3);
        let (rg, perm) = reorder::reorder(&g, ReorderMode::Degree);
        assert!(!perm.is_identity(), "degree reorder should relabel");

        // The same mutation, addressed in each labeling.
        let (u, v, w) = (3u32, 57u32, 0.9);
        let mut original = DynamicScan::from_csr(&g, params);
        original.insert_edge(u, v, w).unwrap();
        let mut reordered = DynamicScan::from_csr(&rg, params);
        reordered
            .insert_edge(perm.new_of_old(u), perm.new_of_old(v), w)
            .unwrap();

        // Reordered answers come back in reordered ids; the permutation
        // takes them home.
        let truth = original.clustering();
        let mut mapped = reordered.clustering();
        mapped.labels = perm.to_original(&mapped.labels);
        mapped.roles = perm.to_original(&mapped.roles);
        let csr = original.graph().to_csr();
        assert_scan_equivalent(&csr, params, &truth, &mapped);
        assert_eq!(truth.roles, mapped.roles);
    }

    #[test]
    fn removal_down_to_empty() {
        let mut g = AdjGraph::new(4);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.insert_edge(u, v, 1.0).unwrap();
        }
        let mut ds = DynamicScan::new(g, ScanParams::new(0.5, 2));
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
        for (u, v) in edges {
            assert!(ds.remove_edge(u, v));
            assert_matches_scratch(&ds);
        }
        assert!(!ds.remove_edge(0, 1), "double removal must report absence");
        assert_eq!(ds.clustering().role_counts().outliers, 4);
    }
}
