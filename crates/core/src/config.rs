//! anySCAN configuration.

use anyscan_graph::ReorderMode;
use anyscan_scan_common::sketch::{DEFAULT_BITS, DEFAULT_ROWS};
use anyscan_scan_common::HubBitmaps;
use anyscan_scan_common::{ScanParams, SketchMode, HASH_PROBE_MISMATCH_RATIO};

/// Which shared disjoint-set implementation backs the parallel merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsuKind {
    /// Lock-free union-find (CAS parents). Default.
    Atomic,
    /// Mutex around the sequential structure — the literal analogue of the
    /// paper's `#pragma omp critical Union`; kept for the DSU ablation.
    Locked,
}

/// Full configuration of an anySCAN run.
///
/// The paper's defaults are α = β = 8192 (sequential study, §IV-A) and
/// α = β = 32768 for the multicore study (§IV-B).
#[derive(Debug, Clone, Copy)]
pub struct AnyScanConfig {
    /// SCAN parameters (ε, μ).
    pub params: ScanParams,
    /// Step-1 block size: untouched vertices summarized per iteration.
    pub alpha: usize,
    /// Step-2/3 block size: candidates core-checked per iteration.
    pub beta: usize,
    /// Worker threads; 1 reproduces the sequential algorithm exactly.
    pub threads: usize,
    /// Seed of the random vertex draw order in Step 1.
    pub seed: u64,
    /// Section III-D similarity optimizations (Lemma-5 filter,
    /// early accept/reject). Ablation lever.
    pub optimizations: bool,
    /// Sort Step 2's candidate set by super-node count, descending
    /// (paper line 21). Ablation lever.
    pub sort_step2: bool,
    /// Sort Step 3's candidate set by degree, descending (paper line 36).
    /// Ablation lever.
    pub sort_step3: bool,
    /// Skip Step 2 entirely, leaving all merging to Step 3 — quantifies the
    /// strongly-related shortcut. The final result stays exact (Step 3
    /// subsumes the merges at higher cost). Ablation lever.
    pub skip_step2: bool,
    /// Shared DSU implementation for the parallel merges.
    pub dsu: DsuKind,
    /// Lock-free symmetric edge-decision cache: remember each edge's
    /// ε-verdict (one tri-state atomic per CSR arc, O(E) memory) so no
    /// undirected edge is merge-joined twice across steps or directions.
    /// Ablation lever; exactness holds either way.
    pub edge_cache: bool,
    /// Run the finishing pass that decides the core/border role of vertices
    /// the pruning never examined. Cluster labels are final either way; with
    /// this off the run is cheaper but roles of some clustered vertices stay
    /// heuristic (reported as borders). Default on, so results are
    /// role-exact against SCAN.
    pub resolve_roles: bool,
    /// Cache-locality vertex reordering applied to the graph before the run.
    /// The driver itself clusters whatever labeling it is handed; this field
    /// travels in the checkpoint so a resumed run re-applies the same
    /// (deterministic) relabeling, and callers map output back to original
    /// ids via the [`anyscan_graph::VertexPermutation`].
    pub reorder: ReorderMode,
    /// Hub-bitmap / branchless-merge σ locality bundle
    /// ([`anyscan_scan_common::Kernel::with_hub_bitmaps`]). Results are
    /// bit-identical either way; only memory traffic changes. Ablation lever.
    pub hub_bitmaps: bool,
    /// Batched source-major Step-1 range queries
    /// ([`anyscan_scan_common::Kernel::eps_neighborhood_batched`]): each
    /// block vertex's row is stamped once into a per-worker dense scratch
    /// and reused across all its candidate pairs. Ablation lever.
    pub batched_step1: bool,
    /// MinHash neighborhood sketches: off, exact-preserving assist (order +
    /// prune-confirm routing, bit-identical clusterings), or approx (the
    /// estimate decides, signature size as the error knob).
    pub sketch: SketchMode,
    /// MinHash rows per signature (estimate variance ∝ 1/rows).
    pub sketch_rows: usize,
    /// Bits kept per MinHash row (1, 2, 4, 8 or 16).
    pub sketch_bits: u32,
    /// Most hubs given packed bitmaps when `hub_bitmaps` is on
    /// (`--hub-cap`; caps bitmap memory).
    pub hub_max_hubs: usize,
    /// Closed-degree floor for bitmap eligibility when `hub_bitmaps` is on
    /// (`--hub-min-degree`).
    pub hub_min_degree: usize,
    /// Degree-mismatch ratio at which index-build σ rows divert to the hash
    /// probe (the promoted `HASH_PROBE_MISMATCH_RATIO` crossover). Results
    /// are bit-identical at any ratio.
    pub probe_ratio: usize,
}

impl AnyScanConfig {
    /// Paper defaults with the given (ε, μ).
    pub fn new(params: ScanParams) -> Self {
        AnyScanConfig {
            params,
            alpha: 8192,
            beta: 8192,
            threads: 1,
            seed: 0x5CA7,
            optimizations: true,
            sort_step2: true,
            sort_step3: true,
            skip_step2: false,
            dsu: DsuKind::Atomic,
            edge_cache: true,
            resolve_roles: true,
            reorder: ReorderMode::None,
            hub_bitmaps: true,
            batched_step1: true,
            sketch: SketchMode::Off,
            sketch_rows: DEFAULT_ROWS,
            sketch_bits: DEFAULT_BITS,
            hub_max_hubs: HubBitmaps::DEFAULT_MAX_HUBS,
            hub_min_degree: HubBitmaps::DEFAULT_MIN_DEGREE,
            probe_ratio: HASH_PROBE_MISMATCH_RATIO,
        }
    }

    /// Builder-style block-size override (α = β = `size`).
    pub fn with_block_size(mut self, size: usize) -> Self {
        assert!(size >= 1, "block size must be positive");
        self.alpha = size;
        self.beta = size;
        self
    }

    /// Sets α = β to keep the paper's block-to-graph ratio at laptop scale.
    ///
    /// The paper runs α = 8192 against multi-million-vertex graphs
    /// (α/|V| ≈ 0.2 %); a block that *covers* the graph degenerates Step 1
    /// into plain SCAN (everything is range-queried before any state
    /// marking can save work). This helper picks `|V|/128`, clamped to
    /// `[32, 8192]` — the same fraction regime scaled down.
    pub fn with_auto_block_size(self, num_vertices: usize) -> Self {
        let size = (num_vertices / 128).clamp(32, 8192);
        self.with_block_size(size)
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style edge-decision-cache toggle.
    pub fn with_edge_cache(mut self, enabled: bool) -> Self {
        self.edge_cache = enabled;
        self
    }

    /// Builder-style reorder-mode override (recorded in checkpoints; the
    /// caller is responsible for actually relabeling the graph).
    pub fn with_reorder(mut self, mode: ReorderMode) -> Self {
        self.reorder = mode;
        self
    }

    /// Builder-style hub-bitmap toggle.
    pub fn with_hub_bitmaps(mut self, enabled: bool) -> Self {
        self.hub_bitmaps = enabled;
        self
    }

    /// Builder-style batched-Step-1 toggle.
    pub fn with_batched_step1(mut self, enabled: bool) -> Self {
        self.batched_step1 = enabled;
        self
    }

    /// Builder-style sketch-mode override.
    pub fn with_sketch(mut self, mode: SketchMode) -> Self {
        self.sketch = mode;
        self
    }

    /// Builder-style signature-size override (rows × bits).
    pub fn with_sketch_params(mut self, rows: usize, bits: u32) -> Self {
        self.sketch_rows = rows;
        self.sketch_bits = bits;
        self
    }

    /// Builder-style hub-bitmap tuning (`--hub-cap`, `--hub-min-degree`).
    pub fn with_hub_params(mut self, max_hubs: usize, min_degree: usize) -> Self {
        self.hub_max_hubs = max_hubs;
        self.hub_min_degree = min_degree;
        self
    }

    /// Builder-style merge-vs-probe crossover override.
    pub fn with_probe_ratio(mut self, ratio: usize) -> Self {
        assert!(ratio >= 1, "probe ratio must be positive");
        self.probe_ratio = ratio;
        self
    }
}

impl Default for AnyScanConfig {
    fn default() -> Self {
        AnyScanConfig::new(ScanParams::paper_defaults())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnyScanConfig::default();
        assert_eq!(c.alpha, 8192);
        assert_eq!(c.beta, 8192);
        assert_eq!(c.threads, 1);
        assert!(c.optimizations && c.sort_step2 && c.sort_step3 && !c.skip_step2);
        assert_eq!(c.dsu, DsuKind::Atomic);
    }

    #[test]
    fn builders_compose() {
        let c = AnyScanConfig::default()
            .with_block_size(256)
            .with_threads(4)
            .with_seed(9);
        assert_eq!((c.alpha, c.beta, c.threads, c.seed), (256, 256, 4, 9));
    }

    #[test]
    fn sketch_and_tuning_defaults() {
        let c = AnyScanConfig::default();
        assert_eq!(c.sketch, SketchMode::Off);
        assert_eq!((c.sketch_rows, c.sketch_bits), (128, 8));
        assert_eq!(c.hub_max_hubs, HubBitmaps::DEFAULT_MAX_HUBS);
        assert_eq!(c.hub_min_degree, HubBitmaps::DEFAULT_MIN_DEGREE);
        assert_eq!(c.probe_ratio, HASH_PROBE_MISMATCH_RATIO);
        let c = c
            .with_sketch(SketchMode::Assist)
            .with_sketch_params(64, 4)
            .with_hub_params(32, 8)
            .with_probe_ratio(4);
        assert_eq!(c.sketch, SketchMode::Assist);
        assert_eq!((c.sketch_rows, c.sketch_bits), (64, 4));
        assert_eq!((c.hub_max_hubs, c.hub_min_degree), (32, 8));
        assert_eq!(c.probe_ratio, 4);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn rejects_zero_block() {
        let _ = AnyScanConfig::default().with_block_size(0);
    }
}
